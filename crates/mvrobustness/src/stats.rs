//! Workload analysis: structural statistics that explain robustness
//! verdicts and guide tuning (used by the CLI's `analyze` command and
//! the evaluation harness), plus [`EngineStats`] — the work counters
//! the allocation engine reports per run.

use crate::algorithm1::is_robust;
use crate::allocate::optimal_allocation;
use crate::conflict_index::ConflictIndex;
use crate::rc_si::optimal_allocation_rc_si;
use crate::sdg::{static_si_robust, StaticVerdict};
use mvisolation::{Allocation, IsolationLevel};
use mvmodel::{TransactionSet, TxnId};
use std::time::Duration;

/// Work performed by one [`crate::allocate::Allocator`] run: how many
/// full Algorithm 1 probes ran, how many were answered by the
/// counterexample cache instead, how many iso-graph constructions the
/// per-`T₁` cache paid for, and the wall time.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EngineStats {
    /// Full Algorithm 1 searches executed.
    pub probes: u64,
    /// Lowering attempts rejected by re-validating a cached
    /// counterexample (`SplitSpec::check`) — each one is a probe that
    /// never ran.
    pub cache_hits: u64,
    /// Distinct counterexamples held by the cache at the end of the run.
    pub cached_specs: u64,
    /// `IsoReach` structures built; without the per-`T₁` cache this
    /// would be ~`probes × |T|` on conflict-heavy workloads.
    pub iso_builds: u64,
    /// Conflict-graph components actually searched or solved by the
    /// sharded engine (0 on unsharded runs).
    pub components_checked: u64,
    /// Components answered from the content-addressed component cache
    /// without any search — the near-O(1) delta path.
    pub components_cached: u64,
    /// `u64` words processed by the bit-parallel closure kernels
    /// (iso-graph construction plus reachability queries).
    pub kernel_row_ops: u64,
    /// Delta events (adds + removes) applied by
    /// [`crate::allocate::Allocator::apply_batch`]; 0 on every other
    /// path, including the single-event delta API.
    pub batch_events: u64,
    /// Conflict-graph components resolved by actual work (fingerprint
    /// cache misses and singletons) while answering a batch — the solve
    /// cost the group-commit coalescing pays once instead of once per
    /// event. 0 outside the batch path.
    pub batched_components_solved: u64,
    /// Worker threads configured for the outer search.
    pub threads: usize,
    /// End-to-end wall time of the engine run.
    pub wall: Duration,
}

impl std::fmt::Display for EngineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "probes={} cache_hits={} cached_specs={} iso_builds={} comps_checked={} \
             comps_cached={} kernel_row_ops={} batch_events={} batched_solved={} \
             threads={} wall={:.3}ms",
            self.probes,
            self.cache_hits,
            self.cached_specs,
            self.iso_builds,
            self.components_checked,
            self.components_cached,
            self.kernel_row_ops,
            self.batch_events,
            self.batched_components_solved,
            self.threads,
            self.wall.as_secs_f64() * 1e3,
        )
    }
}

/// A structural + robustness report for a workload.
#[derive(Clone, Debug)]
pub struct WorkloadReport {
    pub transactions: usize,
    pub total_ops: usize,
    pub max_ops: usize,
    pub objects: usize,
    /// Number of unordered transaction pairs with at least one conflict.
    pub conflicting_pairs: usize,
    /// Conflicting pairs / all pairs.
    pub conflict_density: f64,
    /// Pairs with a ww conflict (protected under SI's
    /// first-committer-wins).
    pub ww_pairs: usize,
    /// Directed pairs with a vulnerable rw edge (rw conflict, no shared
    /// ww) — the raw material of counterexamples.
    pub vulnerable_edges: usize,
    /// Connected components of the conflict graph — the sharded engine's
    /// unit of work (counterexamples never cross components).
    pub components: usize,
    /// Size of the largest conflict component (the sharded engine's
    /// critical path).
    pub largest_component: usize,
    pub robust_rc: bool,
    pub robust_si: bool,
    pub static_si: StaticVerdict,
    pub optimal: Allocation,
    pub optimal_rc_si: Option<Allocation>,
}

impl WorkloadReport {
    /// Computes the full report (runs Algorithm 1 four times plus
    /// Algorithm 2, all polynomial).
    pub fn analyze(txns: &TransactionSet) -> WorkloadReport {
        let n = txns.len();
        let index = ConflictIndex::new(txns);
        let mut conflicting_pairs = 0;
        let mut ww_pairs = 0;
        let mut vulnerable_edges = 0;
        for i in 0..n {
            for j in 0..n {
                if i < j {
                    if index.any(i, j) {
                        conflicting_pairs += 1;
                    }
                    if index.ww(i, j) {
                        ww_pairs += 1;
                    }
                }
                if i != j && index.wr(j, i) && !index.ww(i, j) {
                    vulnerable_edges += 1;
                }
            }
        }
        let all_pairs = n * n.saturating_sub(1) / 2;
        let comps = crate::components::Components::new(txns, &index);
        WorkloadReport {
            transactions: n,
            total_ops: txns.total_ops(),
            max_ops: txns.max_ops(),
            objects: txns.objects().len(),
            conflicting_pairs,
            conflict_density: if all_pairs == 0 {
                0.0
            } else {
                conflicting_pairs as f64 / all_pairs as f64
            },
            ww_pairs,
            vulnerable_edges,
            components: comps.count(),
            largest_component: comps.largest(),
            robust_rc: is_robust(txns, &Allocation::uniform_rc(txns)).robust(),
            robust_si: is_robust(txns, &Allocation::uniform_si(txns)).robust(),
            static_si: static_si_robust(txns),
            optimal: optimal_allocation(txns),
            optimal_rc_si: optimal_allocation_rc_si(txns),
        }
    }

    /// `(#RC, #SI, #SSI)` of the optimal allocation.
    pub fn optimal_counts(&self) -> (usize, usize, usize) {
        self.optimal.counts()
    }

    /// Transactions forced above RC by the optimum, with their levels —
    /// the "watch list" a DBA would review.
    pub fn above_rc(&self) -> Vec<(TxnId, IsolationLevel)> {
        self.optimal
            .iter()
            .filter(|&(_, l)| l > IsolationLevel::RC)
            .collect()
    }
}

impl std::fmt::Display for WorkloadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "workload: {} transactions, {} ops (max {}/txn), {} objects",
            self.transactions, self.total_ops, self.max_ops, self.objects
        )?;
        writeln!(
            f,
            "conflicts: {} pairs ({:.0}% density), {} ww-protected pairs, {} vulnerable rw edges",
            self.conflicting_pairs,
            self.conflict_density * 100.0,
            self.ww_pairs,
            self.vulnerable_edges
        )?;
        writeln!(
            f,
            "components: {} (largest {})",
            self.components, self.largest_component
        )?;
        writeln!(
            f,
            "robust against: RC = {}, SI = {} (static SDG test: {})",
            self.robust_rc,
            self.robust_si,
            if self.static_si.certified() {
                "certified"
            } else {
                "flagged"
            }
        )?;
        let (rc, si, ssi) = self.optimal_counts();
        writeln!(
            f,
            "optimal allocation: {} ({rc} RC / {si} SI / {ssi} SSI)",
            self.optimal
        )?;
        match &self.optimal_rc_si {
            Some(a) => write!(f, "optimal {{RC, SI}} allocation: {a}"),
            None => write!(f, "no {{RC, SI}} allocation exists (SSI required)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvmodel::TxnSetBuilder;

    fn mixed_workload() -> TransactionSet {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        let z = b.object("z");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).read(y).write(x).finish();
        b.txn(3).read(z).write(z).finish();
        b.txn(4).read(z).write(z).finish();
        b.build().unwrap()
    }

    #[test]
    fn report_fields() {
        let txns = mixed_workload();
        let r = WorkloadReport::analyze(&txns);
        assert_eq!(r.transactions, 4);
        assert_eq!(r.total_ops, 8);
        assert_eq!(r.max_ops, 2);
        assert_eq!(r.objects, 3);
        // Conflicting pairs: (1,2) and (3,4).
        assert_eq!(r.conflicting_pairs, 2);
        assert!((r.conflict_density - 2.0 / 6.0).abs() < 1e-9);
        // ww pairs: (3,4) on z.
        assert_eq!(r.ww_pairs, 1);
        // Vulnerable: 1→2 and 2→1 (skew); 3→4/4→3 are ww-protected.
        assert_eq!(r.vulnerable_edges, 2);
        // Two conflict clusters: {1,2} and {3,4}.
        assert_eq!(r.components, 2);
        assert_eq!(r.largest_component, 2);
        assert!(!r.robust_rc);
        assert!(!r.robust_si);
        assert!(!r.static_si.certified());
        let (rc, si, ssi) = r.optimal_counts();
        assert_eq!((rc, si, ssi), (0, 2, 2));
        assert_eq!(r.optimal_rc_si, None);
        assert_eq!(r.above_rc().len(), 4);
    }

    #[test]
    fn report_displays() {
        let txns = mixed_workload();
        let shown = WorkloadReport::analyze(&txns).to_string();
        assert!(shown.contains("4 transactions"));
        assert!(shown.contains("vulnerable"));
        assert!(shown.contains("no {RC, SI} allocation"));
    }

    #[test]
    fn empty_pairs_density_zero() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        b.txn(1).read(x).finish();
        let txns = b.build().unwrap();
        let r = WorkloadReport::analyze(&txns);
        assert_eq!(r.conflict_density, 0.0);
        assert!(r.robust_rc && r.robust_si);
        assert!(r.static_si.certified());
        assert!(r.above_rc().is_empty());
    }
}
