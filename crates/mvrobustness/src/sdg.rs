//! The classic *static dependency graph* (SDG) test for robustness
//! against SI — the baseline the paper's exact characterization improves
//! on.
//!
//! Fekete et al. (*Making snapshot isolation serializable*, TODS 2005 —
//! reference \[20\] of the paper) showed that if a workload's static
//! dependency graph contains no cycle with two *consecutive vulnerable
//! edges*, every SI execution is serializable. The test is **sufficient
//! but not necessary**: flagged workloads may still be robust (false
//! alarms), which is precisely the gap Theorem 3.2 closes with an exact
//! characterization.
//!
//! Definitions used (at transaction granularity):
//! - static edge `Tᵢ → Tⱼ`: some operation of `Tᵢ` conflicts with some
//!   operation of `Tⱼ`;
//! - *vulnerable* edge `Tᵢ → Tⱼ`: some read of `Tᵢ` rw-conflicts with a
//!   write of `Tⱼ`, and the pair shares **no** ww conflict — under SI's
//!   first-committer-wins, a shared write forbids both transactions
//!   committing while concurrent, protecting the edge;
//! - *dangerous structure*: vulnerable `T₁ → T₂` and `T₂ → T₃` (with
//!   `T₁ = T₃` allowed) such that the cycle closes: `T₃` reaches `T₁`
//!   through static edges.
//!
//! [`static_si_robust`] returns `Certified` only when no dangerous
//! structure exists; `tests` and the `sweep_baseline` binary verify
//! empirically that certification implies Algorithm 1 robustness, and
//! quantify the false-alarm rate.

use crate::algorithm1::is_robust;
use crate::conflict_index::ConflictIndex;
use mvisolation::Allocation;
use mvmodel::{TransactionSet, TxnId};

/// Verdict of the static test.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StaticVerdict {
    /// No dangerous structure in the SDG: the workload is certified
    /// robust against `𝒜_SI` (sound).
    Certified,
    /// A dangerous structure exists: the workload *may* be non-robust.
    /// The triple is the pivot pattern found.
    PotentiallyUnsafe { t1: TxnId, t2: TxnId, t3: TxnId },
}

impl StaticVerdict {
    pub fn certified(&self) -> bool {
        matches!(self, StaticVerdict::Certified)
    }
}

/// Runs the static SDG test for robustness against `𝒜_SI`.
pub fn static_si_robust(txns: &TransactionSet) -> StaticVerdict {
    let n = txns.len();
    if n < 2 {
        return StaticVerdict::Certified;
    }
    let index = ConflictIndex::new(txns);
    // vulnerable(i, j): read of i under-writes j, no shared ww.
    let vulnerable = |i: usize, j: usize| index.wr(j, i) && !index.ww(i, j);

    // Static connectivity (conflict edges are symmetric at transaction
    // level): union-find components.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut r = x;
        while parent[r] != r {
            r = parent[r];
        }
        let mut c = x;
        while parent[c] != r {
            let nxt = parent[c];
            parent[c] = r;
            c = nxt;
        }
        r
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if index.any(i, j) {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }

    for t2 in 0..n {
        for t1 in 0..n {
            if t1 == t2 || !vulnerable(t1, t2) {
                continue;
            }
            for t3 in 0..n {
                if t3 == t2 || !vulnerable(t2, t3) {
                    continue;
                }
                // Cycle closure: T₃ reaches T₁ (trivially when equal;
                // otherwise through the conflict graph).
                let closes = t3 == t1 || find(&mut parent, t3) == find(&mut parent, t1);
                if closes {
                    return StaticVerdict::PotentiallyUnsafe {
                        t1: txns.by_index(t1).id(),
                        t2: txns.by_index(t2).id(),
                        t3: txns.by_index(t3).id(),
                    };
                }
            }
        }
    }
    StaticVerdict::Certified
}

/// Compares the static baseline with the exact Algorithm 1 on a
/// workload: `(static_certified, exactly_robust)`. Soundness demands
/// `static_certified ⟹ exactly_robust`; the interesting cases are the
/// false alarms (`!static_certified && exactly_robust`).
pub fn compare_with_exact(txns: &TransactionSet) -> (bool, bool) {
    let certified = static_si_robust(txns).certified();
    let exact = is_robust(txns, &Allocation::uniform_si(txns)).robust();
    debug_assert!(!certified || exact, "static certification must be sound");
    (certified, exact)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvmodel::TxnSetBuilder;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn write_skew_flagged() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).read(y).write(x).finish();
        let txns = b.build().unwrap();
        let v = static_si_robust(&txns);
        assert!(!v.certified());
        // Exact agrees here: genuinely non-robust.
        assert_eq!(compare_with_exact(&txns), (false, false));
    }

    #[test]
    fn lost_update_certified() {
        // R+W / R+W on one object: the rw edges are protected by the
        // shared ww — certified, and indeed SI-robust.
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        b.txn(1).read(x).write(x).finish();
        b.txn(2).read(x).write(x).finish();
        let txns = b.build().unwrap();
        assert!(static_si_robust(&txns).certified());
        assert_eq!(compare_with_exact(&txns), (true, true));
    }

    #[test]
    fn disjoint_workload_certified() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).read(x).write(x).finish();
        b.txn(2).read(y).write(y).finish();
        let txns = b.build().unwrap();
        assert!(static_si_robust(&txns).certified());
    }

    #[test]
    fn single_txn_certified() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        b.txn(1).read(x).finish();
        let txns = b.build().unwrap();
        assert!(static_si_robust(&txns).certified());
    }

    /// The static test can cry wolf: a pivot pattern whose cycle cannot
    /// actually materialize. T1 reads x (written by T2), T2 reads y
    /// (written by T3), and T3 is linked back to T1 only through a
    /// *protected* path — exact analysis may still prove robustness.
    /// We verify soundness + measure that false alarms exist at all.
    #[test]
    fn static_test_is_sound_but_conservative_on_random_workloads() {
        let mut rng = SmallRng::seed_from_u64(0x5D6);
        let mut false_alarms = 0usize;
        let mut agreements = 0usize;
        for _ in 0..300 {
            let mut b = TxnSetBuilder::new();
            let objs: Vec<_> = (0..4).map(|i| b.object(&format!("o{i}"))).collect();
            for id in 1..=4u32 {
                let len = rng.random_range(1..=3usize);
                let mut t = b.txn(id);
                let mut used = Vec::new();
                for _ in 0..len {
                    let o = rng.random_range(0..objs.len());
                    let w = rng.random_bool(0.5);
                    if used.contains(&(w, o)) {
                        continue;
                    }
                    used.push((w, o));
                    t = if w { t.write(objs[o]) } else { t.read(objs[o]) };
                }
                t.finish();
            }
            let txns = b.build().unwrap();
            let (certified, exact) = compare_with_exact(&txns);
            assert!(!certified || exact, "soundness violated");
            if certified == exact {
                agreements += 1;
            } else {
                false_alarms += 1;
            }
        }
        assert!(agreements > 0);
        assert!(
            false_alarms > 0,
            "expected the static test to be strictly more conservative somewhere"
        );
    }

    /// TPC-C: the canonical workload the static test certifies.
    #[test]
    fn tpcc_style_protected_edges() {
        // Payment-like pair: both R+W the same counter → protected.
        // Reader of the counter → vulnerable in, but no vulnerable out.
        let mut b = TxnSetBuilder::new();
        let ytd = b.object("ytd");
        let bal = b.object("bal");
        b.txn(1).read(ytd).write(ytd).finish();
        b.txn(2).read(ytd).write(ytd).read(bal).write(bal).finish();
        b.txn(3).read(ytd).read(bal).finish(); // reporting
        let txns = b.build().unwrap();
        assert!(static_si_robust(&txns).certified());
        assert_eq!(compare_with_exact(&txns), (true, true));
    }
}
