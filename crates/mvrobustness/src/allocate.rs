//! Algorithm 2: computing the unique optimal robust allocation over
//! `{RC, SI, SSI}`.
//!
//! [`Allocator`] is the engine-backed entry point: one
//! [`RobustnessChecker`] (conflict matrices, per-`T₁` iso-graph cache,
//! optional search threads) serves every probe, and a
//! **counterexample cache** answers most failing probes without a
//! search at all. A [`crate::SplitSpec`] that defeated one lowering
//! usually defeats the next: before each full probe, cached specs are
//! re-validated against the candidate allocation with
//! [`crate::SplitSpec::check`] — sound because a spec that checks *is*
//! a multiversion split schedule for the candidate (Theorem 3.2), so
//! the candidate is certainly not robust. Cache misses fall through to
//! the full search, so the refinement's decisions — and therefore the
//! computed optimum — are bit-for-bit those of the uncached algorithm.
//!
//! The free functions ([`optimal_allocation`] &c.) keep their original
//! signatures and delegate to a single-threaded [`Allocator`].
//!
//! # Online deltas
//!
//! [`Allocator::add_txn`] / [`Allocator::remove_txn`] maintain the
//! optimum *incrementally* as the workload changes (the access pattern
//! of a long-running allocation service). They exploit the monotonicity
//! of the unique optimum (Proposition 4.1(2) / Theorem 4.3):
//!
//! - **Adding** a transaction can only *raise* levels: any robust
//!   allocation of the grown set restricts to a robust allocation of the
//!   old set, so the new optimum dominates the old one pointwise. The
//!   delta path first probes the previous optimum extended with the new
//!   transaction at the ceiling — when that is robust, refinement starts
//!   there instead of from the uniform ceiling; when it is not, the full
//!   refinement runs with the old optimum as a *floor*, skipping every
//!   lowering the old optimum already ruled out.
//! - **Removing** a transaction can only *lower* levels: the old optimum
//!   restricted to the survivors is still robust, so refinement starts
//!   from that restriction and only probes transactions that might drop.
//!
//! Both paths share one persistent counterexample cache across
//! reallocations (specs mentioning a removed transaction are pruned —
//! they may dangle; every other spec remains a sound rejection
//! certificate because [`SplitSpec::check`] re-validates it against the
//! current set and candidate). Acceptances always come from a full
//! probe, so delta results are bit-for-bit the from-scratch optimum —
//! `tests/delta_equivalence.rs` asserts exactly that on randomized
//! workloads.

use crate::algorithm1::RobustnessChecker;
use crate::components::{CompCache, CompEntry, Components, SharedCompCache, COMP_CACHE_CAP};
use crate::conflict_index::ConflictIndex;
use crate::split_schedule::SplitSpec;
use crate::stats::EngineStats;
use mvisolation::{Allocation, IsolationLevel, LevelChange};
use mvmodel::{ModelError, Object, Transaction, TransactionSet, TxnId};
use std::borrow::Cow;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A failed lowering attempt: the transaction, the level that was
/// tried, and the counterexample that rejected it.
pub type Reason = (TxnId, IsolationLevel, SplitSpec);

/// The isolation-level menu an allocation may draw from.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LevelSet {
    /// `{RC, SI}` — the Oracle-style restriction of §5, where no robust
    /// allocation may exist (Proposition 5.4).
    RcSi,
    /// `{RC, SI, SSI}` — the full ladder of §4; the uniform-SSI ceiling
    /// is always robust, so an optimum always exists.
    #[default]
    RcSiSsi,
}

impl LevelSet {
    pub const ALL: [LevelSet; 2] = [LevelSet::RcSi, LevelSet::RcSiSsi];

    /// The canonical spelling, accepted by [`LevelSet::from_str`].
    pub fn label(self) -> &'static str {
        match self {
            LevelSet::RcSi => "rc-si",
            LevelSet::RcSiSsi => "rc-si-ssi",
        }
    }

    /// The highest level of the menu — the refinement's starting point.
    pub fn ceiling(self) -> IsolationLevel {
        match self {
            LevelSet::RcSi => IsolationLevel::SI,
            LevelSet::RcSiSsi => IsolationLevel::SSI,
        }
    }
}

impl std::fmt::Display for LevelSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Error from parsing a [`LevelSet`]; lists the accepted spellings.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseLevelSetError(pub String);

impl std::fmt::Display for ParseLevelSetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let accepted: Vec<&str> = LevelSet::ALL.iter().map(|l| l.label()).collect();
        write!(
            f,
            "unknown level set `{}` (accepted: {})",
            self.0,
            accepted.join(", ")
        )
    }
}

impl std::error::Error for ParseLevelSetError {}

impl std::str::FromStr for LevelSet {
    type Err = ParseLevelSetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        LevelSet::ALL
            .into_iter()
            .find(|l| l.label().eq_ignore_ascii_case(s))
            .ok_or_else(|| ParseLevelSetError(s.to_string()))
    }
}

/// Why a registry mutation was rejected. The [`Allocator`]'s transaction
/// set and optimum are unchanged after an error: unallocatable or
/// timed-out mutations are rolled back (a timed-out removal re-inserts
/// the transaction), so the cached optimum always matches the set.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AllocError {
    /// [`Allocator::add_txn`] with an id already registered.
    Duplicate(TxnId),
    /// [`Allocator::remove_txn`] with an id not registered.
    Unknown(TxnId),
    /// No robust allocation exists over the level set (only possible for
    /// [`LevelSet::RcSi`], by Proposition 5.4).
    NotAllocatable(LevelSet),
    /// The reallocation's deadline expired before refinement finished
    /// (see [`Allocator::with_op_timeout`]); the mutation was rolled
    /// back and the previous optimum still stands.
    Timeout,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::Duplicate(t) => write!(f, "transaction {t} is already registered"),
            AllocError::Unknown(t) => write!(f, "transaction {t} is not registered"),
            AllocError::NotAllocatable(l) => {
                write!(f, "no robust {l} allocation exists for the workload")
            }
            AllocError::Timeout => {
                write!(f, "reallocation timed out and was rolled back")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// The outcome of one (incremental) reallocation: the new optimum, the
/// transactions whose level changed relative to the previous optimum
/// ([`Allocation::diff`]), and the engine work counters.
#[derive(Clone, Debug)]
pub struct Realloc {
    pub allocation: Allocation,
    pub changed: Vec<LevelChange>,
    pub stats: EngineStats,
}

/// One membership mutation inside a coalesced batch
/// ([`Allocator::apply_batch`]).
#[derive(Clone, Debug)]
pub enum DeltaEvent {
    /// Register a transaction (see [`Allocator::add_txn`]).
    Add(Transaction),
    /// Deregister a transaction (see [`Allocator::remove_txn`]).
    Remove(TxnId),
}

impl DeltaEvent {
    /// The transaction the event concerns.
    pub fn id(&self) -> TxnId {
        match self {
            DeltaEvent::Add(t) => t.id(),
            DeltaEvent::Remove(id) => *id,
        }
    }
}

/// The outcome of one coalesced batch of membership mutations
/// ([`Allocator::apply_batch`]): the new optimum, one verdict per
/// event, and the changed-levels diff versus the *pre-batch* optimum.
#[derive(Clone, Debug)]
pub struct BatchRealloc {
    pub allocation: Allocation,
    /// Per-event verdicts, in input order. `Err` events were rolled
    /// back individually (a rejected add is not in the set; a duplicate
    /// add or unknown remove never touched it); all `Ok` events become
    /// visible in `allocation` atomically.
    pub outcomes: Vec<Result<(), AllocError>>,
    /// `prev.diff(new)` of the pre-batch and post-batch optima — the
    /// net level movement of the whole batch, not per event.
    pub changed: Vec<LevelChange>,
    pub stats: EngineStats,
}

impl BatchRealloc {
    /// How many events were applied (the `Ok` verdicts).
    pub fn accepted(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_ok()).count()
    }
}

/// Counterexamples kept across reallocations beyond this count are
/// discarded oldest-first: the cache is only an accelerator, and
/// re-validating an unbounded backlog on every probe would eventually
/// cost more than the probes it saves.
const SPEC_CACHE_CAP: usize = 256;

/// Engine-backed Algorithm 2 runner over one transaction set.
///
/// ```text
/// let (alloc, stats) = Allocator::new(&txns).with_threads(4).optimal();
/// ```
///
/// Constructed with [`Allocator::new`] it borrows the set; constructed
/// with [`Allocator::from_owned`] it owns it and additionally supports
/// the online delta API ([`Allocator::add_txn`],
/// [`Allocator::remove_txn`], [`Allocator::current`]).
pub struct Allocator<'a> {
    txns: Cow<'a, TransactionSet>,
    threads: usize,
    levels: LevelSet,
    /// Per-mutation deadline budget for the delta API (None = unbounded).
    op_timeout: Option<Duration>,
    /// The optimum of the current set, when known (delta API state).
    last: Option<Allocation>,
    /// Counterexamples from past lowerings, reused across reallocations.
    specs: Vec<SplitSpec>,
    /// Work counters of the most recent reallocation.
    last_stats: Option<EngineStats>,
    /// Component sharding (on by default; `with_components(false)` is
    /// the unsharded escape hatch).
    components: bool,
    /// Solved components keyed by content fingerprint, persisted across
    /// reallocations: a delta that leaves a component untouched answers
    /// it from here without any search.
    comp_cache: CompCache,
    /// Optional second-level component cache shared across allocators
    /// (cross-tenant in `mvservice`). Consulted after a local miss;
    /// solved components are published to both.
    shared_cache: Option<Arc<SharedCompCache>>,
}

impl<'a> Allocator<'a> {
    pub fn new(txns: &'a TransactionSet) -> Self {
        Allocator {
            txns: Cow::Borrowed(txns),
            threads: 1,
            levels: LevelSet::default(),
            op_timeout: None,
            last: None,
            specs: Vec::new(),
            last_stats: None,
            components: true,
            comp_cache: CompCache::new(COMP_CACHE_CAP),
            shared_cache: None,
        }
    }

    /// An allocator owning its transaction set — the form the online
    /// delta API mutates. Start from `TransactionSet::default()` for an
    /// initially empty registry.
    pub fn from_owned(txns: TransactionSet) -> Allocator<'static> {
        Allocator {
            txns: Cow::Owned(txns),
            threads: 1,
            levels: LevelSet::default(),
            op_timeout: None,
            last: None,
            specs: Vec::new(),
            last_stats: None,
            components: true,
            comp_cache: CompCache::new(COMP_CACHE_CAP),
            shared_cache: None,
        }
    }

    /// Worker threads for each probe's outer search (clamped to ≥ 1).
    /// Results are identical at every thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enables or disables the component-sharded engine (on by
    /// default). Sharding decomposes the workload into conflict
    /// components, solves each independently (in parallel with
    /// [`Allocator::with_threads`] > 1), and unions the per-component
    /// optima — bit-identical to the unsharded result by the uniqueness
    /// of the optimum (Prop. 4.2) and component locality of split
    /// schedules. `false` restores the pre-sharding engine exactly
    /// (`--no-components`).
    pub fn with_components(mut self, on: bool) -> Self {
        self.components = on;
        self
    }

    /// Whether component sharding is enabled.
    pub fn components_enabled(&self) -> bool {
        self.components
    }

    /// Attaches a [`SharedCompCache`] consulted after local-cache misses
    /// and fed by every solve. Sharing one handle across allocators
    /// makes identical component shapes pure hits for all of them; the
    /// results stay bit-identical because entries are content-addressed
    /// unique optima (Proposition 4.2). Unlike the local cache, the
    /// shared cache survives [`Allocator::with_levels`] — the menu is
    /// part of its key.
    pub fn with_shared_cache(mut self, cache: Arc<SharedCompCache>) -> Self {
        self.shared_cache = Some(cache);
        self
    }

    /// The attached shared component cache, if any.
    pub fn shared_cache(&self) -> Option<&Arc<SharedCompCache>> {
        self.shared_cache.as_ref()
    }

    /// The level menu used by the delta API ([`Allocator::current`],
    /// [`Allocator::add_txn`], [`Allocator::remove_txn`]). The one-shot
    /// methods ([`Allocator::optimal`], [`Allocator::optimal_rc_si`])
    /// select their menu by name instead and ignore this setting.
    ///
    /// Changing the menu clears the component cache: cached entries are
    /// optima *for a menu*, and the menu is deliberately not part of the
    /// content-addressed key.
    pub fn with_levels(mut self, levels: LevelSet) -> Self {
        if levels != self.levels {
            self.comp_cache.clear();
        }
        self.levels = levels;
        self
    }

    /// The configured level menu.
    pub fn levels(&self) -> LevelSet {
        self.levels
    }

    /// Caps how long each delta mutation ([`Allocator::add_txn`],
    /// [`Allocator::remove_txn`], the first [`Allocator::current`]) may
    /// spend refining. The deadline is checked between probes (a single
    /// probe is never interrupted); on expiry the mutation is **rolled
    /// back** — an add reverts the insertion, a remove re-inserts the
    /// transaction — and [`AllocError::Timeout`] is returned, so the
    /// cached optimum keeps matching the set exactly. The one-shot
    /// methods ([`Allocator::optimal`] &c.) ignore this setting.
    pub fn with_op_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.op_timeout = timeout;
        self
    }

    /// The configured per-mutation timeout.
    pub fn op_timeout(&self) -> Option<Duration> {
        self.op_timeout
    }

    /// The deadline for a delta mutation starting now.
    fn op_deadline(&self) -> Option<Instant> {
        self.op_timeout.map(|t| Instant::now() + t)
    }

    /// The transaction set the allocator currently covers.
    pub fn txns(&self) -> &TransactionSet {
        self.txns.as_ref()
    }

    /// Interns an object name against the owned set (see
    /// [`TransactionSet::intern_object`]) so transactions registered
    /// later share object identities. Interning never alters conflicts,
    /// so the cached optimum stays valid.
    pub fn intern_object(&mut self, name: &str) -> Object {
        self.txns.to_mut().intern_object(name)
    }

    fn checker(&self) -> RobustnessChecker<'_> {
        RobustnessChecker::new(self.txns.as_ref())
            .with_threads(self.threads)
            .with_components(self.components)
    }

    fn finish(
        &self,
        checker: &RobustnessChecker<'_>,
        cache: &CacheStats,
        start: Instant,
    ) -> EngineStats {
        EngineStats {
            probes: checker.stats().probes(),
            cache_hits: cache.hits,
            cached_specs: cache.specs,
            iso_builds: checker.stats().iso_builds(),
            components_checked: checker.stats().components_checked(),
            components_cached: checker.stats().components_cached(),
            kernel_row_ops: checker.stats().kernel_row_ops(),
            batch_events: 0,
            batched_components_solved: 0,
            threads: self.threads,
            wall: start.elapsed(),
        }
    }

    /// The unique optimal robust allocation over `{RC, SI, SSI}`
    /// (Theorem 4.3), plus the work counters.
    pub fn optimal(&self) -> (Allocation, EngineStats) {
        let start = Instant::now();
        if self.components {
            let mut cache = CompCache::new(COMP_CACHE_CAP);
            let mut s = ShardStats::default();
            match shard_optimal(
                self.txns(),
                LevelSet::RcSiSsi,
                self.threads,
                None,
                &mut cache,
                self.shared_cache.as_deref(),
                &mut s,
            ) {
                Ok(ShardOutcome::Solved(alloc)) => {
                    return (alloc, s.engine_stats(self.threads, 0, start));
                }
                Ok(ShardOutcome::Unallocatable) => {
                    unreachable!("the all-SSI ceiling is always robust")
                }
                Ok(ShardOutcome::Skip) => {}
                Err(Expired) => unreachable!("no deadline was set"),
            }
        }
        let checker = self.checker();
        let (alloc, cache) = refine_cached(
            self.txns(),
            &checker,
            Allocation::uniform_ssi(self.txns()),
            None,
            &mut |_, _, _| {},
        );
        let stats = self.finish(&checker, &cache, start);
        (alloc, stats)
    }

    /// [`Allocator::optimal`] that also reports, for each lowering
    /// attempt that failed, the counterexample that rejected it.
    pub fn optimal_explained(&self) -> (Allocation, Vec<Reason>, EngineStats) {
        let start = Instant::now();
        let checker = self.checker();
        let mut reasons = Vec::new();
        let (alloc, cache) = refine_cached(
            self.txns(),
            &checker,
            Allocation::uniform_ssi(self.txns()),
            None,
            &mut |t, lvl, spec| reasons.push((t, lvl, spec.clone())),
        );
        let stats = self.finish(&checker, &cache, start);
        (alloc, reasons, stats)
    }

    /// The least robust allocation inside the box `lo ≤ 𝒜 ≤ hi`
    /// (pointwise), or `None` when no robust allocation exists in the
    /// box. See [`optimal_allocation_in_box`] for the correctness
    /// argument and use cases.
    ///
    /// Panics when `lo`/`hi` do not cover every transaction or `lo ≰ hi`.
    pub fn optimal_in_box(
        &self,
        lo: &Allocation,
        hi: &Allocation,
    ) -> (Option<Allocation>, EngineStats) {
        assert!(
            lo.covers(self.txns()) && hi.covers(self.txns()),
            "bounds must cover every transaction"
        );
        assert!(lo.le(hi), "need lo ≤ hi pointwise");
        let start = Instant::now();
        let checker = self.checker();
        if !checker.is_robust(hi).robust() {
            let stats = self.finish(&checker, &CacheStats::default(), start);
            return (None, stats);
        }
        let (alloc, cache) = refine_cached(
            self.txns(),
            &checker,
            hi.clone(),
            Some(lo),
            &mut |_, _, _| {},
        );
        let stats = self.finish(&checker, &cache, start);
        (Some(alloc), stats)
    }

    /// [`Allocator::optimal_in_box`] with only a lower bound
    /// (`hi = 𝒜_SSI`). Always succeeds, since `𝒜_SSI` is robust.
    pub fn optimal_with_floor(&self, floor: &Allocation) -> (Allocation, EngineStats) {
        let (alloc, stats) = self.optimal_in_box(floor, &Allocation::uniform_ssi(self.txns()));
        (alloc.expect("the all-SSI ceiling is always robust"), stats)
    }

    /// The unique optimal robust `{RC, SI}`-allocation (Theorem 5.5),
    /// or `None` when none exists — i.e. when `𝒜_SI` itself is not
    /// robust (Proposition 5.4).
    pub fn optimal_rc_si(&self) -> (Option<Allocation>, EngineStats) {
        let start = Instant::now();
        if self.components {
            let mut cache = CompCache::new(COMP_CACHE_CAP);
            let mut s = ShardStats::default();
            match shard_optimal(
                self.txns(),
                LevelSet::RcSi,
                self.threads,
                None,
                &mut cache,
                self.shared_cache.as_deref(),
                &mut s,
            ) {
                Ok(ShardOutcome::Solved(alloc)) => {
                    return (Some(alloc), s.engine_stats(self.threads, 0, start));
                }
                Ok(ShardOutcome::Unallocatable) => {
                    return (None, s.engine_stats(self.threads, 0, start));
                }
                Ok(ShardOutcome::Skip) => {}
                Err(Expired) => unreachable!("no deadline was set"),
            }
        }
        let checker = self.checker();
        let si = Allocation::uniform_si(self.txns());
        if !checker.is_robust(&si).robust() {
            let stats = self.finish(&checker, &CacheStats::default(), start);
            return (None, stats);
        }
        let (alloc, cache) = refine_cached(self.txns(), &checker, si, None, &mut |_, _, _| {});
        let stats = self.finish(&checker, &cache, start);
        (Some(alloc), stats)
    }

    // ---- Online delta API -------------------------------------------

    /// The optimum of the current set over the configured
    /// [`LevelSet`], computing (and caching) it on first use.
    pub fn current(&mut self) -> Result<&Allocation, AllocError> {
        self.ensure_current(self.op_deadline())?;
        Ok(self.last.as_ref().expect("ensure_current fills the cache"))
    }

    /// Work counters of the most recent delta-API (re)allocation.
    pub fn last_stats(&self) -> Option<&EngineStats> {
        self.last_stats.as_ref()
    }

    /// Registers `txn` and incrementally recomputes the optimum.
    ///
    /// Adding a transaction can only raise levels (any robust allocation
    /// of the grown set restricts to a robust one of the old set), so the
    /// previous optimum is a valid *floor* for every surviving
    /// transaction. The fast path probes the previous optimum extended
    /// with the newcomer at the ceiling; since the optimum is the
    /// pointwise-least robust allocation, refining from that candidate
    /// (when robust) or from the uniform ceiling (otherwise) reaches the
    /// exact from-scratch optimum.
    ///
    /// Over [`LevelSet::RcSi`] the grown workload may not be
    /// allocatable; the insertion is then rolled back and the previous
    /// optimum kept.
    pub fn add_txn(&mut self, txn: Transaction) -> Result<Realloc, AllocError> {
        self.add_txn_by(txn, self.op_deadline())
    }

    /// [`Allocator::add_txn`] against an explicit deadline (`None` =
    /// unbounded), overriding the configured
    /// [`Allocator::with_op_timeout`] budget for this one mutation. On
    /// expiry the insertion is rolled back and the previous optimum
    /// stands ([`AllocError::Timeout`]).
    pub fn add_txn_by(
        &mut self,
        txn: Transaction,
        deadline: Option<Instant>,
    ) -> Result<Realloc, AllocError> {
        let id = txn.id();
        if self.txns.contains(id) {
            return Err(AllocError::Duplicate(id));
        }
        // The pre-mutation optimum is both the diff baseline and the
        // refinement floor; make sure it exists before mutating.
        self.ensure_current(deadline)?;
        self.txns
            .to_mut()
            .insert(txn)
            .map_err(|_: ModelError| AllocError::Duplicate(id))?;
        let prev = self.last.clone().expect("ensure_current fills the cache");
        let start = Instant::now();
        if self.components {
            let mut s = ShardStats::default();
            match shard_optimal(
                self.txns.as_ref(),
                self.levels,
                self.threads,
                deadline,
                &mut self.comp_cache,
                self.shared_cache.as_deref(),
                &mut s,
            ) {
                Ok(ShardOutcome::Solved(alloc)) => {
                    return Ok(self.accept_delta(&prev, alloc, start, s));
                }
                outcome @ (Ok(ShardOutcome::Unallocatable) | Err(Expired)) => {
                    // Roll back exactly like the unsharded path below.
                    self.txns.to_mut().remove(id);
                    self.specs.retain(|sp| !spec_mentions(sp, id));
                    return Err(match outcome {
                        Err(Expired) => AllocError::Timeout,
                        _ => AllocError::NotAllocatable(self.levels),
                    });
                }
                Ok(ShardOutcome::Skip) => {}
            }
        }
        let ceiling = self.levels.ceiling();
        let rc_si = self.levels == LevelSet::RcSi;
        let (outcome, csnap) = {
            let txns: &TransactionSet = &self.txns;
            let checker = RobustnessChecker::new(txns)
                .with_threads(self.threads)
                .with_components(self.components);
            let mut hits = 0u64;
            let floor = prev.with(id, IsolationLevel::RC);

            let outcome = if expired(deadline) {
                Err(Expired)
            } else {
                // Fast path: previous optimum + newcomer at the ceiling.
                let candidate = prev.with(id, ceiling);
                let candidate_ok =
                    probe_cached(txns, &checker, &mut self.specs, &candidate, &mut hits);
                if candidate_ok {
                    refine_with(
                        txns,
                        &checker,
                        &mut self.specs,
                        candidate,
                        Some(&floor),
                        deadline,
                        &mut |_, _, _| {},
                    )
                    .map(|(alloc, h)| Some((alloc, hits + h)))
                } else if expired(deadline) {
                    Err(Expired)
                } else {
                    // Slow path: the old optimum no longer suffices — some
                    // survivor must rise. Refine from the uniform ceiling
                    // (robust unconditionally for {RC, SI, SSI}; probed for
                    // {RC, SI}, where it may fail).
                    let uniform = Allocation::uniform(txns, ceiling);
                    let robust = !rc_si
                        || probe_cached(txns, &checker, &mut self.specs, &uniform, &mut hits);
                    if robust {
                        refine_with(
                            txns,
                            &checker,
                            &mut self.specs,
                            uniform,
                            Some(&floor),
                            deadline,
                            &mut |_, _, _| {},
                        )
                        .map(|(alloc, h)| Some((alloc, hits + h)))
                    } else {
                        Ok(None)
                    }
                }
            };
            (outcome, snap(&checker))
        };
        match outcome {
            Ok(Some((alloc, hits))) => {
                trim_specs(&mut self.specs);
                let stats = EngineStats {
                    probes: csnap.probes,
                    cache_hits: hits,
                    cached_specs: self.specs.len() as u64,
                    iso_builds: csnap.iso_builds,
                    components_checked: csnap.components_checked,
                    components_cached: csnap.components_cached,
                    kernel_row_ops: csnap.kernel_row_ops,
                    batch_events: 0,
                    batched_components_solved: 0,
                    threads: self.threads,
                    wall: start.elapsed(),
                };
                let changed = prev.diff(&alloc);
                self.last = Some(alloc.clone());
                self.last_stats = Some(stats.clone());
                Ok(Realloc {
                    allocation: alloc,
                    changed,
                    stats,
                })
            }
            outcome @ (Ok(None) | Err(Expired)) => {
                // Roll back: the set reverts, specs mentioning the
                // rejected newcomer would dangle, the old optimum stands.
                self.txns.to_mut().remove(id);
                self.specs.retain(|s| !spec_mentions(s, id));
                match outcome {
                    Err(Expired) => Err(AllocError::Timeout),
                    _ => Err(AllocError::NotAllocatable(self.levels)),
                }
            }
        }
    }

    /// Deregisters `id` and incrementally recomputes the optimum.
    ///
    /// Removing a transaction can only lower levels: the previous
    /// optimum restricted to the survivors is still robust (allowed
    /// schedules of a subset are allowed schedules of the full set), so
    /// refinement starts from that restriction. Shrinking a workload
    /// cannot make it less allocatable, so the removal persists — unless
    /// the refinement deadline expires, in which case the transaction is
    /// re-inserted and the previous optimum stands.
    pub fn remove_txn(&mut self, id: TxnId) -> Result<Realloc, AllocError> {
        self.remove_txn_by(id, self.op_deadline())
    }

    /// [`Allocator::remove_txn`] against an explicit deadline (`None` =
    /// unbounded). On expiry the removal is rolled back (the transaction
    /// is re-inserted) and [`AllocError::Timeout`] is returned.
    pub fn remove_txn_by(
        &mut self,
        id: TxnId,
        deadline: Option<Instant>,
    ) -> Result<Realloc, AllocError> {
        if !self.txns.contains(id) {
            return Err(AllocError::Unknown(id));
        }
        let removed = self
            .txns
            .to_mut()
            .remove(id)
            .expect("contains(id) checked above");
        // Specs mentioning the departed transaction reference ids and op
        // indices that no longer resolve — drop them. Every other cached
        // spec only touches surviving transactions and stays sound.
        // (Dropping them is sound even if the removal rolls back below:
        // the cache is only an accelerator.)
        self.specs.retain(|s| !spec_mentions(s, id));
        let Some(prev) = self.last.clone() else {
            // No optimum yet (never computed, or the previous set was
            // not {RC, SI}-allocatable): compute from scratch.
            if let Err(e) = self.ensure_current(deadline) {
                if e == AllocError::Timeout {
                    // Restore the set; there was no optimum to preserve.
                    self.txns
                        .to_mut()
                        .insert(removed)
                        .expect("re-inserting the just-removed transaction");
                }
                return Err(e);
            }
            let alloc = self.last.clone().expect("ensure_current fills the cache");
            let stats = self.last_stats.clone().expect("ensure_current fills stats");
            let changed = alloc
                .iter()
                .map(|(txn, level)| LevelChange {
                    txn,
                    before: None,
                    after: Some(level),
                })
                .collect();
            return Ok(Realloc {
                allocation: alloc,
                changed,
                stats,
            });
        };
        let start = Instant::now();
        if self.components {
            let mut s = ShardStats::default();
            match shard_optimal(
                self.txns.as_ref(),
                self.levels,
                self.threads,
                deadline,
                &mut self.comp_cache,
                self.shared_cache.as_deref(),
                &mut s,
            ) {
                Ok(ShardOutcome::Solved(alloc)) => {
                    return Ok(self.accept_delta(&prev, alloc, start, s));
                }
                Err(Expired) => {
                    self.txns
                        .to_mut()
                        .insert(removed)
                        .expect("re-inserting the just-removed transaction");
                    return Err(AllocError::Timeout);
                }
                // Shrinking a workload cannot make it less allocatable,
                // and `prev` existed — Unallocatable is unreachable here;
                // fall through to the unsharded path defensively.
                Ok(ShardOutcome::Skip | ShardOutcome::Unallocatable) => {}
            }
        }
        let mut reduced = prev.clone();
        reduced.remove(id);
        let (outcome, csnap) = {
            let txns: &TransactionSet = &self.txns;
            let checker = RobustnessChecker::new(txns)
                .with_threads(self.threads)
                .with_components(self.components);
            let outcome = refine_with(
                txns,
                &checker,
                &mut self.specs,
                reduced,
                None,
                deadline,
                &mut |_, _, _| {},
            );
            (outcome, snap(&checker))
        };
        let (alloc, hits) = match outcome {
            Ok(pair) => pair,
            Err(Expired) => {
                // Roll back: re-insert the transaction; `prev` is still
                // the optimum of the restored set.
                self.txns
                    .to_mut()
                    .insert(removed)
                    .expect("re-inserting the just-removed transaction");
                return Err(AllocError::Timeout);
            }
        };
        trim_specs(&mut self.specs);
        let stats = EngineStats {
            probes: csnap.probes,
            cache_hits: hits,
            cached_specs: self.specs.len() as u64,
            iso_builds: csnap.iso_builds,
            components_checked: csnap.components_checked,
            components_cached: csnap.components_cached,
            kernel_row_ops: csnap.kernel_row_ops,
            batch_events: 0,
            batched_components_solved: 0,
            threads: self.threads,
            wall: start.elapsed(),
        };
        let changed = prev.diff(&alloc);
        self.last = Some(alloc.clone());
        self.last_stats = Some(stats.clone());
        Ok(Realloc {
            allocation: alloc,
            changed,
            stats,
        })
    }

    /// Applies a coalesced batch of membership mutations with **one**
    /// reallocation.
    ///
    /// Semantics are defined by equivalence: the final membership, the
    /// final optimum, and the per-event verdicts are bit-for-bit those
    /// of applying the events one at a time through
    /// [`Allocator::add_txn`] / [`Allocator::remove_txn`] in input
    /// order (`tests/batch_equivalence.rs` asserts exactly that on
    /// randomized sequences). The engine work is *not* sequential:
    ///
    /// - Over `{RC, SI, SSI}` an add can never be rejected (the SSI
    ///   ceiling is always robust), so per-event verdicts reduce to
    ///   membership bookkeeping (duplicate adds, unknown removes). The
    ///   batch applies every valid event to the membership first and
    ///   solves the final set **once**: untouched conflict components
    ///   are answered by the persistent fingerprint cache, and only the
    ///   union of touched components is solved (largest-first,
    ///   work-stealing under [`Allocator::with_threads`]). By
    ///   uniqueness of the optimum (Proposition 4.2) this single solve
    ///   equals the sequential fold.
    /// - Over `{RC, SI}` an add may be rejected, and acceptance is
    ///   decided against the membership *at that point in the
    ///   sequence* — an optimistic whole-batch solve would accept
    ///   interleavings sequential processing rejects (an unallocatable
    ///   add followed by the remove that would have made it
    ///   allocatable). The batch therefore falls back to the sequential
    ///   delta path per event, still sharing the persistent component
    ///   fingerprint cache across events.
    ///
    /// A deadline expiry rolls back the **whole batch** — membership
    /// and optimum revert to the pre-batch state — and returns
    /// [`AllocError::Timeout`], so a caller's last-known-good
    /// degradation story is the same as for single events.
    pub fn apply_batch(&mut self, events: Vec<DeltaEvent>) -> Result<BatchRealloc, AllocError> {
        self.apply_batch_by(events, self.op_deadline())
    }

    /// [`Allocator::apply_batch`] against an explicit deadline (`None`
    /// = unbounded), overriding the configured
    /// [`Allocator::with_op_timeout`] budget for this one batch.
    pub fn apply_batch_by(
        &mut self,
        events: Vec<DeltaEvent>,
        deadline: Option<Instant>,
    ) -> Result<BatchRealloc, AllocError> {
        // The pre-batch optimum is both the diff baseline and (on
        // rollback) the state to serve; make sure it exists before
        // mutating — exactly like `add_txn`.
        self.ensure_current(deadline)?;
        let prev = self.last.clone().expect("ensure_current fills the cache");
        let start = Instant::now();
        if events.is_empty() {
            let stats = EngineStats {
                cached_specs: self.specs.len() as u64,
                threads: self.threads,
                wall: start.elapsed(),
                ..EngineStats::default()
            };
            return Ok(BatchRealloc {
                allocation: prev,
                outcomes: Vec::new(),
                changed: Vec::new(),
                stats,
            });
        }
        if self.levels == LevelSet::RcSi {
            return self.apply_batch_sequential(events, deadline, prev, start);
        }
        // {RC, SI, SSI}: simulate the event sequence on the membership
        // (verdicts are pure bookkeeping), then solve the final set once.
        let saved = self.txns.as_ref().clone();
        let touched: Vec<TxnId> = events.iter().map(|e| e.id()).collect();
        let n_events = events.len() as u64;
        let mut outcomes = Vec::with_capacity(events.len());
        // Newcomers still present at the end of the batch.
        let mut added: Vec<TxnId> = Vec::new();
        // Every id a Remove event successfully took out, even if a
        // later Add brought the id back: cached specs mention the *old*
        // transaction's operations and must not survive.
        let mut removed_ids: Vec<TxnId> = Vec::new();
        {
            let set = self.txns.to_mut();
            for ev in events {
                match ev {
                    DeltaEvent::Add(txn) => {
                        let id = txn.id();
                        if set.contains(id) {
                            outcomes.push(Err(AllocError::Duplicate(id)));
                        } else {
                            set.insert(txn).expect("contains(id) checked above");
                            added.push(id);
                            outcomes.push(Ok(()));
                        }
                    }
                    DeltaEvent::Remove(id) => {
                        if set.remove(id).is_some() {
                            added.retain(|&a| a != id);
                            removed_ids.push(id);
                            outcomes.push(Ok(()));
                        } else {
                            outcomes.push(Err(AllocError::Unknown(id)));
                        }
                    }
                }
            }
        }
        // Prune before solving: specs mentioning a removed transaction
        // dangle against the new set (same rule as `remove_txn`).
        if !removed_ids.is_empty() {
            self.specs
                .retain(|s| !removed_ids.iter().any(|&id| spec_mentions(s, id)));
        }
        if self.components {
            let mut s = ShardStats::default();
            match shard_optimal(
                self.txns.as_ref(),
                self.levels,
                self.threads,
                deadline,
                &mut self.comp_cache,
                self.shared_cache.as_deref(),
                &mut s,
            ) {
                Ok(ShardOutcome::Solved(alloc)) => {
                    let mut stats = s.engine_stats(self.threads, self.specs.len() as u64, start);
                    stats.batch_events = n_events;
                    stats.batched_components_solved = s.checked;
                    let changed = prev.diff(&alloc);
                    self.last = Some(alloc.clone());
                    self.last_stats = Some(stats.clone());
                    return Ok(BatchRealloc {
                        allocation: alloc,
                        outcomes,
                        changed,
                        stats,
                    });
                }
                Ok(ShardOutcome::Unallocatable) => {
                    unreachable!("the all-SSI ceiling is always robust")
                }
                Err(Expired) => return Err(self.rollback_batch(saved, &touched)),
                Ok(ShardOutcome::Skip) => {}
            }
        }
        let ceiling = self.levels.ceiling();
        let (outcome, csnap) = {
            let txns: &TransactionSet = &self.txns;
            let checker = RobustnessChecker::new(txns)
                .with_threads(self.threads)
                .with_components(self.components);
            let mut hits = 0u64;
            // Adds only raise levels (Proposition 4.1), so with no
            // successful remove the pre-batch optimum extended with the
            // newcomers at RC bounds the new optimum from below.
            let floor = if removed_ids.is_empty() {
                Some(
                    added
                        .iter()
                        .fold(prev.clone(), |a, &id| a.with(id, IsolationLevel::RC)),
                )
            } else {
                None
            };
            let outcome = if expired(deadline) {
                Err(Expired)
            } else {
                // Fast path: previous optimum restricted to the
                // survivors, newcomers at the ceiling. When robust it
                // dominates the new optimum (the pointwise-least robust
                // allocation), so refining from it reaches the exact
                // from-scratch optimum.
                let mut candidate = prev.clone();
                for &id in &removed_ids {
                    candidate.remove(id);
                }
                for &id in &added {
                    candidate.set(id, ceiling);
                }
                let candidate_ok =
                    probe_cached(txns, &checker, &mut self.specs, &candidate, &mut hits);
                let start_alloc = if candidate_ok {
                    Some(candidate)
                } else if expired(deadline) {
                    None
                } else {
                    // Slow path: some survivor must rise — refine from
                    // the uniform ceiling (robust unconditionally over
                    // {RC, SI, SSI}).
                    Some(Allocation::uniform(txns, ceiling))
                };
                match start_alloc {
                    None => Err(Expired),
                    Some(a) => refine_with(
                        txns,
                        &checker,
                        &mut self.specs,
                        a,
                        floor.as_ref(),
                        deadline,
                        &mut |_, _, _| {},
                    )
                    .map(|(alloc, h)| (alloc, hits + h)),
                }
            };
            (outcome, snap(&checker))
        };
        match outcome {
            Ok((alloc, hits)) => {
                trim_specs(&mut self.specs);
                let stats = EngineStats {
                    probes: csnap.probes,
                    cache_hits: hits,
                    cached_specs: self.specs.len() as u64,
                    iso_builds: csnap.iso_builds,
                    components_checked: csnap.components_checked,
                    components_cached: csnap.components_cached,
                    kernel_row_ops: csnap.kernel_row_ops,
                    batch_events: n_events,
                    batched_components_solved: 0,
                    threads: self.threads,
                    wall: start.elapsed(),
                };
                let changed = prev.diff(&alloc);
                self.last = Some(alloc.clone());
                self.last_stats = Some(stats.clone());
                Ok(BatchRealloc {
                    allocation: alloc,
                    outcomes,
                    changed,
                    stats,
                })
            }
            Err(Expired) => Err(self.rollback_batch(saved, &touched)),
        }
    }

    /// The `{RC, SI}` batch path: per-event sequential delta processing
    /// — acceptance depends on the membership at that point in the
    /// sequence (see [`Allocator::apply_batch`]) — still sharing the
    /// persistent component fingerprint cache so untouched components
    /// cost nothing per event. A deadline expiry rolls back the whole
    /// batch.
    fn apply_batch_sequential(
        &mut self,
        events: Vec<DeltaEvent>,
        deadline: Option<Instant>,
        prev: Allocation,
        start: Instant,
    ) -> Result<BatchRealloc, AllocError> {
        let saved = self.txns.as_ref().clone();
        let saved_last = self.last.clone();
        let saved_stats = self.last_stats.clone();
        let touched: Vec<TxnId> = events.iter().map(|e| e.id()).collect();
        let n_events = events.len() as u64;
        let mut outcomes = Vec::with_capacity(events.len());
        let mut acc = EngineStats::default();
        for ev in events {
            let res = match ev {
                DeltaEvent::Add(txn) => self.add_txn_by(txn, deadline),
                DeltaEvent::Remove(id) => self.remove_txn_by(id, deadline),
            };
            match res {
                Ok(r) => {
                    acc.probes += r.stats.probes;
                    acc.cache_hits += r.stats.cache_hits;
                    acc.iso_builds += r.stats.iso_builds;
                    acc.components_checked += r.stats.components_checked;
                    acc.components_cached += r.stats.components_cached;
                    acc.kernel_row_ops += r.stats.kernel_row_ops;
                    acc.batched_components_solved += r.stats.components_checked;
                    outcomes.push(Ok(()));
                }
                Err(AllocError::Timeout) => {
                    // Earlier events of the batch already applied must
                    // not survive a partial batch.
                    self.last = saved_last;
                    self.last_stats = saved_stats;
                    return Err(self.rollback_batch(saved, &touched));
                }
                Err(e) => outcomes.push(Err(e)),
            }
        }
        acc.batch_events = n_events;
        acc.cached_specs = self.specs.len() as u64;
        acc.threads = self.threads;
        acc.wall = start.elapsed();
        let alloc = self
            .last
            .clone()
            .expect("a batch without timeouts leaves an optimum");
        let changed = prev.diff(&alloc);
        self.last_stats = Some(acc.clone());
        Ok(BatchRealloc {
            allocation: alloc,
            outcomes,
            changed,
            stats: acc,
        })
    }

    /// Restores the pre-batch membership after a mid-batch deadline
    /// expiry and drops every cached spec that mentions a transaction
    /// the batch touched: such specs may have been minted against a
    /// mid-batch incarnation of the id and would dangle — or silently
    /// mismatch — against the restored set. Specs mentioning only
    /// untouched transactions stay sound verbatim (over-pruning is
    /// sound regardless; the cache is only an accelerator). The cached
    /// optimum still matches the restored set: the batch either never
    /// updated it or the caller restored it alongside.
    fn rollback_batch(&mut self, saved: TransactionSet, touched: &[TxnId]) -> AllocError {
        self.txns = Cow::Owned(saved);
        self.specs
            .retain(|s| !touched.iter().any(|&id| spec_mentions(s, id)));
        AllocError::Timeout
    }

    /// Installs a sharded delta result: builds the stats, diffs against
    /// the pre-mutation optimum, and updates the cached optimum.
    fn accept_delta(
        &mut self,
        prev: &Allocation,
        alloc: Allocation,
        start: Instant,
        s: ShardStats,
    ) -> Realloc {
        let stats = s.engine_stats(self.threads, self.specs.len() as u64, start);
        let changed = prev.diff(&alloc);
        self.last = Some(alloc.clone());
        self.last_stats = Some(stats.clone());
        Realloc {
            allocation: alloc,
            changed,
            stats,
        }
    }

    /// Computes the optimum of the current set from scratch into the
    /// delta cache. Only [`LevelSet::RcSi`] can fail to allocate; a
    /// passed deadline can expire (the cache is then left unfilled).
    fn ensure_current(&mut self, deadline: Option<Instant>) -> Result<(), AllocError> {
        if self.last.is_some() {
            return Ok(());
        }
        let start = Instant::now();
        if self.components {
            let mut s = ShardStats::default();
            match shard_optimal(
                self.txns.as_ref(),
                self.levels,
                self.threads,
                deadline,
                &mut self.comp_cache,
                self.shared_cache.as_deref(),
                &mut s,
            ) {
                Ok(ShardOutcome::Solved(alloc)) => {
                    self.last_stats =
                        Some(s.engine_stats(self.threads, self.specs.len() as u64, start));
                    self.last = Some(alloc);
                    return Ok(());
                }
                Ok(ShardOutcome::Unallocatable) => {
                    return Err(AllocError::NotAllocatable(self.levels));
                }
                Err(Expired) => return Err(AllocError::Timeout),
                Ok(ShardOutcome::Skip) => {}
            }
        }
        let rc_si = self.levels == LevelSet::RcSi;
        let ceiling = self.levels.ceiling();
        let (outcome, csnap) = {
            let txns: &TransactionSet = &self.txns;
            let checker = RobustnessChecker::new(txns)
                .with_threads(self.threads)
                .with_components(self.components);
            let mut hits = 0u64;
            let uniform = Allocation::uniform(txns, ceiling);
            let outcome = if expired(deadline) {
                Err(Expired)
            } else {
                // The SSI ceiling is robust unconditionally; the SI
                // ceiling must be probed (Proposition 5.4).
                let robust =
                    !rc_si || probe_cached(txns, &checker, &mut self.specs, &uniform, &mut hits);
                if robust {
                    refine_with(
                        txns,
                        &checker,
                        &mut self.specs,
                        uniform,
                        None,
                        deadline,
                        &mut |_, _, _| {},
                    )
                    .map(|(alloc, h)| Some((alloc, hits + h)))
                } else {
                    Ok(None)
                }
            };
            (outcome, snap(&checker))
        };
        trim_specs(&mut self.specs);
        match outcome {
            Ok(Some((alloc, hits))) => {
                self.last_stats = Some(EngineStats {
                    probes: csnap.probes,
                    cache_hits: hits,
                    cached_specs: self.specs.len() as u64,
                    iso_builds: csnap.iso_builds,
                    components_checked: csnap.components_checked,
                    components_cached: csnap.components_cached,
                    kernel_row_ops: csnap.kernel_row_ops,
                    batch_events: 0,
                    batched_components_solved: 0,
                    threads: self.threads,
                    wall: start.elapsed(),
                });
                self.last = Some(alloc);
                Ok(())
            }
            Ok(None) => Err(AllocError::NotAllocatable(self.levels)),
            Err(Expired) => Err(AllocError::Timeout),
        }
    }
}

/// Work counters of a sharded allocation run (summed over components).
#[derive(Default)]
struct ShardStats {
    /// Components resolved by actual work this run (singletons included).
    checked: u64,
    /// Components answered from the fingerprint cache without any work.
    cached: u64,
    probes: u64,
    iso_builds: u64,
    row_ops: u64,
}

impl ShardStats {
    fn absorb(&mut self, s: &CompSolved) {
        self.checked += 1;
        self.probes += s.probes;
        self.iso_builds += s.iso_builds;
        self.row_ops += s.row_ops;
    }

    fn engine_stats(&self, threads: usize, cached_specs: u64, start: Instant) -> EngineStats {
        EngineStats {
            probes: self.probes,
            cache_hits: 0,
            cached_specs,
            iso_builds: self.iso_builds,
            components_checked: self.checked,
            components_cached: self.cached,
            kernel_row_ops: self.row_ops,
            batch_events: 0,
            batched_components_solved: 0,
            threads,
            wall: start.elapsed(),
        }
    }
}

/// What [`shard_optimal`] decided.
enum ShardOutcome {
    /// Fewer than two components (or fewer than two transactions) —
    /// sharding buys nothing; the caller runs the unsharded path.
    Skip,
    /// The union of the per-component optima: the global optimum, by
    /// component locality of split schedules and Proposition 4.2.
    Solved(Allocation),
    /// Some component has no robust allocation over the menu (only
    /// possible for [`LevelSet::RcSi`], Proposition 5.4).
    Unallocatable,
}

/// One component solved from scratch, with the work it cost.
struct CompSolved {
    entry: CompEntry,
    probes: u64,
    iso_builds: u64,
    row_ops: u64,
}

/// Algorithm 2 restricted to one conflict component, run on a standalone
/// sub-set of its member transactions. Any split schedule is a cycle of
/// conflicting transactions and therefore lies inside one component, so
/// robustness verdicts — and by uniqueness (Proposition 4.2) the
/// component's optimum — are those of the full workload restricted to
/// the component.
fn solve_component(
    txns: &TransactionSet,
    members: &[usize],
    levels: LevelSet,
    threads: usize,
    deadline: Option<Instant>,
) -> Result<CompSolved, Expired> {
    let sub: Vec<Transaction> = members.iter().map(|&i| txns.by_index(i).clone()).collect();
    let sub = TransactionSet::new(sub).expect("component members have distinct ids");
    let checker = RobustnessChecker::new(&sub)
        .with_threads(threads)
        .with_components(false);
    if expired(deadline) {
        return Err(Expired);
    }
    let done = |checker: &RobustnessChecker<'_>, entry: CompEntry| CompSolved {
        entry,
        probes: checker.stats().probes(),
        iso_builds: checker.stats().iso_builds(),
        row_ops: checker.stats().kernel_row_ops(),
    };
    let uniform = Allocation::uniform(&sub, levels.ceiling());
    if levels == LevelSet::RcSi && checker.find_counterexample(&uniform).is_some() {
        return Ok(done(&checker, CompEntry::Unallocatable));
    }
    // A fresh spec cache, never the caller's: cached global specs may
    // mention transactions outside this component, and
    // `SplitSpec::check` would reject (or panic on) them against the
    // component-local candidate allocations.
    let mut local_specs = Vec::new();
    let (alloc, _hits) = refine_with(
        &sub,
        &checker,
        &mut local_specs,
        uniform,
        None,
        deadline,
        &mut |_, _, _| {},
    )?;
    Ok(done(&checker, CompEntry::Robust(alloc.iter().collect())))
}

/// The component-sharded Algorithm 2: decomposes the workload into
/// conflict components, answers each from the fingerprint `cache` when
/// possible (falling back to the cross-allocator `shared` cache and
/// warming the local one on a hit), solves the misses (largest-first,
/// in parallel when `threads > 1`), and unions the per-component
/// optima. Completed components are cached — locally and into `shared`
/// — even when the deadline expires mid-run, so a retry pays only for
/// what is still missing.
fn shard_optimal(
    txns: &TransactionSet,
    levels: LevelSet,
    threads: usize,
    deadline: Option<Instant>,
    cache: &mut CompCache,
    shared: Option<&SharedCompCache>,
    stats: &mut ShardStats,
) -> Result<ShardOutcome, Expired> {
    if txns.len() < 2 {
        return Ok(ShardOutcome::Skip);
    }
    let index = ConflictIndex::new(txns);
    let comps = Components::new(txns, &index);
    if comps.count() <= 1 {
        return Ok(ShardOutcome::Skip);
    }
    if expired(deadline) {
        return Err(Expired);
    }
    let mut pairs: Vec<(TxnId, IsolationLevel)> = Vec::with_capacity(txns.len());
    let mut misses: Vec<usize> = Vec::new();
    let mut unallocatable = false;
    for (c, members) in comps.iter() {
        if members.len() < 2 {
            // A conflict-free transaction appears in no split schedule:
            // RC is its optimum under either menu.
            stats.checked += 1;
            pairs.push((txns.by_index(members[0]).id(), IsolationLevel::RC));
            continue;
        }
        let fp = comps.fingerprint(c);
        let entry = match cache.get(fp) {
            Some(e) => Some(e.clone()),
            // Local miss: consult the shared cache (this ordering makes
            // its hit rate the cross-allocator first-encounter rate)
            // and warm the local cache with any hit.
            None => match shared.and_then(|sc| sc.get(levels, fp)) {
                Some(e) => {
                    cache.insert(fp, e.clone());
                    Some(e)
                }
                None => None,
            },
        };
        match entry {
            Some(CompEntry::Robust(lvls)) => {
                stats.cached += 1;
                pairs.extend(lvls.iter().copied());
            }
            Some(CompEntry::Unallocatable) => {
                stats.cached += 1;
                unallocatable = true;
            }
            None => misses.push(c),
        }
    }
    if unallocatable {
        return Ok(ShardOutcome::Unallocatable);
    }
    if misses.is_empty() {
        return Ok(ShardOutcome::Solved(Allocation::from_pairs(pairs)));
    }
    // Largest components first: they dominate the critical path when the
    // misses are solved in parallel.
    misses.sort_by_key(|&c| (std::cmp::Reverse(comps.members(c).len()), c));
    let workers = threads.min(misses.len()).max(1);
    let (mut solved, hit_deadline): (Vec<(usize, CompSolved)>, bool) = if workers == 1 {
        // One worker: a lone miss gets the full thread budget for its
        // inner T₁ search; otherwise run the misses one by one.
        let sub_threads = if misses.len() == 1 { threads } else { 1 };
        let mut acc = Vec::with_capacity(misses.len());
        let mut expired_flag = false;
        for &c in &misses {
            match solve_component(txns, comps.members(c), levels, sub_threads, deadline) {
                Ok(s) => acc.push((c, s)),
                Err(Expired) => {
                    expired_flag = true;
                    break;
                }
            }
        }
        (acc, expired_flag)
    } else {
        let next = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let results: Mutex<Vec<(usize, CompSolved)>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&c) = misses.get(k) else { break };
                    match solve_component(txns, comps.members(c), levels, 1, deadline) {
                        Ok(s) => results.lock().unwrap().push((c, s)),
                        Err(Expired) => {
                            stop.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                });
            }
        });
        let expired_flag = stop.load(Ordering::Relaxed);
        (results.into_inner().unwrap(), expired_flag)
    };
    // Deterministic cache-insertion (FIFO eviction) order regardless of
    // worker scheduling.
    solved.sort_by_key(|&(c, _)| c);
    for (c, s) in &solved {
        let fp = comps.fingerprint(*c);
        cache.insert(fp, s.entry.clone());
        if let Some(sc) = shared {
            sc.insert(levels, fp, s.entry.clone());
        }
        stats.absorb(s);
    }
    if hit_deadline {
        return Err(Expired);
    }
    for (_, s) in &solved {
        match &s.entry {
            CompEntry::Robust(lvls) => pairs.extend(lvls.iter().copied()),
            CompEntry::Unallocatable => unallocatable = true,
        }
    }
    if unallocatable {
        return Ok(ShardOutcome::Unallocatable);
    }
    Ok(ShardOutcome::Solved(Allocation::from_pairs(pairs)))
}

/// Work counters read off a [`RobustnessChecker`] after a run (the
/// checker is dropped inside the borrow scope; this outlives it).
struct CheckerSnap {
    probes: u64,
    iso_builds: u64,
    components_checked: u64,
    components_cached: u64,
    kernel_row_ops: u64,
}

fn snap(checker: &RobustnessChecker<'_>) -> CheckerSnap {
    CheckerSnap {
        probes: checker.stats().probes(),
        iso_builds: checker.stats().iso_builds(),
        components_checked: checker.stats().components_checked(),
        components_cached: checker.stats().components_cached(),
        kernel_row_ops: checker.stats().kernel_row_ops(),
    }
}

/// Marker: a refinement deadline expired mid-loop.
struct Expired;

/// Has `deadline` passed? `None` never expires.
fn expired(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

/// Does `spec` reference transaction `id` (as the split transaction or
/// anywhere in its chain)? Such specs dangle once `id` is removed.
fn spec_mentions(spec: &SplitSpec, id: TxnId) -> bool {
    spec.t1 == id || spec.chain.contains(&id)
}

/// Evicts the oldest cached counterexamples past [`SPEC_CACHE_CAP`].
fn trim_specs(specs: &mut Vec<SplitSpec>) {
    if specs.len() > SPEC_CACHE_CAP {
        let excess = specs.len() - SPEC_CACHE_CAP;
        specs.drain(..excess);
    }
}

/// Is `alloc` robust? Consults the persistent counterexample cache first
/// (a cached spec that re-validates is a certificate of non-robustness);
/// on a miss runs a full probe and caches any fresh counterexample.
fn probe_cached(
    txns: &TransactionSet,
    checker: &RobustnessChecker<'_>,
    specs: &mut Vec<SplitSpec>,
    alloc: &Allocation,
    hits: &mut u64,
) -> bool {
    if specs.iter().any(|s| s.check(txns, alloc).is_ok()) {
        *hits += 1;
        return false;
    }
    match checker.find_counterexample(alloc) {
        None => true,
        Some(spec) => {
            specs.push(spec);
            false
        }
    }
}

#[derive(Default)]
struct CacheStats {
    hits: u64,
    specs: u64,
}

/// The refinement loop shared by Algorithm 2, its box-constrained
/// variant, and the `{RC, SI}` variant (Theorem 5.5): lowers each
/// transaction of a *robust* starting allocation to its least robust
/// level (skipping levels below `floor`, when given).
///
/// `on_failure` observes every rejected lowering with the spec that
/// rejected it (cached or fresh).
///
/// The counterexample cache only ever *rejects* candidates, and only
/// with a spec that [`SplitSpec::check`]-validates against that exact
/// candidate — a certificate of non-robustness. Acceptances always come
/// from a full probe, so the refinement path is identical to the
/// uncached loop.
fn refine_cached(
    txns: &TransactionSet,
    checker: &RobustnessChecker<'_>,
    start: Allocation,
    floor: Option<&Allocation>,
    on_failure: &mut dyn FnMut(TxnId, IsolationLevel, &SplitSpec),
) -> (Allocation, CacheStats) {
    let mut cache: Vec<SplitSpec> = Vec::new();
    let (alloc, hits) = refine_with(txns, checker, &mut cache, start, floor, None, on_failure)
        .unwrap_or_else(|Expired| unreachable!("no deadline was set"));
    let specs = cache.len() as u64;
    (alloc, CacheStats { hits, specs })
}

/// [`refine_cached`] against a caller-owned counterexample cache — the
/// form the delta API uses to persist specs across reallocations.
/// Returns the refined allocation and the number of cache hits, or
/// [`Expired`] when `deadline` passes between lowering attempts (callers
/// then roll back the mutation; the partially-refined allocation is
/// discarded because only a *completed* refinement is the optimum).
fn refine_with(
    txns: &TransactionSet,
    checker: &RobustnessChecker<'_>,
    cache: &mut Vec<SplitSpec>,
    start: Allocation,
    floor: Option<&Allocation>,
    deadline: Option<Instant>,
    on_failure: &mut dyn FnMut(TxnId, IsolationLevel, &SplitSpec),
) -> Result<(Allocation, u64), Expired> {
    debug_assert!(
        checker.is_robust(&start).robust(),
        "refine requires a robust start"
    );
    // Checked on entry too, so a refinement with nothing to lower
    // (e.g. removing the last transaction) still honours an expired
    // deadline — forced timeouts fail every mutation uniformly.
    if expired(deadline) {
        return Err(Expired);
    }
    let mut hits = 0u64;
    let mut alloc = start;
    for t in txns.iter() {
        for &lvl in alloc.level(t.id()).lower_levels() {
            if let Some(floor) = floor {
                if lvl < floor.level(t.id()) {
                    continue;
                }
            }
            if expired(deadline) {
                return Err(Expired);
            }
            let candidate = alloc.with(t.id(), lvl);
            if let Some(spec) = cache.iter().find(|s| s.check(txns, &candidate).is_ok()) {
                hits += 1;
                on_failure(t.id(), lvl, spec);
                continue;
            }
            match checker.find_counterexample(&candidate) {
                None => {
                    alloc = candidate;
                    break;
                }
                Some(spec) => {
                    on_failure(t.id(), lvl, &spec);
                    cache.push(spec);
                }
            }
        }
    }
    Ok((alloc, hits))
}

/// Computes the unique optimal robust allocation for `txns` over
/// `{RC, SI, SSI}` (Theorem 4.3).
///
/// Starting from `𝒜_SSI` (always robust), each transaction is lowered to
/// the least level that keeps the allocation robust. Correctness rests on
/// Proposition 4.1(2): if some robust allocation maps `T` lower, the
/// current one may adopt that level as well — so greedy, order-independent
/// refinement reaches the unique optimum (Proposition 4.2).
pub fn optimal_allocation(txns: &TransactionSet) -> Allocation {
    Allocator::new(txns).optimal().0
}

/// Computes the least robust allocation inside the box `lo ≤ 𝒜 ≤ hi`
/// (pointwise), or `None` when no robust allocation exists in the box.
///
/// Practical use: constraints from the deployment — a legacy driver
/// hard-codes `READ COMMITTED` (pin with `lo = hi = RC`), an auditor
/// demands at least SI for a reporting transaction (`lo = SI`), a hot
/// path must not pay SSI's SIREAD overhead (`hi = SI`).
///
/// Correctness: robustness is upward closed (Proposition 4.1(1)), so if
/// any robust allocation lies in the box then `hi` itself is robust; the
/// refinement then mirrors Algorithm 2 restricted to the box, and the
/// exchange argument of Proposition 4.1(2) gives uniqueness of the
/// box-minimum exactly as in Proposition 4.2.
///
/// Panics when `lo`/`hi` do not cover every transaction or `lo ≰ hi`.
pub fn optimal_allocation_in_box(
    txns: &TransactionSet,
    lo: &Allocation,
    hi: &Allocation,
) -> Option<Allocation> {
    Allocator::new(txns).optimal_in_box(lo, hi).0
}

/// [`optimal_allocation_in_box`] with only a lower bound (`hi = 𝒜_SSI`).
/// Always succeeds, since `𝒜_SSI` is robust.
pub fn optimal_allocation_with_floor(txns: &TransactionSet, floor: &Allocation) -> Allocation {
    Allocator::new(txns).optimal_with_floor(floor).0
}

/// Diagnostic variant of [`optimal_allocation`] that also reports, for
/// each lowering attempt that failed, the counterexample found — useful
/// for explaining *why* a transaction needs its level.
pub fn optimal_allocation_explained(txns: &TransactionSet) -> (Allocation, Vec<Reason>) {
    let (alloc, reasons, _) = Allocator::new(txns).optimal_explained();
    (alloc, reasons)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm1::is_robust;
    use mvmodel::{TxnId, TxnSetBuilder};

    #[test]
    fn disjoint_workload_all_rc() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).read(x).write(x).finish();
        b.txn(2).read(y).write(y).finish();
        let txns = b.build().unwrap();
        let a = optimal_allocation(&txns);
        assert_eq!(a, Allocation::uniform_rc(&txns));
    }

    #[test]
    fn write_skew_needs_ssi_pair() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).read(y).write(x).finish();
        let txns = b.build().unwrap();
        let a = optimal_allocation(&txns);
        assert!(is_robust(&txns, &a).robust());
        // Write skew requires SSI for… at least two of the transactions
        // (the dangerous-structure filter needs all three participants
        // SSI; with two transactions both must be SSI).
        assert_eq!(a.level(TxnId(1)), IsolationLevel::SSI);
        assert_eq!(a.level(TxnId(2)), IsolationLevel::SSI);
    }

    #[test]
    fn lost_update_gets_si() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        b.txn(1).read(x).write(x).finish();
        b.txn(2).read(x).write(x).finish();
        let txns = b.build().unwrap();
        let a = optimal_allocation(&txns);
        assert!(is_robust(&txns, &a).robust());
        assert_eq!(
            a.counts(),
            (0, 2, 0),
            "lost-update pair is robust at SI but not RC: {a}"
        );
    }

    #[test]
    fn optimality_lowering_any_txn_breaks_robustness() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).read(y).write(x).finish();
        b.txn(3).read(x).write(x).finish();
        let txns = b.build().unwrap();
        let a = optimal_allocation(&txns);
        assert!(is_robust(&txns, &a).robust());
        for t in txns.ids() {
            for &lower in a.level(t).lower_levels() {
                let lowered = a.with(t, lower);
                assert!(
                    !is_robust(&txns, &lowered).robust(),
                    "lowering {t} to {lower} should break robustness ({a})"
                );
            }
        }
    }

    #[test]
    fn explained_variant_agrees_and_reports_reasons() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).read(y).write(x).finish();
        let txns = b.build().unwrap();
        let (a, reasons) = optimal_allocation_explained(&txns);
        assert_eq!(a, optimal_allocation(&txns));
        // Both transactions failed both lowering attempts: 4 reasons.
        assert_eq!(reasons.len(), 4);
        for (t, lvl, spec) in &reasons {
            assert!(!spec.chain.is_empty());
            // Every reported spec certifies non-robustness of the exact
            // candidate it rejected.
            let candidate_base = if *t == TxnId(2) {
                a.clone()
            } else {
                Allocation::uniform_ssi(&txns)
            };
            let _ = (candidate_base, lvl);
        }
    }

    #[test]
    fn engine_stats_account_for_cache() {
        // Write-skew pair: 4 lowering attempts all fail. The first
        // failure (T1→RC) caches a spec; whether later attempts hit the
        // cache depends on spec validity under each candidate, but
        // probes + cache_hits must cover all 4 attempts.
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).read(y).write(x).finish();
        let txns = b.build().unwrap();
        let (a, stats) = Allocator::new(&txns).optimal();
        assert_eq!(a, optimal_allocation(&txns));
        assert_eq!(stats.probes + stats.cache_hits, 4 + dbg_probe_overhead());
        assert!(
            stats.cache_hits >= 1,
            "repeat rejections should hit the cache: {stats}"
        );
        assert!(stats.cached_specs >= 1);
        assert_eq!(stats.threads, 1);
        assert!(stats.wall.as_nanos() > 0);
        let shown = stats.to_string();
        assert!(shown.contains("probes=") && shown.contains("cache_hits="));
    }

    /// `refine_cached` opens with a `debug_assert` probe of the start
    /// allocation; it runs only in debug builds.
    fn dbg_probe_overhead() -> u64 {
        if cfg!(debug_assertions) {
            1
        } else {
            0
        }
    }

    #[test]
    fn box_allocation_respects_bounds() {
        // Write skew pair + an independent reader.
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        let z = b.object("z");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).read(y).write(x).finish();
        b.txn(3).read(z).finish();
        let txns = b.build().unwrap();

        // Unconstrained optimum: T1, T2 → SSI; T3 → RC.
        let free = optimal_allocation(&txns);
        assert_eq!(free.to_string(), "T1=SSI T2=SSI T3=RC");

        // Floor: T3 must run at least at SI.
        let floor = Allocation::parse("T1=RC T2=RC T3=SI").unwrap();
        let a = super::optimal_allocation_with_floor(&txns, &floor);
        assert_eq!(a.to_string(), "T1=SSI T2=SSI T3=SI");
        assert!(is_robust(&txns, &a).robust());

        // Ceiling: T1 must not exceed SI → no robust allocation in the box
        // (the skew pair needs both at SSI).
        let lo = Allocation::uniform_rc(&txns);
        let hi = Allocation::parse("T1=SI T2=SSI T3=SSI").unwrap();
        assert_eq!(super::optimal_allocation_in_box(&txns, &lo, &hi), None);

        // Exact pin: T3 = RC is compatible.
        let lo = Allocation::parse("T1=RC T2=RC T3=RC").unwrap();
        let hi = Allocation::parse("T1=SSI T2=SSI T3=RC").unwrap();
        let a = super::optimal_allocation_in_box(&txns, &lo, &hi).unwrap();
        assert_eq!(a, free);
    }

    #[test]
    #[should_panic(expected = "lo ≤ hi")]
    fn box_rejects_inverted_bounds() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        b.txn(1).read(x).finish();
        let txns = b.build().unwrap();
        let _ = super::optimal_allocation_in_box(
            &txns,
            &Allocation::uniform_ssi(&txns),
            &Allocation::uniform_rc(&txns),
        );
    }

    #[test]
    fn level_set_parses_and_rejects() {
        assert_eq!("rc-si".parse::<LevelSet>().unwrap(), LevelSet::RcSi);
        assert_eq!("RC-SI-SSI".parse::<LevelSet>().unwrap(), LevelSet::RcSiSsi);
        let err = "serializable".parse::<LevelSet>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("rc-si") && msg.contains("rc-si-ssi"), "{msg}");
        assert_eq!(LevelSet::RcSi.ceiling(), IsolationLevel::SI);
        assert_eq!(LevelSet::RcSiSsi.to_string(), "rc-si-ssi");
    }

    /// Builds the write-skew pair plus a private-object reader as three
    /// standalone transactions sharing one interned object table.
    fn skew_txn(set: &mut TransactionSet, id: u32, r: &str, w: &str) -> Transaction {
        let read = set.intern_object(r);
        let write = set.intern_object(w);
        Transaction::new(
            TxnId(id),
            vec![mvmodel::Op::read(read), mvmodel::Op::write(write)],
        )
        .unwrap()
    }

    #[test]
    fn delta_add_and_remove_track_full_recompute() {
        let mut alloc = Allocator::from_owned(TransactionSet::default());
        assert!(alloc.current().unwrap().is_empty());

        // T1 alone: RC.
        let t1 = skew_txn(alloc.txns.to_mut(), 1, "x", "y");
        let r = alloc.add_txn(t1).unwrap();
        assert_eq!(r.allocation.to_string(), "T1=RC");
        assert_eq!(r.changed.len(), 1);
        assert_eq!(r.changed[0].after, Some(IsolationLevel::RC));

        // T2 closes the write-skew cycle: both jump to SSI.
        let t2 = skew_txn(alloc.txns.to_mut(), 2, "y", "x");
        let r = alloc.add_txn(t2).unwrap();
        assert_eq!(r.allocation, optimal_allocation(alloc.txns()));
        assert_eq!(r.allocation.to_string(), "T1=SSI T2=SSI");
        // Both T1 (raised) and T2 (entered) appear in the diff.
        assert_eq!(r.changed.len(), 2);

        // An unrelated reader registers at RC without disturbing the pair.
        let t3 = skew_txn(alloc.txns.to_mut(), 3, "z", "w");
        let r = alloc.add_txn(t3).unwrap();
        assert_eq!(r.allocation.to_string(), "T1=SSI T2=SSI T3=RC");
        assert_eq!(r.changed.len(), 1, "only T3 changed: {:?}", r.changed);

        // Removing T2 breaks the cycle: T1 falls back to RC.
        let r = alloc.remove_txn(TxnId(2)).unwrap();
        assert_eq!(r.allocation, optimal_allocation(alloc.txns()));
        assert_eq!(r.allocation.to_string(), "T1=RC T3=RC");
        let stats = alloc.last_stats().unwrap();
        // The survivors {T1} and {T3} are both singleton components: the
        // sharded engine answers without a single Algorithm 1 probe.
        assert_eq!(stats.probes + stats.cache_hits, 0);
        assert_eq!(stats.components_checked, 2);

        // Duplicate / unknown ids are structured errors, state unchanged.
        let dup = skew_txn(alloc.txns.to_mut(), 1, "x", "y");
        assert_eq!(
            alloc.add_txn(dup).unwrap_err(),
            AllocError::Duplicate(TxnId(1))
        );
        assert_eq!(
            alloc.remove_txn(TxnId(9)).unwrap_err(),
            AllocError::Unknown(TxnId(9))
        );
        assert_eq!(alloc.current().unwrap().to_string(), "T1=RC T3=RC");
    }

    #[test]
    fn delta_rc_si_rolls_back_unallocatable_add() {
        let mut alloc =
            Allocator::from_owned(TransactionSet::default()).with_levels(LevelSet::RcSi);
        let t1 = skew_txn(alloc.txns.to_mut(), 1, "x", "y");
        alloc.add_txn(t1).unwrap();
        // Write skew is not {RC, SI}-allocatable: the add is rejected
        // and rolled back.
        let t2 = skew_txn(alloc.txns.to_mut(), 2, "y", "x");
        assert_eq!(
            alloc.add_txn(t2).unwrap_err(),
            AllocError::NotAllocatable(LevelSet::RcSi)
        );
        assert_eq!(alloc.txns().len(), 1);
        assert_eq!(alloc.current().unwrap().to_string(), "T1=RC");
        // A compatible transaction still registers afterwards.
        let t3 = skew_txn(alloc.txns.to_mut(), 3, "z", "w");
        let r = alloc.add_txn(t3).unwrap();
        assert_eq!(r.allocation.to_string(), "T1=RC T3=RC");
    }

    #[test]
    fn expired_deadline_rolls_back_add_and_remove() {
        let mut alloc = Allocator::from_owned(TransactionSet::default());
        let t1 = skew_txn(alloc.txns.to_mut(), 1, "x", "y");
        alloc.add_txn(t1).unwrap();
        let t2 = skew_txn(alloc.txns.to_mut(), 2, "y", "x");
        alloc.add_txn(t2).unwrap();
        assert_eq!(alloc.current().unwrap().to_string(), "T1=SSI T2=SSI");

        // An already-expired deadline: the add is rolled back, the set
        // and optimum are untouched.
        let past = Some(Instant::now());
        let t3 = skew_txn(alloc.txns.to_mut(), 3, "x", "z");
        assert_eq!(alloc.add_txn_by(t3, past).unwrap_err(), AllocError::Timeout);
        assert_eq!(alloc.txns().len(), 2);
        assert_eq!(alloc.current().unwrap().to_string(), "T1=SSI T2=SSI");

        // Same for a remove: T2 is re-inserted, the optimum stands.
        assert_eq!(
            alloc.remove_txn_by(TxnId(2), past).unwrap_err(),
            AllocError::Timeout
        );
        assert_eq!(alloc.txns().len(), 2);
        assert_eq!(alloc.current().unwrap().to_string(), "T1=SSI T2=SSI");

        // After the failures, unbounded mutations still work and agree
        // with a from-scratch recomputation.
        let t3 = skew_txn(alloc.txns.to_mut(), 3, "x", "z");
        let r = alloc.add_txn(t3).unwrap();
        assert_eq!(r.allocation, optimal_allocation(alloc.txns()));
        let r = alloc.remove_txn(TxnId(2)).unwrap();
        assert_eq!(r.allocation, optimal_allocation(alloc.txns()));
    }

    #[test]
    fn generous_timeout_never_fires() {
        let mut alloc = Allocator::from_owned(TransactionSet::default())
            .with_op_timeout(Some(Duration::from_secs(60)));
        assert_eq!(alloc.op_timeout(), Some(Duration::from_secs(60)));
        let t1 = skew_txn(alloc.txns.to_mut(), 1, "x", "y");
        let t2 = skew_txn(alloc.txns.to_mut(), 2, "y", "x");
        alloc.add_txn(t1).unwrap();
        alloc.add_txn(t2).unwrap();
        assert_eq!(alloc.current().unwrap().to_string(), "T1=SSI T2=SSI");
        alloc.remove_txn(TxnId(1)).unwrap();
        assert_eq!(alloc.current().unwrap().to_string(), "T2=RC");
    }

    #[test]
    fn expired_deadline_on_first_current_leaves_cache_unfilled() {
        let mut alloc = Allocator::from_owned(TransactionSet::default());
        let t1 = skew_txn(alloc.txns.to_mut(), 1, "x", "y");
        let t2 = skew_txn(alloc.txns.to_mut(), 2, "y", "x");
        alloc.txns.to_mut().insert(t1).unwrap();
        alloc.txns.to_mut().insert(t2).unwrap();
        // Force the initial computation to time out via an expired
        // per-op budget, then clear it and observe a clean recompute.
        let mut timed = alloc.with_op_timeout(Some(Duration::ZERO));
        assert_eq!(timed.current().unwrap_err(), AllocError::Timeout);
        let mut freed = timed.with_op_timeout(None);
        assert_eq!(freed.current().unwrap().to_string(), "T1=SSI T2=SSI");
    }

    /// Three conflict clusters plus a singleton: write skew on (x, y),
    /// lost update on z, and a lone reader of w.
    fn clustered() -> TransactionSet {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        let z = b.object("z");
        let w = b.object("w");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).read(y).write(x).finish();
        b.txn(3).read(z).write(z).finish();
        b.txn(4).read(z).write(z).finish();
        b.txn(5).read(w).finish();
        b.build().unwrap()
    }

    #[test]
    fn sharded_one_shot_matches_unsharded() {
        let txns = clustered();
        let (unsharded, _) = Allocator::new(&txns).with_components(false).optimal();
        for threads in [1, 2, 4] {
            let (sharded, stats) = Allocator::new(&txns).with_threads(threads).optimal();
            assert_eq!(sharded, unsharded, "threads={threads}");
            // Two multi-member clusters searched + one singleton resolved.
            assert_eq!(stats.components_checked, 3, "threads={threads}: {stats}");
            assert_eq!(stats.components_cached, 0);
            assert!(stats.probes > 0 && stats.kernel_row_ops > 0, "{stats}");
        }
        assert_eq!(unsharded.to_string(), "T1=SSI T2=SSI T3=SI T4=SI T5=RC");
    }

    #[test]
    fn sharded_rc_si_detects_unallocatable_component() {
        // The skew cluster is not {RC, SI}-allocatable; verdicts agree.
        let txns = clustered();
        let (sharded, stats) = Allocator::new(&txns).optimal_rc_si();
        let (unsharded, _) = Allocator::new(&txns).with_components(false).optimal_rc_si();
        assert_eq!(sharded, None);
        assert_eq!(unsharded, None);
        assert!(stats.components_checked >= 1, "{stats}");
    }

    #[test]
    fn delta_reuses_cached_components() {
        let mut alloc = Allocator::from_owned(TransactionSet::default());
        for t in clustered().iter() {
            alloc.add_txn(t.clone()).unwrap();
        }
        assert_eq!(
            alloc.current().unwrap().to_string(),
            "T1=SSI T2=SSI T3=SI T4=SI T5=RC"
        );

        // T6 writes w (raw object id 3 in `clustered()`'s table), merging
        // with the singleton T5. The skew and lost-update clusters are
        // untouched: their fingerprints match the cache and no search
        // runs for them.
        let t6 = Transaction::new(TxnId(6), vec![mvmodel::Op::write(Object(3))]).unwrap();
        let r = alloc.add_txn(t6).unwrap();
        let (expect, _) = Allocator::new(alloc.txns())
            .with_components(false)
            .optimal();
        assert_eq!(r.allocation, expect);
        assert_eq!(r.stats.components_cached, 2, "{}", r.stats);
        assert_eq!(r.stats.components_checked, 1, "{}", r.stats);

        // Removing T6 splits {T5, T6} back into the singleton {T5};
        // the two big clusters are again pure cache hits.
        let r = alloc.remove_txn(TxnId(6)).unwrap();
        assert_eq!(r.allocation.to_string(), "T1=SSI T2=SSI T3=SI T4=SI T5=RC");
        assert_eq!(r.stats.components_cached, 2, "{}", r.stats);
        assert_eq!(r.stats.components_checked, 1, "{}", r.stats);
        assert_eq!(r.stats.probes, 0, "untouched clusters cost no probes");

        // End-state equals an unsharded from-scratch recomputation.
        let (unsharded, _) = Allocator::new(alloc.txns())
            .with_components(false)
            .optimal();
        assert_eq!(*alloc.current().unwrap(), unsharded);
    }

    #[test]
    fn no_components_escape_hatch_delta() {
        // The unsharded delta path still computes identical optima.
        let mut sharded = Allocator::from_owned(TransactionSet::default());
        let mut unsharded = Allocator::from_owned(TransactionSet::default()).with_components(false);
        for t in clustered().iter() {
            let a = sharded.add_txn(t.clone()).unwrap();
            let b = unsharded.add_txn(t.clone()).unwrap();
            assert_eq!(a.allocation, b.allocation);
            assert_eq!(a.changed, b.changed);
        }
        for id in [TxnId(2), TxnId(3)] {
            let a = sharded.remove_txn(id).unwrap();
            let b = unsharded.remove_txn(id).unwrap();
            assert_eq!(a.allocation, b.allocation);
            assert_eq!(a.changed, b.changed);
        }
        assert!(!unsharded.components_enabled());
        assert!(sharded.components_enabled());
    }

    #[test]
    fn with_levels_clears_component_cache() {
        let mut alloc = Allocator::from_owned(TransactionSet::default());
        for t in clustered().iter() {
            if t.id() != TxnId(1) && t.id() != TxnId(2) {
                alloc.add_txn(t.clone()).unwrap();
            }
        }
        alloc.current().unwrap();
        // Switching menus invalidates cached entries (they are optima
        // *for a menu*); the {RC, SI} optimum is recomputed, not served
        // from the {RC, SI, SSI} cache.
        let mut alloc = alloc.with_levels(LevelSet::RcSi);
        let a = alloc.current().unwrap().clone();
        let (expect, _) = Allocator::new(alloc.txns())
            .with_components(false)
            .optimal_rc_si();
        assert_eq!(Some(a), expect);
        let stats = alloc.last_stats().unwrap();
        assert_eq!(stats.components_cached, 0, "{stats}");
    }

    #[test]
    fn empty_and_singleton_sets() {
        let txns = TxnSetBuilder::new().build().unwrap();
        assert!(optimal_allocation(&txns).is_empty());
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        b.txn(1).read(x).write(x).finish();
        let txns = b.build().unwrap();
        assert_eq!(optimal_allocation(&txns).counts(), (1, 0, 0));
    }

    #[test]
    fn shared_cache_answers_identical_shapes_across_allocators() {
        let shared = Arc::new(SharedCompCache::default());
        let txns = clustered();
        // First allocator solves from scratch and publishes.
        let (a1, _) = Allocator::new(&txns)
            .with_shared_cache(shared.clone())
            .optimal();
        let published = shared.inserts();
        assert!(published >= 2, "multi-member components published");
        // Second allocator (a different "tenant", same shapes): every
        // non-singleton component is a pure shared hit, and the result
        // is bit-identical.
        let (a2, stats) = Allocator::new(&txns)
            .with_shared_cache(shared.clone())
            .optimal();
        assert_eq!(a1, a2);
        assert_eq!(shared.inserts(), published, "nothing re-solved");
        assert!(shared.hits() >= 2, "hits: {}", shared.hits());
        assert!(stats.components_cached >= 2, "{stats}");
        // And identical to a share-nothing allocator.
        assert_eq!(a1, optimal_allocation(&txns));
    }

    #[test]
    fn shared_cache_survives_menu_changes_without_cross_talk() {
        let shared = Arc::new(SharedCompCache::default());
        let txns = clustered();
        let base = Allocator::new(&txns).with_shared_cache(shared.clone());
        let (full, _) = base.optimal();
        let (rc_si, _) = base.optimal_rc_si();
        // The menus key disjoint entries: each result matches its
        // uncached ground truth even though both ran over one handle.
        assert_eq!(full, optimal_allocation(&txns));
        assert_eq!(
            rc_si,
            Allocator::new(&txns)
                .with_components(false)
                .optimal_rc_si()
                .0
        );
    }
}
