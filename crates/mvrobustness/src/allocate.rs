//! Algorithm 2: computing the unique optimal robust allocation over
//! `{RC, SI, SSI}`.

use crate::algorithm1::RobustnessChecker;
use mvisolation::{Allocation, IsolationLevel};
use mvmodel::TransactionSet;

/// Computes the unique optimal robust allocation for `txns` over
/// `{RC, SI, SSI}` (Theorem 4.3).
///
/// Starting from `𝒜_SSI` (always robust), each transaction is lowered to
/// the least level that keeps the allocation robust. Correctness rests on
/// Proposition 4.1(2): if some robust allocation maps `T` lower, the
/// current one may adopt that level as well — so greedy, order-independent
/// refinement reaches the unique optimum (Proposition 4.2).
pub fn optimal_allocation(txns: &TransactionSet) -> Allocation {
    refine(txns, Allocation::uniform_ssi(txns))
}

/// The refinement loop shared by Algorithm 2 and its `{RC, SI}` variant
/// (Theorem 5.5): lowers each transaction of a *robust* starting
/// allocation to its least robust level.
pub(crate) fn refine(txns: &TransactionSet, start: Allocation) -> Allocation {
    let checker = RobustnessChecker::new(txns);
    debug_assert!(checker.is_robust(&start).robust(), "refine requires a robust start");
    let mut alloc = start;
    for t in txns.iter() {
        for &lvl in alloc.level(t.id()).lower_levels() {
            let candidate = alloc.with(t.id(), lvl);
            if checker.is_robust(&candidate).robust() {
                alloc = candidate;
                break;
            }
        }
    }
    alloc
}

/// Computes the least robust allocation inside the box `lo ≤ 𝒜 ≤ hi`
/// (pointwise), or `None` when no robust allocation exists in the box.
///
/// Practical use: constraints from the deployment — a legacy driver
/// hard-codes `READ COMMITTED` (pin with `lo = hi = RC`), an auditor
/// demands at least SI for a reporting transaction (`lo = SI`), a hot
/// path must not pay SSI's SIREAD overhead (`hi = SI`).
///
/// Correctness: robustness is upward closed (Proposition 4.1(1)), so if
/// any robust allocation lies in the box then `hi` itself is robust; the
/// refinement then mirrors Algorithm 2 restricted to the box, and the
/// exchange argument of Proposition 4.1(2) gives uniqueness of the
/// box-minimum exactly as in Proposition 4.2.
///
/// Panics when `lo`/`hi` do not cover every transaction or `lo ≰ hi`.
pub fn optimal_allocation_in_box(
    txns: &TransactionSet,
    lo: &Allocation,
    hi: &Allocation,
) -> Option<Allocation> {
    assert!(lo.covers(txns) && hi.covers(txns), "bounds must cover every transaction");
    assert!(lo.le(hi), "need lo ≤ hi pointwise");
    let checker = RobustnessChecker::new(txns);
    if !checker.is_robust(hi).robust() {
        return None;
    }
    let mut alloc = hi.clone();
    for t in txns.iter() {
        for &lvl in alloc.level(t.id()).lower_levels() {
            if lvl < lo.level(t.id()) {
                continue;
            }
            let candidate = alloc.with(t.id(), lvl);
            if checker.is_robust(&candidate).robust() {
                alloc = candidate;
                break;
            }
        }
    }
    Some(alloc)
}

/// [`optimal_allocation_in_box`] with only a lower bound (`hi = 𝒜_SSI`).
/// Always succeeds, since `𝒜_SSI` is robust.
pub fn optimal_allocation_with_floor(txns: &TransactionSet, floor: &Allocation) -> Allocation {
    optimal_allocation_in_box(txns, floor, &Allocation::uniform_ssi(txns))
        .expect("the all-SSI ceiling is always robust")
}

/// Diagnostic variant of [`optimal_allocation`] that also reports, for
/// each lowering attempt that failed, the counterexample found — useful
/// for explaining *why* a transaction needs its level.
pub fn optimal_allocation_explained(
    txns: &TransactionSet,
) -> (Allocation, Vec<(mvmodel::TxnId, IsolationLevel, crate::SplitSpec)>) {
    let checker = RobustnessChecker::new(txns);
    let mut alloc = Allocation::uniform_ssi(txns);
    let mut reasons = Vec::new();
    for t in txns.iter() {
        for &lvl in alloc.level(t.id()).lower_levels() {
            let candidate = alloc.with(t.id(), lvl);
            match checker.is_robust(&candidate).into_counterexample() {
                None => {
                    alloc = candidate;
                    break;
                }
                Some(spec) => reasons.push((t.id(), lvl, spec)),
            }
        }
    }
    (alloc, reasons)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm1::is_robust;
    use mvmodel::{TxnId, TxnSetBuilder};

    #[test]
    fn disjoint_workload_all_rc() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).read(x).write(x).finish();
        b.txn(2).read(y).write(y).finish();
        let txns = b.build().unwrap();
        let a = optimal_allocation(&txns);
        assert_eq!(a, Allocation::uniform_rc(&txns));
    }

    #[test]
    fn write_skew_needs_ssi_pair() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).read(y).write(x).finish();
        let txns = b.build().unwrap();
        let a = optimal_allocation(&txns);
        assert!(is_robust(&txns, &a).robust());
        // Write skew requires SSI for… at least two of the transactions
        // (the dangerous-structure filter needs all three participants
        // SSI; with two transactions both must be SSI).
        assert_eq!(a.level(TxnId(1)), IsolationLevel::SSI);
        assert_eq!(a.level(TxnId(2)), IsolationLevel::SSI);
    }

    #[test]
    fn lost_update_gets_si() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        b.txn(1).read(x).write(x).finish();
        b.txn(2).read(x).write(x).finish();
        let txns = b.build().unwrap();
        let a = optimal_allocation(&txns);
        assert!(is_robust(&txns, &a).robust());
        assert_eq!(a.counts(), (0, 2, 0), "lost-update pair is robust at SI but not RC: {a}");
    }

    #[test]
    fn optimality_lowering_any_txn_breaks_robustness() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).read(y).write(x).finish();
        b.txn(3).read(x).write(x).finish();
        let txns = b.build().unwrap();
        let a = optimal_allocation(&txns);
        assert!(is_robust(&txns, &a).robust());
        for t in txns.ids() {
            for &lower in a.level(t).lower_levels() {
                let lowered = a.with(t, lower);
                assert!(
                    !is_robust(&txns, &lowered).robust(),
                    "lowering {t} to {lower} should break robustness ({a})"
                );
            }
        }
    }

    #[test]
    fn explained_variant_agrees_and_reports_reasons() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).read(y).write(x).finish();
        let txns = b.build().unwrap();
        let (a, reasons) = optimal_allocation_explained(&txns);
        assert_eq!(a, optimal_allocation(&txns));
        // Both transactions failed both lowering attempts: 4 reasons.
        assert_eq!(reasons.len(), 4);
        for (_, _, spec) in &reasons {
            assert!(!spec.chain.is_empty());
        }
    }

    #[test]
    fn box_allocation_respects_bounds() {
        // Write skew pair + an independent reader.
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        let z = b.object("z");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).read(y).write(x).finish();
        b.txn(3).read(z).finish();
        let txns = b.build().unwrap();

        // Unconstrained optimum: T1, T2 → SSI; T3 → RC.
        let free = optimal_allocation(&txns);
        assert_eq!(free.to_string(), "T1=SSI T2=SSI T3=RC");

        // Floor: T3 must run at least at SI.
        let floor = Allocation::parse("T1=RC T2=RC T3=SI").unwrap();
        let a = super::optimal_allocation_with_floor(&txns, &floor);
        assert_eq!(a.to_string(), "T1=SSI T2=SSI T3=SI");
        assert!(is_robust(&txns, &a).robust());

        // Ceiling: T1 must not exceed SI → no robust allocation in the box
        // (the skew pair needs both at SSI).
        let lo = Allocation::uniform_rc(&txns);
        let hi = Allocation::parse("T1=SI T2=SSI T3=SSI").unwrap();
        assert_eq!(super::optimal_allocation_in_box(&txns, &lo, &hi), None);

        // Exact pin: T3 = RC is compatible.
        let lo = Allocation::parse("T1=RC T2=RC T3=RC").unwrap();
        let hi = Allocation::parse("T1=SSI T2=SSI T3=RC").unwrap();
        let a = super::optimal_allocation_in_box(&txns, &lo, &hi).unwrap();
        assert_eq!(a, free);
    }

    #[test]
    #[should_panic(expected = "lo ≤ hi")]
    fn box_rejects_inverted_bounds() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        b.txn(1).read(x).finish();
        let txns = b.build().unwrap();
        let _ = super::optimal_allocation_in_box(
            &txns,
            &Allocation::uniform_ssi(&txns),
            &Allocation::uniform_rc(&txns),
        );
    }

    #[test]
    fn empty_and_singleton_sets() {
        let txns = TxnSetBuilder::new().build().unwrap();
        assert!(optimal_allocation(&txns).is_empty());
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        b.txn(1).read(x).write(x).finish();
        let txns = b.build().unwrap();
        assert_eq!(optimal_allocation(&txns).counts(), (1, 0, 0));
    }
}
