//! Algorithm 2: computing the unique optimal robust allocation over
//! `{RC, SI, SSI}`.
//!
//! [`Allocator`] is the engine-backed entry point: one
//! [`RobustnessChecker`] (conflict matrices, per-`T₁` iso-graph cache,
//! optional search threads) serves every probe, and a
//! **counterexample cache** answers most failing probes without a
//! search at all. A [`crate::SplitSpec`] that defeated one lowering
//! usually defeats the next: before each full probe, cached specs are
//! re-validated against the candidate allocation with
//! [`crate::SplitSpec::check`] — sound because a spec that checks *is*
//! a multiversion split schedule for the candidate (Theorem 3.2), so
//! the candidate is certainly not robust. Cache misses fall through to
//! the full search, so the refinement's decisions — and therefore the
//! computed optimum — are bit-for-bit those of the uncached algorithm.
//!
//! The free functions ([`optimal_allocation`] &c.) keep their original
//! signatures and delegate to a single-threaded [`Allocator`].

use crate::algorithm1::RobustnessChecker;
use crate::split_schedule::SplitSpec;
use crate::stats::EngineStats;
use mvisolation::{Allocation, IsolationLevel};
use mvmodel::{TransactionSet, TxnId};
use std::time::Instant;

/// A failed lowering attempt: the transaction, the level that was
/// tried, and the counterexample that rejected it.
pub type Reason = (TxnId, IsolationLevel, SplitSpec);

/// Engine-backed Algorithm 2 runner over one transaction set.
///
/// ```text
/// let (alloc, stats) = Allocator::new(&txns).with_threads(4).optimal();
/// ```
pub struct Allocator<'a> {
    txns: &'a TransactionSet,
    threads: usize,
}

impl<'a> Allocator<'a> {
    pub fn new(txns: &'a TransactionSet) -> Self {
        Allocator { txns, threads: 1 }
    }

    /// Worker threads for each probe's outer search (clamped to ≥ 1).
    /// Results are identical at every thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    fn checker(&self) -> RobustnessChecker<'a> {
        RobustnessChecker::new(self.txns).with_threads(self.threads)
    }

    fn finish(
        &self,
        checker: &RobustnessChecker<'_>,
        cache: &CacheStats,
        start: Instant,
    ) -> EngineStats {
        EngineStats {
            probes: checker.stats().probes(),
            cache_hits: cache.hits,
            cached_specs: cache.specs,
            iso_builds: checker.stats().iso_builds(),
            threads: self.threads,
            wall: start.elapsed(),
        }
    }

    /// The unique optimal robust allocation over `{RC, SI, SSI}`
    /// (Theorem 4.3), plus the work counters.
    pub fn optimal(&self) -> (Allocation, EngineStats) {
        let start = Instant::now();
        let checker = self.checker();
        let (alloc, cache) = refine_cached(
            self.txns,
            &checker,
            Allocation::uniform_ssi(self.txns),
            None,
            &mut |_, _, _| {},
        );
        let stats = self.finish(&checker, &cache, start);
        (alloc, stats)
    }

    /// [`Allocator::optimal`] that also reports, for each lowering
    /// attempt that failed, the counterexample that rejected it.
    pub fn optimal_explained(&self) -> (Allocation, Vec<Reason>, EngineStats) {
        let start = Instant::now();
        let checker = self.checker();
        let mut reasons = Vec::new();
        let (alloc, cache) = refine_cached(
            self.txns,
            &checker,
            Allocation::uniform_ssi(self.txns),
            None,
            &mut |t, lvl, spec| reasons.push((t, lvl, spec.clone())),
        );
        let stats = self.finish(&checker, &cache, start);
        (alloc, reasons, stats)
    }

    /// The least robust allocation inside the box `lo ≤ 𝒜 ≤ hi`
    /// (pointwise), or `None` when no robust allocation exists in the
    /// box. See [`optimal_allocation_in_box`] for the correctness
    /// argument and use cases.
    ///
    /// Panics when `lo`/`hi` do not cover every transaction or `lo ≰ hi`.
    pub fn optimal_in_box(
        &self,
        lo: &Allocation,
        hi: &Allocation,
    ) -> (Option<Allocation>, EngineStats) {
        assert!(
            lo.covers(self.txns) && hi.covers(self.txns),
            "bounds must cover every transaction"
        );
        assert!(lo.le(hi), "need lo ≤ hi pointwise");
        let start = Instant::now();
        let checker = self.checker();
        if !checker.is_robust(hi).robust() {
            let stats = self.finish(&checker, &CacheStats::default(), start);
            return (None, stats);
        }
        let (alloc, cache) =
            refine_cached(self.txns, &checker, hi.clone(), Some(lo), &mut |_, _, _| {});
        let stats = self.finish(&checker, &cache, start);
        (Some(alloc), stats)
    }

    /// [`Allocator::optimal_in_box`] with only a lower bound
    /// (`hi = 𝒜_SSI`). Always succeeds, since `𝒜_SSI` is robust.
    pub fn optimal_with_floor(&self, floor: &Allocation) -> (Allocation, EngineStats) {
        let (alloc, stats) = self.optimal_in_box(floor, &Allocation::uniform_ssi(self.txns));
        (alloc.expect("the all-SSI ceiling is always robust"), stats)
    }

    /// The unique optimal robust `{RC, SI}`-allocation (Theorem 5.5),
    /// or `None` when none exists — i.e. when `𝒜_SI` itself is not
    /// robust (Proposition 5.4).
    pub fn optimal_rc_si(&self) -> (Option<Allocation>, EngineStats) {
        let start = Instant::now();
        let checker = self.checker();
        let si = Allocation::uniform_si(self.txns);
        if !checker.is_robust(&si).robust() {
            let stats = self.finish(&checker, &CacheStats::default(), start);
            return (None, stats);
        }
        let (alloc, cache) = refine_cached(self.txns, &checker, si, None, &mut |_, _, _| {});
        let stats = self.finish(&checker, &cache, start);
        (Some(alloc), stats)
    }
}

#[derive(Default)]
struct CacheStats {
    hits: u64,
    specs: u64,
}

/// The refinement loop shared by Algorithm 2, its box-constrained
/// variant, and the `{RC, SI}` variant (Theorem 5.5): lowers each
/// transaction of a *robust* starting allocation to its least robust
/// level (skipping levels below `floor`, when given).
///
/// `on_failure` observes every rejected lowering with the spec that
/// rejected it (cached or fresh).
///
/// The counterexample cache only ever *rejects* candidates, and only
/// with a spec that [`SplitSpec::check`]-validates against that exact
/// candidate — a certificate of non-robustness. Acceptances always come
/// from a full probe, so the refinement path is identical to the
/// uncached loop.
fn refine_cached(
    txns: &TransactionSet,
    checker: &RobustnessChecker<'_>,
    start: Allocation,
    floor: Option<&Allocation>,
    on_failure: &mut dyn FnMut(TxnId, IsolationLevel, &SplitSpec),
) -> (Allocation, CacheStats) {
    debug_assert!(
        checker.is_robust(&start).robust(),
        "refine requires a robust start"
    );
    let mut cache: Vec<SplitSpec> = Vec::new();
    let mut hits = 0u64;
    let mut alloc = start;
    for t in txns.iter() {
        for &lvl in alloc.level(t.id()).lower_levels() {
            if let Some(floor) = floor {
                if lvl < floor.level(t.id()) {
                    continue;
                }
            }
            let candidate = alloc.with(t.id(), lvl);
            if let Some(spec) = cache.iter().find(|s| s.check(txns, &candidate).is_ok()) {
                hits += 1;
                on_failure(t.id(), lvl, spec);
                continue;
            }
            match checker.find_counterexample(&candidate) {
                None => {
                    alloc = candidate;
                    break;
                }
                Some(spec) => {
                    on_failure(t.id(), lvl, &spec);
                    cache.push(spec);
                }
            }
        }
    }
    let specs = cache.len() as u64;
    (alloc, CacheStats { hits, specs })
}

/// Computes the unique optimal robust allocation for `txns` over
/// `{RC, SI, SSI}` (Theorem 4.3).
///
/// Starting from `𝒜_SSI` (always robust), each transaction is lowered to
/// the least level that keeps the allocation robust. Correctness rests on
/// Proposition 4.1(2): if some robust allocation maps `T` lower, the
/// current one may adopt that level as well — so greedy, order-independent
/// refinement reaches the unique optimum (Proposition 4.2).
pub fn optimal_allocation(txns: &TransactionSet) -> Allocation {
    Allocator::new(txns).optimal().0
}

/// Computes the least robust allocation inside the box `lo ≤ 𝒜 ≤ hi`
/// (pointwise), or `None` when no robust allocation exists in the box.
///
/// Practical use: constraints from the deployment — a legacy driver
/// hard-codes `READ COMMITTED` (pin with `lo = hi = RC`), an auditor
/// demands at least SI for a reporting transaction (`lo = SI`), a hot
/// path must not pay SSI's SIREAD overhead (`hi = SI`).
///
/// Correctness: robustness is upward closed (Proposition 4.1(1)), so if
/// any robust allocation lies in the box then `hi` itself is robust; the
/// refinement then mirrors Algorithm 2 restricted to the box, and the
/// exchange argument of Proposition 4.1(2) gives uniqueness of the
/// box-minimum exactly as in Proposition 4.2.
///
/// Panics when `lo`/`hi` do not cover every transaction or `lo ≰ hi`.
pub fn optimal_allocation_in_box(
    txns: &TransactionSet,
    lo: &Allocation,
    hi: &Allocation,
) -> Option<Allocation> {
    Allocator::new(txns).optimal_in_box(lo, hi).0
}

/// [`optimal_allocation_in_box`] with only a lower bound (`hi = 𝒜_SSI`).
/// Always succeeds, since `𝒜_SSI` is robust.
pub fn optimal_allocation_with_floor(txns: &TransactionSet, floor: &Allocation) -> Allocation {
    Allocator::new(txns).optimal_with_floor(floor).0
}

/// Diagnostic variant of [`optimal_allocation`] that also reports, for
/// each lowering attempt that failed, the counterexample found — useful
/// for explaining *why* a transaction needs its level.
pub fn optimal_allocation_explained(txns: &TransactionSet) -> (Allocation, Vec<Reason>) {
    let (alloc, reasons, _) = Allocator::new(txns).optimal_explained();
    (alloc, reasons)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm1::is_robust;
    use mvmodel::{TxnId, TxnSetBuilder};

    #[test]
    fn disjoint_workload_all_rc() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).read(x).write(x).finish();
        b.txn(2).read(y).write(y).finish();
        let txns = b.build().unwrap();
        let a = optimal_allocation(&txns);
        assert_eq!(a, Allocation::uniform_rc(&txns));
    }

    #[test]
    fn write_skew_needs_ssi_pair() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).read(y).write(x).finish();
        let txns = b.build().unwrap();
        let a = optimal_allocation(&txns);
        assert!(is_robust(&txns, &a).robust());
        // Write skew requires SSI for… at least two of the transactions
        // (the dangerous-structure filter needs all three participants
        // SSI; with two transactions both must be SSI).
        assert_eq!(a.level(TxnId(1)), IsolationLevel::SSI);
        assert_eq!(a.level(TxnId(2)), IsolationLevel::SSI);
    }

    #[test]
    fn lost_update_gets_si() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        b.txn(1).read(x).write(x).finish();
        b.txn(2).read(x).write(x).finish();
        let txns = b.build().unwrap();
        let a = optimal_allocation(&txns);
        assert!(is_robust(&txns, &a).robust());
        assert_eq!(
            a.counts(),
            (0, 2, 0),
            "lost-update pair is robust at SI but not RC: {a}"
        );
    }

    #[test]
    fn optimality_lowering_any_txn_breaks_robustness() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).read(y).write(x).finish();
        b.txn(3).read(x).write(x).finish();
        let txns = b.build().unwrap();
        let a = optimal_allocation(&txns);
        assert!(is_robust(&txns, &a).robust());
        for t in txns.ids() {
            for &lower in a.level(t).lower_levels() {
                let lowered = a.with(t, lower);
                assert!(
                    !is_robust(&txns, &lowered).robust(),
                    "lowering {t} to {lower} should break robustness ({a})"
                );
            }
        }
    }

    #[test]
    fn explained_variant_agrees_and_reports_reasons() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).read(y).write(x).finish();
        let txns = b.build().unwrap();
        let (a, reasons) = optimal_allocation_explained(&txns);
        assert_eq!(a, optimal_allocation(&txns));
        // Both transactions failed both lowering attempts: 4 reasons.
        assert_eq!(reasons.len(), 4);
        for (t, lvl, spec) in &reasons {
            assert!(!spec.chain.is_empty());
            // Every reported spec certifies non-robustness of the exact
            // candidate it rejected.
            let candidate_base = if *t == TxnId(2) {
                a.clone()
            } else {
                Allocation::uniform_ssi(&txns)
            };
            let _ = (candidate_base, lvl);
        }
    }

    #[test]
    fn engine_stats_account_for_cache() {
        // Write-skew pair: 4 lowering attempts all fail. The first
        // failure (T1→RC) caches a spec; whether later attempts hit the
        // cache depends on spec validity under each candidate, but
        // probes + cache_hits must cover all 4 attempts.
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).read(y).write(x).finish();
        let txns = b.build().unwrap();
        let (a, stats) = Allocator::new(&txns).optimal();
        assert_eq!(a, optimal_allocation(&txns));
        assert_eq!(stats.probes + stats.cache_hits, 4 + dbg_probe_overhead());
        assert!(
            stats.cache_hits >= 1,
            "repeat rejections should hit the cache: {stats}"
        );
        assert!(stats.cached_specs >= 1);
        assert_eq!(stats.threads, 1);
        assert!(stats.wall.as_nanos() > 0);
        let shown = stats.to_string();
        assert!(shown.contains("probes=") && shown.contains("cache_hits="));
    }

    /// `refine_cached` opens with a `debug_assert` probe of the start
    /// allocation; it runs only in debug builds.
    fn dbg_probe_overhead() -> u64 {
        if cfg!(debug_assertions) {
            1
        } else {
            0
        }
    }

    #[test]
    fn box_allocation_respects_bounds() {
        // Write skew pair + an independent reader.
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        let z = b.object("z");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).read(y).write(x).finish();
        b.txn(3).read(z).finish();
        let txns = b.build().unwrap();

        // Unconstrained optimum: T1, T2 → SSI; T3 → RC.
        let free = optimal_allocation(&txns);
        assert_eq!(free.to_string(), "T1=SSI T2=SSI T3=RC");

        // Floor: T3 must run at least at SI.
        let floor = Allocation::parse("T1=RC T2=RC T3=SI").unwrap();
        let a = super::optimal_allocation_with_floor(&txns, &floor);
        assert_eq!(a.to_string(), "T1=SSI T2=SSI T3=SI");
        assert!(is_robust(&txns, &a).robust());

        // Ceiling: T1 must not exceed SI → no robust allocation in the box
        // (the skew pair needs both at SSI).
        let lo = Allocation::uniform_rc(&txns);
        let hi = Allocation::parse("T1=SI T2=SSI T3=SSI").unwrap();
        assert_eq!(super::optimal_allocation_in_box(&txns, &lo, &hi), None);

        // Exact pin: T3 = RC is compatible.
        let lo = Allocation::parse("T1=RC T2=RC T3=RC").unwrap();
        let hi = Allocation::parse("T1=SSI T2=SSI T3=RC").unwrap();
        let a = super::optimal_allocation_in_box(&txns, &lo, &hi).unwrap();
        assert_eq!(a, free);
    }

    #[test]
    #[should_panic(expected = "lo ≤ hi")]
    fn box_rejects_inverted_bounds() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        b.txn(1).read(x).finish();
        let txns = b.build().unwrap();
        let _ = super::optimal_allocation_in_box(
            &txns,
            &Allocation::uniform_ssi(&txns),
            &Allocation::uniform_rc(&txns),
        );
    }

    #[test]
    fn empty_and_singleton_sets() {
        let txns = TxnSetBuilder::new().build().unwrap();
        assert!(optimal_allocation(&txns).is_empty());
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        b.txn(1).read(x).write(x).finish();
        let txns = b.build().unwrap();
        assert_eq!(optimal_allocation(&txns).counts(), (1, 0, 0));
    }
}
