//! Robustness and optimal isolation-level allocation — the core
//! contribution of *Allocating Isolation Levels to Transactions in a
//! Multiversion Setting* (Vandevoort, Ketsman & Neven, PODS 2023).
//!
//! - [`algorithm1`]: the polynomial-time robustness decision procedure
//!   (paper Algorithm 1 / Theorems 3.2–3.3). [`is_robust`] answers the
//!   decision problem; when the answer is *no* it also returns the
//!   [`SplitSpec`] describing a counterexample multiversion split schedule
//!   (Definition 3.1).
//! - [`witness`]: materializes a [`SplitSpec`] into a concrete
//!   [`mvmodel::Schedule`] — complete with version order and version
//!   function — and machine-checks that it is allowed under the allocation
//!   yet not conflict-serializable (the constructive (2)→(1) direction of
//!   Theorem 3.2).
//! - [`allocate`]: Algorithm 2 — the unique optimal robust allocation over
//!   `{RC, SI, SSI}` (Propositions 4.1–4.2, Theorem 4.3).
//! - [`rc_si`]: the Oracle-style restriction to `{RC, SI}` (Propositions
//!   5.1/5.4, Theorem 5.5).
//! - [`oracle`]: a brute-force ground-truth decision procedure that
//!   enumerates every schedule allowed under the allocation — exponential,
//!   for validating Algorithm 1 on small workloads.
//! - [`conflict_index`]: precomputed transaction-level conflict matrices
//!   (bit-packed) and the `mixed-iso-graph` reachability structure
//!   Algorithm 1 uses.
//! - [`reference`]: the pre-engine single-threaded implementation, kept
//!   as the ground truth for the equivalence suite and the baseline for
//!   the engine benchmarks.
//!
//! The engine entry points are [`RobustnessChecker`] (Algorithm 1 with
//! per-`T₁` iso-graph caching, bitset candidate iteration, and an
//! optional parallel outer search) and [`Allocator`] (Algorithm 2 with a
//! counterexample cache); both report their work through
//! [`SearchStats`] / [`EngineStats`]. An [`Allocator`] built with
//! [`Allocator::from_owned`] additionally maintains the optimum *online*
//! as transactions register and deregister ([`Allocator::add_txn`] /
//! [`Allocator::remove_txn`]), reusing cached counterexamples across
//! reallocations — the substrate of the `mvservice` daemon.

pub mod algorithm1;
pub mod allocate;
pub mod components;
pub mod conflict_index;
pub mod oracle;
pub mod rc_si;
pub mod reference;
pub mod sdg;
pub mod split_schedule;
pub mod stats;
pub mod witness;

pub use algorithm1::{
    find_counterexample, is_robust, RobustnessChecker, RobustnessReport, SearchStats,
};
pub use allocate::{
    optimal_allocation, optimal_allocation_explained, optimal_allocation_in_box,
    optimal_allocation_with_floor, AllocError, Allocator, BatchRealloc, DeltaEvent, LevelSet,
    ParseLevelSetError, Realloc,
};
pub use components::{CompEntry, Components, SharedCompCache};
pub use conflict_index::ConflictIndex;
pub use oracle::{
    check_trace, corroborate_anomaly, oracle_counterexample, oracle_is_robust, validate_trace,
    AnomalyMismatch, TraceError, TraceVerdict,
};
pub use rc_si::{optimal_allocation_rc_si, robustly_allocatable_rc_si};
pub use reference::{optimal_allocation_reference, ReferenceChecker};
pub use sdg::{static_si_robust, StaticVerdict};
pub use split_schedule::SplitSpec;
pub use stats::EngineStats;
pub use witness::{materialize, verify_witness, WitnessError};

/// Audit re-verify hook: re-runs Algorithm 1 over a concrete workload and
/// returns the counterexample split schedule when the allocation is not
/// robust. Used by `mvtemplates`' catalog registration (randomized
/// re-verification of the precomputed template allocation) and by the
/// equivalence suites — one canonical way to ask "does this allocation
/// still hold?" without touching an [`Allocator`].
pub fn reverify(
    txns: &mvmodel::TransactionSet,
    alloc: &mvisolation::Allocation,
) -> Result<(), SplitSpec> {
    let report = is_robust(txns, alloc);
    if report.robust() {
        Ok(())
    } else {
        Err(report
            .into_counterexample()
            .expect("non-robust reports carry a counterexample"))
    }
}
