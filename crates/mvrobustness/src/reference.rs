//! The pre-engine Algorithm 1 implementation, retained verbatim in
//! structure as (a) the ground truth for the randomized equivalence
//! suite and (b) the "before" side of the engine benchmarks.
//!
//! Differences from [`crate::RobustnessChecker`], on purpose:
//!
//! - rebuilds the `IsoReach` structure for **every** split-transaction
//!   candidate on **every** probe (eagerly, before any `(T₂, T_m)`
//!   candidate is examined);
//! - scans all `n` transactions in the `t2`/`tm` loops, branching per
//!   pair instead of iterating set bits of the conflict row;
//! - single-threaded, no caches, no statistics.
//!
//! Both implementations share the inner operation search
//! (`find_operations`), which is a faithful transcription of conditions
//! (2)–(5) and was never part of the engine rework.

use crate::algorithm1::find_operations;
use crate::conflict_index::{ConflictIndex, IsoReach};
use crate::split_schedule::SplitSpec;
use mvisolation::{Allocation, IsolationLevel};
use mvmodel::TransactionSet;

/// The pre-engine counterpart of
/// [`crate::RobustnessChecker::find_counterexample`]: one conflict
/// index per checker, everything else recomputed per probe.
pub struct ReferenceChecker<'a> {
    txns: &'a TransactionSet,
    index: ConflictIndex,
}

impl<'a> ReferenceChecker<'a> {
    pub fn new(txns: &'a TransactionSet) -> Self {
        ReferenceChecker {
            txns,
            index: ConflictIndex::new(txns),
        }
    }

    pub fn is_robust(&self, alloc: &Allocation) -> bool {
        self.find_counterexample(alloc).is_none()
    }

    pub fn find_counterexample(&self, alloc: &Allocation) -> Option<SplitSpec> {
        let txns = self.txns;
        let index = &self.index;
        let n = txns.len();
        if n < 2 {
            return None;
        }
        let ssi = IsolationLevel::SSI;

        for t1 in txns.iter() {
            let t1_id = t1.id();
            let i1 = txns.index_of(t1_id);
            let l1 = alloc.level(t1_id);
            // T1 must have at least one read (b₁ is rw-conflicting with a₂).
            if t1.reads().next().is_none() {
                continue;
            }
            let reach = IsoReach::new(txns, index, t1_id);
            for t2 in txns.iter() {
                let t2_id = t2.id();
                let i2 = txns.index_of(t2_id);
                if t2_id == t1_id || !index.any(i1, i2) {
                    continue;
                }
                let l2 = alloc.level(t2_id);
                // Condition (7).
                if l1 == ssi && l2 == ssi && index.wr(i1, i2) {
                    continue;
                }
                for tm in txns.iter() {
                    let tm_id = tm.id();
                    let im = txns.index_of(tm_id);
                    if tm_id == t1_id || !index.any(im, i1) {
                        continue;
                    }
                    let lm = alloc.level(tm_id);
                    // Condition (6).
                    if l1 == ssi && l2 == ssi && lm == ssi {
                        continue;
                    }
                    // Condition (8).
                    if l1 == ssi && lm == ssi && index.wr(im, i1) {
                        continue;
                    }
                    if !reach.reachable_idx(index, i2, im) {
                        continue;
                    }
                    if let Some(spec) =
                        find_operations(txns, index, alloc, &reach, t1_id, t2_id, tm_id)
                    {
                        debug_assert_eq!(spec.check(txns, alloc), Ok(()));
                        return Some(spec);
                    }
                }
            }
        }
        None
    }
}

/// Pre-engine Algorithm 2: greedy refinement from `𝒜_SSI` with a fresh
/// full probe per lowering attempt (no counterexample cache).
pub fn optimal_allocation_reference(txns: &TransactionSet) -> Allocation {
    let checker = ReferenceChecker::new(txns);
    let mut alloc = Allocation::uniform_ssi(txns);
    for t in txns.iter() {
        for &lvl in alloc.level(t.id()).lower_levels() {
            let candidate = alloc.with(t.id(), lvl);
            if checker.is_robust(&candidate) {
                alloc = candidate;
                break;
            }
        }
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm1::is_robust;
    use crate::allocate::optimal_allocation;
    use mvmodel::TxnSetBuilder;

    #[test]
    fn reference_agrees_on_textbook_cases() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).read(y).write(x).finish();
        b.txn(3).read(x).write(x).finish();
        let txns = b.build().unwrap();
        let reference = ReferenceChecker::new(&txns);
        for lvl in mvisolation::IsolationLevel::ALL {
            let alloc = Allocation::uniform(&txns, lvl);
            assert_eq!(
                reference.is_robust(&alloc),
                is_robust(&txns, &alloc).robust()
            );
            assert_eq!(
                reference.find_counterexample(&alloc),
                crate::find_counterexample(&txns, &alloc),
                "engine and reference must find the identical spec"
            );
        }
        assert_eq!(
            optimal_allocation_reference(&txns),
            optimal_allocation(&txns)
        );
    }
}
