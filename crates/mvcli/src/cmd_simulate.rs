//! `mvrobust simulate`: execute the workload in the MVCC simulator and
//! report throughput, aborts, and serializability of the emitted
//! schedules.
//!
//! `--allocate` closes the allocate→execute loop in one invocation: it
//! computes the optimal robust allocation over the `--levels` menu
//! (Algorithm 2), executes it, and validates every run's committed trace
//! with the conformance oracle — allowed under the allocation *and*
//! conflict serializable (the allocation is robust by construction). A
//! nonconformant trace is a contract violation and exits 1.

use crate::args::Parsed;
use mvisolation::IsolationLevel;
use mvmodel::serializability::is_conflict_serializable;
use mvrobustness::{check_trace, optimal_allocation, Allocator, LevelSet};
use mvsim::{run_workload, SimConfig, SsiMode};
use serde_json::json;
use std::process::ExitCode;

const LEVEL_NAMES: [(&str, IsolationLevel); 3] = [
    ("RC", IsolationLevel::ReadCommitted),
    ("SI", IsolationLevel::SnapshotIsolation),
    ("SSI", IsolationLevel::SerializableSnapshotIsolation),
];

pub fn run(argv: &[String]) -> Result<ExitCode, String> {
    let parsed = Parsed::parse(argv)?;
    let txns = parsed.load_workload()?;
    let allocate = parsed.flag("allocate");
    let alloc = if allocate {
        if parsed.flag("optimal")
            || parsed.option("alloc").is_some()
            || parsed.option("level").is_some()
        {
            return Err("--allocate is mutually exclusive with --alloc/--level/--optimal".into());
        }
        let allocator = Allocator::new(&txns).with_threads(parsed.threads()?);
        match parsed.level_set()? {
            LevelSet::RcSiSsi => allocator.optimal().0,
            LevelSet::RcSi => match allocator.optimal_rc_si().0 {
                Some(a) => a,
                None => {
                    eprintln!(
                        "workload admits no robust {{RC, SI}} allocation — \
                         rerun with --levels rc-si-ssi"
                    );
                    return Ok(ExitCode::from(1));
                }
            },
        }
    } else if parsed.flag("optimal") {
        optimal_allocation(&txns)
    } else {
        parsed.allocation(&txns)?
    };
    let concurrency: usize = parsed.option_parse("concurrency")?.unwrap_or(4);
    let seed: u64 = parsed.option_parse("seed")?.unwrap_or(0);
    let repeat: u64 = parsed.option_parse("repeat")?.unwrap_or(1);
    let ssi_mode = match parsed.option("ssi-mode").unwrap_or("exact") {
        "exact" => SsiMode::Exact,
        "conservative" => SsiMode::Conservative,
        other => return Err(format!("invalid --ssi-mode `{other}`")),
    };

    let mut total = mvsim::Metrics::default();
    let mut latency = mvsim::LatencyStats::default();
    let mut serializable_runs = 0u64;
    let mut allowed_runs = 0u64;
    let mut violations: Vec<String> = Vec::new();
    for r in 0..repeat {
        let run_seed = seed.wrapping_add(r);
        let config = SimConfig::default()
            .with_seed(run_seed)
            .with_concurrency(concurrency)
            .with_ssi_mode(ssi_mode);
        let engine = run_workload(&txns, &alloc, config);
        let m = engine.metrics;
        total.commits += m.commits;
        total.aborts_fcw += m.aborts_fcw;
        total.aborts_deadlock += m.aborts_deadlock;
        total.aborts_ssi += m.aborts_ssi;
        total.ticks += m.ticks;
        total.gave_up += m.gave_up;
        total.reads += m.reads;
        total.writes += m.writes;
        total.blocked_events += m.blocked_events;
        for (t, l) in total.per_level.iter_mut().zip(m.per_level.iter()) {
            t.commits += l.commits;
            t.aborts_fcw += l.aborts_fcw;
            t.aborts_deadlock += l.aborts_deadlock;
            t.aborts_ssi += l.aborts_ssi;
        }
        latency.merge(&engine.latency);
        if let Some(exported) = engine.trace.export() {
            if mvisolation::allowed_under(&exported.schedule, &exported.allocation) {
                allowed_runs += 1;
            }
            if is_conflict_serializable(&exported.schedule) {
                serializable_runs += 1;
            }
            if allocate {
                // Optimal allocations are robust, so every committed trace
                // must pass the full conformance contract.
                if let Err(e) = check_trace(&exported.schedule, &exported.allocation, true) {
                    violations.push(format!("run {r} (seed {run_seed}): {e}"));
                }
            }
        }
    }

    if parsed.flag("json") {
        let level_json = |l: IsolationLevel| {
            let c = total.level(l);
            json!({
                "commits": c.commits,
                "aborts_fcw": c.aborts_fcw,
                "aborts_deadlock": c.aborts_deadlock,
                "aborts_ssi": c.aborts_ssi,
            })
        };
        let per_level = json!({
            "RC": level_json(IsolationLevel::ReadCommitted),
            "SI": level_json(IsolationLevel::SnapshotIsolation),
            "SSI": level_json(IsolationLevel::SerializableSnapshotIsolation),
        });
        let j = json!({
            "allocation": alloc.to_string(),
            "allocated": allocate,
            "concurrency": concurrency,
            "runs": repeat,
            "commits": total.commits,
            "aborts": json!({
                "first_committer_wins": total.aborts_fcw,
                "deadlock": total.aborts_deadlock,
                "ssi": total.aborts_ssi,
            }),
            "gave_up": total.gave_up,
            "ticks": total.ticks,
            "goodput": total.goodput(),
            "abort_rate": total.abort_rate(),
            "serializable_runs": serializable_runs,
            "allowed_runs": allowed_runs,
            "per_level": per_level,
            "conformance_violations": violations.clone(),
            "latency_ticks": json!({
                "mean": latency.mean(),
                "p50": latency.p50(),
                "p95": latency.p95(),
                "max": latency.max(),
            }),
        });
        println!("{}", serde_json::to_string_pretty(&j).expect("valid json"));
    } else {
        println!("allocation: {alloc}");
        println!("{total}");
        println!("level  commits  fcw  deadlock  ssi");
        for (name, l) in LEVEL_NAMES {
            let c = total.level(l);
            println!(
                "{name:<6} {:>7}  {:>3}  {:>8}  {:>3}",
                c.commits, c.aborts_fcw, c.aborts_deadlock, c.aborts_ssi
            );
        }
        println!("{latency}");
        println!(
            "runs: {repeat}  serializable: {serializable_runs}  allowed-under-allocation: {allowed_runs}"
        );
    }
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("conformance violation: {v}");
        }
        return Ok(ExitCode::from(1));
    }
    Ok(ExitCode::SUCCESS)
}
