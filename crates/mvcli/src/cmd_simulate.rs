//! `mvrobust simulate`: execute the workload in the MVCC simulator and
//! report throughput, aborts, and serializability of the emitted
//! schedules.

use crate::args::Parsed;
use mvmodel::serializability::is_conflict_serializable;
use mvrobustness::optimal_allocation;
use mvsim::{run_jobs, Job, SimConfig, SsiMode};
use serde_json::json;
use std::process::ExitCode;

pub fn run(argv: &[String]) -> Result<ExitCode, String> {
    let parsed = Parsed::parse(argv)?;
    let txns = parsed.load_workload()?;
    let alloc = if parsed.flag("optimal") {
        optimal_allocation(&txns)
    } else {
        parsed.allocation(&txns)?
    };
    let concurrency: usize = parsed.option_parse("concurrency")?.unwrap_or(4);
    let seed: u64 = parsed.option_parse("seed")?.unwrap_or(0);
    let repeat: u64 = parsed.option_parse("repeat")?.unwrap_or(1);
    let ssi_mode = match parsed.option("ssi-mode").unwrap_or("exact") {
        "exact" => SsiMode::Exact,
        "conservative" => SsiMode::Conservative,
        other => return Err(format!("invalid --ssi-mode `{other}`")),
    };

    let jobs: Vec<Job> = txns
        .iter()
        .map(|t| Job::new(t.ops().to_vec(), alloc.level(t.id())))
        .collect();

    let mut total = mvsim::Metrics::default();
    let mut latency = mvsim::LatencyStats::default();
    let mut serializable_runs = 0u64;
    let mut allowed_runs = 0u64;
    for r in 0..repeat {
        let config = SimConfig::default()
            .with_seed(seed.wrapping_add(r))
            .with_concurrency(concurrency)
            .with_ssi_mode(ssi_mode);
        let engine = run_jobs(&jobs, config);
        let m = engine.metrics;
        total.commits += m.commits;
        total.aborts_fcw += m.aborts_fcw;
        total.aborts_deadlock += m.aborts_deadlock;
        total.aborts_ssi += m.aborts_ssi;
        total.ticks += m.ticks;
        total.gave_up += m.gave_up;
        total.reads += m.reads;
        total.writes += m.writes;
        total.blocked_events += m.blocked_events;
        latency.merge(&engine.latency);
        if let Some(exported) = engine.trace.export() {
            if mvisolation::allowed_under(&exported.schedule, &exported.allocation) {
                allowed_runs += 1;
            }
            if is_conflict_serializable(&exported.schedule) {
                serializable_runs += 1;
            }
        }
    }

    if parsed.flag("json") {
        let j = json!({
            "allocation": alloc.to_string(),
            "concurrency": concurrency,
            "runs": repeat,
            "commits": total.commits,
            "aborts": json!({
                "first_committer_wins": total.aborts_fcw,
                "deadlock": total.aborts_deadlock,
                "ssi": total.aborts_ssi,
            }),
            "gave_up": total.gave_up,
            "ticks": total.ticks,
            "goodput": total.goodput(),
            "abort_rate": total.abort_rate(),
            "serializable_runs": serializable_runs,
            "allowed_runs": allowed_runs,
            "latency_ticks": json!({
                "mean": latency.mean(),
                "p50": latency.p50(),
                "p95": latency.p95(),
                "max": latency.max(),
            }),
        });
        println!("{}", serde_json::to_string_pretty(&j).expect("valid json"));
    } else {
        println!("allocation: {alloc}");
        println!("{total}");
        println!("{latency}");
        println!(
            "runs: {repeat}  serializable: {serializable_runs}  allowed-under-allocation: {allowed_runs}"
        );
    }
    Ok(ExitCode::SUCCESS)
}
