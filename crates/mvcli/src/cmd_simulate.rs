//! `mvrobust simulate`: execute the workload in the MVCC simulator and
//! report throughput, aborts, and serializability of the emitted
//! schedules.
//!
//! `--allocate` closes the allocate→execute loop in one invocation: it
//! computes the optimal robust allocation over the `--levels` menu
//! (Algorithm 2), executes it, and validates every run's committed trace
//! with the conformance oracle — allowed under the allocation *and*
//! conflict serializable (the allocation is robust by construction). A
//! nonconformant trace is a contract violation and exits 1.
//!
//! `--threads N` (default 1) selects the execution engine: 1 runs the
//! sequential engine under the seeded cooperative scheduler (replayable
//! interleavings), ≥ 2 runs the multi-core engine with N OS worker
//! threads (real parallelism, OS-scheduled interleavings — still
//! validated against the same trace contract). Either way the report
//! includes wall-clock elapsed time and committed transactions per
//! second alongside the logical-tick metrics.

use crate::args::Parsed;
use mvisolation::IsolationLevel;
use mvmodel::serializability::is_conflict_serializable;
use mvrobustness::{check_trace, optimal_allocation, Allocator, LevelSet};
use mvsim::{run_workload, SimConfig, SsiMode};
use serde_json::json;
use std::process::ExitCode;
use std::time::{Duration, Instant};

const LEVEL_NAMES: [(&str, IsolationLevel); 3] = [
    ("RC", IsolationLevel::ReadCommitted),
    ("SI", IsolationLevel::SnapshotIsolation),
    ("SSI", IsolationLevel::SerializableSnapshotIsolation),
];

pub fn run(argv: &[String]) -> Result<ExitCode, String> {
    let parsed = Parsed::parse(argv)?;
    let txns = parsed.load_workload()?;
    let allocate = parsed.flag("allocate");
    let alloc = if allocate {
        if parsed.flag("optimal")
            || parsed.option("alloc").is_some()
            || parsed.option("level").is_some()
        {
            return Err("--allocate is mutually exclusive with --alloc/--level/--optimal".into());
        }
        let allocator = Allocator::new(&txns).with_threads(parsed.threads()?);
        match parsed.level_set()? {
            LevelSet::RcSiSsi => allocator.optimal().0,
            LevelSet::RcSi => match allocator.optimal_rc_si().0 {
                Some(a) => a,
                None => {
                    eprintln!(
                        "workload admits no robust {{RC, SI}} allocation — \
                         rerun with --levels rc-si-ssi"
                    );
                    return Ok(ExitCode::from(1));
                }
            },
        }
    } else if parsed.flag("optimal") {
        optimal_allocation(&txns)
    } else {
        parsed.allocation(&txns)?
    };
    let concurrency: usize = parsed.option_parse("concurrency")?.unwrap_or(4);
    let threads = parsed.threads()?;
    let seed: u64 = parsed.option_parse("seed")?.unwrap_or(0);
    let repeat: u64 = parsed.option_parse("repeat")?.unwrap_or(1);
    let ssi_mode = match parsed.option("ssi-mode").unwrap_or("exact") {
        "exact" => SsiMode::Exact,
        "conservative" => SsiMode::Conservative,
        other => return Err(format!("invalid --ssi-mode `{other}`")),
    };

    let mut total = mvsim::Metrics::default();
    let mut latency = mvsim::LatencyStats::default();
    let mut elapsed = Duration::ZERO;
    let mut serializable_runs = 0u64;
    let mut allowed_runs = 0u64;
    let mut violations: Vec<String> = Vec::new();
    for r in 0..repeat {
        let run_seed = seed.wrapping_add(r);
        let config = SimConfig::default()
            .with_seed(run_seed)
            .with_concurrency(concurrency)
            .with_threads(threads)
            .with_ssi_mode(ssi_mode);
        let (m, run_latency, trace, run_elapsed) = if threads > 1 {
            let run = mvsim::run_parallel_workload(&txns, &alloc, config);
            (run.metrics, run.latency, run.trace, run.elapsed)
        } else {
            let start = Instant::now();
            let engine = run_workload(&txns, &alloc, config);
            (
                engine.metrics,
                engine.latency,
                engine.trace,
                start.elapsed(),
            )
        };
        // Repeats are independent runs, each with its own clock, so the
        // logical durations accumulate (absorb's ticks-max is for merging
        // worker partitions of a single run).
        let ticks_so_far = total.ticks;
        total.absorb(&m);
        total.ticks = ticks_so_far + m.ticks;
        latency.merge(&run_latency);
        elapsed += run_elapsed;
        if let Some(exported) = trace.export() {
            if mvisolation::allowed_under(&exported.schedule, &exported.allocation) {
                allowed_runs += 1;
            }
            if is_conflict_serializable(&exported.schedule) {
                serializable_runs += 1;
            }
            if allocate {
                // Optimal allocations are robust, so every committed trace
                // must pass the full conformance contract.
                if let Err(e) = check_trace(&exported.schedule, &exported.allocation, true) {
                    violations.push(format!("run {r} (seed {run_seed}): {e}"));
                }
            }
        }
    }

    if parsed.flag("json") {
        let level_json = |l: IsolationLevel| {
            let c = total.level(l);
            json!({
                "commits": c.commits,
                "aborts_fcw": c.aborts_fcw,
                "aborts_deadlock": c.aborts_deadlock,
                "aborts_ssi": c.aborts_ssi,
            })
        };
        let per_level = json!({
            "RC": level_json(IsolationLevel::ReadCommitted),
            "SI": level_json(IsolationLevel::SnapshotIsolation),
            "SSI": level_json(IsolationLevel::SerializableSnapshotIsolation),
        });
        let secs = elapsed.as_secs_f64();
        let txns_per_sec = if secs > 0.0 {
            total.commits as f64 / secs
        } else {
            0.0
        };
        let j = json!({
            "allocation": alloc.to_string(),
            "allocated": allocate,
            "concurrency": concurrency,
            "threads": threads as u64,
            "runs": repeat,
            "elapsed_ms": secs * 1e3,
            "txns_per_sec": txns_per_sec,
            "commits": total.commits,
            "aborts": json!({
                "first_committer_wins": total.aborts_fcw,
                "deadlock": total.aborts_deadlock,
                "ssi": total.aborts_ssi,
            }),
            "gave_up": total.gave_up,
            "ticks": total.ticks,
            "goodput": total.goodput(),
            "abort_rate": total.abort_rate(),
            "serializable_runs": serializable_runs,
            "allowed_runs": allowed_runs,
            "per_level": per_level,
            "conformance_violations": violations.clone(),
            "latency_ticks": json!({
                "mean": latency.mean(),
                "p50": latency.p50(),
                "p95": latency.p95(),
                "max": latency.max(),
            }),
        });
        println!("{}", serde_json::to_string_pretty(&j).expect("valid json"));
    } else {
        println!("allocation: {alloc}");
        println!("{total}");
        println!("level  commits  fcw  deadlock  ssi");
        for (name, l) in LEVEL_NAMES {
            let c = total.level(l);
            println!(
                "{name:<6} {:>7}  {:>3}  {:>8}  {:>3}",
                c.commits, c.aborts_fcw, c.aborts_deadlock, c.aborts_ssi
            );
        }
        println!("{latency}");
        let secs = elapsed.as_secs_f64();
        let txns_per_sec = if secs > 0.0 {
            total.commits as f64 / secs
        } else {
            0.0
        };
        println!(
            "threads: {threads}  elapsed: {:.2} ms  txns/sec: {txns_per_sec:.0}",
            secs * 1e3
        );
        println!(
            "runs: {repeat}  serializable: {serializable_runs}  allowed-under-allocation: {allowed_runs}"
        );
    }
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("conformance violation: {v}");
        }
        return Ok(ExitCode::from(1));
    }
    Ok(ExitCode::SUCCESS)
}
