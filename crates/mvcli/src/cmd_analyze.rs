//! `mvrobust analyze`: structural + robustness report for a workload.

use crate::args::Parsed;
use mvrobustness::stats::WorkloadReport;
use serde_json::json;
use std::process::ExitCode;

pub fn run(argv: &[String]) -> Result<ExitCode, String> {
    let parsed = Parsed::parse(argv)?;
    let txns = parsed.load_workload()?;
    let report = WorkloadReport::analyze(&txns);
    if parsed.flag("json") {
        let (rc, si, ssi) = report.optimal_counts();
        let j = json!({
            "transactions": report.transactions,
            "total_ops": report.total_ops,
            "max_ops_per_txn": report.max_ops,
            "objects": report.objects,
            "conflicting_pairs": report.conflicting_pairs,
            "conflict_density": report.conflict_density,
            "ww_protected_pairs": report.ww_pairs,
            "vulnerable_rw_edges": report.vulnerable_edges,
            "components": report.components,
            "largest_component": report.largest_component,
            "robust_rc": report.robust_rc,
            "robust_si": report.robust_si,
            "static_sdg_certified": report.static_si.certified(),
            "optimal": report.optimal.to_string(),
            "optimal_counts": json!({"RC": rc, "SI": si, "SSI": ssi}),
            "optimal_rc_si": report.optimal_rc_si.as_ref().map(|a| a.to_string()),
            "watch_list": report
                .above_rc()
                .iter()
                .map(|(t, l)| json!({"transaction": t.to_string(), "level": l.to_string()}))
                .collect::<Vec<_>>(),
        });
        println!("{}", serde_json::to_string_pretty(&j).expect("valid json"));
    } else {
        println!("{report}");
    }
    Ok(ExitCode::SUCCESS)
}
