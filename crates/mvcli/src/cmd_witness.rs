//! `mvrobust witness`: materialize and verify a concrete counterexample
//! schedule for a non-robust allocation.

use crate::args::Parsed;
use crate::output;
use mvrobustness::witness::counterexample_schedule;
use serde_json::json;
use std::process::ExitCode;
use std::sync::Arc;

pub fn run(argv: &[String]) -> Result<ExitCode, String> {
    let parsed = Parsed::parse(argv)?;
    let txns = Arc::new(parsed.load_workload()?);
    let alloc = parsed.allocation(&txns)?;
    match counterexample_schedule(&txns, &alloc) {
        None => {
            if parsed.flag("json") {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&json!({"robust": true})).expect("valid json")
                );
            } else {
                println!("ROBUST: no counterexample exists under {{{alloc}}}");
            }
            Ok(ExitCode::SUCCESS)
        }
        Some((spec, schedule)) => {
            if parsed.flag("json") {
                let mut j = json!({
                    "robust": false,
                    "spec": output::spec_json(&txns, &spec),
                    "schedule": mvmodel::fmt::schedule_order(&schedule),
                    "verified": true,
                });
                if parsed.flag("dot") {
                    j["dot"] = json!(mvmodel::fmt::serialization_graph_dot(&schedule));
                }
                println!("{}", serde_json::to_string_pretty(&j).expect("valid json"));
            } else {
                println!("NOT ROBUST under {{{alloc}}}");
                println!("{}", output::spec_text(&txns, &spec));
                println!("\nwitness schedule (allowed under the allocation, not serializable):");
                println!("{}", output::schedule_text(&schedule));
                if parsed.flag("dot") {
                    println!("\nserialization graph (Graphviz):");
                    print!("{}", mvmodel::fmt::serialization_graph_dot(&schedule));
                }
            }
            Ok(ExitCode::from(1))
        }
    }
}
