//! `mvrobust allocate`: compute the optimal robust allocation.

use crate::args::Parsed;
use crate::output;
use mvrobustness::{Allocator, LevelSet};
use serde_json::json;
use std::process::ExitCode;

pub fn run(argv: &[String]) -> Result<ExitCode, String> {
    let parsed = Parsed::parse(argv)?;
    let txns = parsed.load_workload()?;
    let levels = parsed.level_set()?;
    let explain = parsed.flag("explain");
    let allocator = Allocator::new(&txns)
        .with_threads(parsed.threads()?)
        .with_components(parsed.components());

    let (alloc, reasons, stats) = match levels {
        LevelSet::RcSiSsi => {
            if explain {
                let (a, r, s) = allocator.optimal_explained();
                (Some(a), r, s)
            } else {
                let (a, s) = allocator.optimal();
                (Some(a), Vec::new(), s)
            }
        }
        LevelSet::RcSi => {
            let (a, s) = allocator.optimal_rc_si();
            (a, Vec::new(), s)
        }
    };

    if parsed.flag("json") {
        let j = json!({
            "levels": levels.label(),
            "allocatable": alloc.is_some(),
            "allocation": alloc.as_ref().map(|a| a.to_string()),
            "counts": alloc.as_ref().map(|a| {
                let (rc, si, ssi) = a.counts();
                json!({"RC": rc, "SI": si, "SSI": ssi})
            }),
            "engine_stats": json!({
                "probes": stats.probes,
                "cache_hits": stats.cache_hits,
                "cached_specs": stats.cached_specs,
                "iso_builds": stats.iso_builds,
                "components_checked": stats.components_checked,
                "components_cached": stats.components_cached,
                "kernel_row_ops": stats.kernel_row_ops,
                "with_components": parsed.components(),
                "threads": stats.threads,
                "wall_ms": stats.wall.as_secs_f64() * 1e3,
            }),
            "reasons": reasons
                .iter()
                .map(|(t, lvl, spec)| json!({
                    "transaction": t.to_string(),
                    "rejected_level": lvl.to_string(),
                    "counterexample": output::spec_json(&txns, spec),
                }))
                .collect::<Vec<_>>(),
        });
        println!("{}", serde_json::to_string_pretty(&j).expect("valid json"));
    } else {
        match &alloc {
            None => println!(
                "NOT ALLOCATABLE: no robust {{RC, SI}} allocation exists \
                 (the workload is not robust against all-SI; SSI is required)"
            ),
            Some(a) => {
                let (rc, si, ssi) = a.counts();
                println!("optimal allocation: {a}");
                println!("  RC: {rc}  SI: {si}  SSI: {ssi}");
                for (t, lvl, spec) in &reasons {
                    println!(
                        "  {t} cannot run at {lvl}: {}",
                        output::spec_text(&txns, spec).replace('\n', "\n  ")
                    );
                }
            }
        }
    }
    Ok(if alloc.is_some() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}
