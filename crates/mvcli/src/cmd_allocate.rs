//! `mvrobust allocate`: compute the optimal robust allocation.

use crate::args::Parsed;
use crate::output;
use mvrobustness::allocate::optimal_allocation_explained;
use mvrobustness::{optimal_allocation, optimal_allocation_rc_si};
use serde_json::json;
use std::process::ExitCode;

pub fn run(argv: &[String]) -> Result<ExitCode, String> {
    let parsed = Parsed::parse(argv)?;
    let txns = parsed.load_workload()?;
    let levels = parsed.option("levels").unwrap_or("rc-si-ssi");
    let explain = parsed.flag("explain");

    let (alloc, reasons) = match levels {
        "rc-si-ssi" | "RC-SI-SSI" => {
            if explain {
                let (a, r) = optimal_allocation_explained(&txns);
                (Some(a), r)
            } else {
                (Some(optimal_allocation(&txns)), Vec::new())
            }
        }
        "rc-si" | "RC-SI" => (optimal_allocation_rc_si(&txns), Vec::new()),
        other => return Err(format!("invalid --levels `{other}` (rc-si or rc-si-ssi)")),
    };

    if parsed.flag("json") {
        let j = json!({
            "levels": levels,
            "allocatable": alloc.is_some(),
            "allocation": alloc.as_ref().map(|a| a.to_string()),
            "counts": alloc.as_ref().map(|a| {
                let (rc, si, ssi) = a.counts();
                json!({"RC": rc, "SI": si, "SSI": ssi})
            }),
            "reasons": reasons
                .iter()
                .map(|(t, lvl, spec)| json!({
                    "transaction": t.to_string(),
                    "rejected_level": lvl.to_string(),
                    "counterexample": output::spec_json(&txns, spec),
                }))
                .collect::<Vec<_>>(),
        });
        println!("{}", serde_json::to_string_pretty(&j).expect("valid json"));
    } else {
        match &alloc {
            None => println!(
                "NOT ALLOCATABLE: no robust {{RC, SI}} allocation exists \
                 (the workload is not robust against all-SI; SSI is required)"
            ),
            Some(a) => {
                let (rc, si, ssi) = a.counts();
                println!("optimal allocation: {a}");
                println!("  RC: {rc}  SI: {si}  SSI: {ssi}");
                for (t, lvl, spec) in &reasons {
                    println!(
                        "  {t} cannot run at {lvl}: {}",
                        output::spec_text(&txns, spec).replace('\n', "\n  ")
                    );
                }
            }
        }
    }
    Ok(if alloc.is_some() { ExitCode::SUCCESS } else { ExitCode::from(1) })
}
