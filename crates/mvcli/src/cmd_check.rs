//! `mvrobust check`: decide robustness against an allocation.

use crate::args::Parsed;
use crate::output;
use mvrobustness::RobustnessChecker;
use serde_json::json;
use std::process::ExitCode;

pub fn run(argv: &[String]) -> Result<ExitCode, String> {
    let parsed = Parsed::parse(argv)?;
    let txns = parsed.load_workload()?;
    let alloc = parsed.allocation(&txns)?;
    let checker = RobustnessChecker::new(&txns)
        .with_threads(parsed.threads()?)
        .with_components(parsed.components());
    let report = checker.is_robust(&alloc);
    let comps = checker.components();
    if parsed.flag("json") {
        let j = json!({
            "robust": report.robust(),
            "allocation": alloc.to_string(),
            "transactions": txns.len(),
            "components": comps.count(),
            "largest_component": comps.largest(),
            "engine_stats": json!({
                "probes": checker.stats().probes(),
                "iso_builds": checker.stats().iso_builds(),
                "components_checked": checker.stats().components_checked(),
                "kernel_row_ops": checker.stats().kernel_row_ops(),
                "with_components": parsed.components(),
            }),
            "counterexample": report
                .counterexample()
                .map(|spec| output::spec_json(&txns, spec)),
        });
        println!("{}", serde_json::to_string_pretty(&j).expect("valid json"));
    } else {
        match report.counterexample() {
            None => println!("ROBUST: every schedule allowed under {{{alloc}}} is serializable"),
            Some(spec) => {
                println!("NOT ROBUST under {{{alloc}}}");
                println!("{}", output::spec_text(&txns, spec));
            }
        }
        println!(
            "conflict components: {} (largest {})",
            comps.count(),
            comps.largest()
        );
    }
    Ok(if report.robust() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}
