//! Minimal argument parsing shared by all subcommands (no external
//! dependency).

use mvisolation::{Allocation, IsolationLevel};
use mvmodel::{parse_transactions, TransactionSet};
use std::collections::HashMap;
use std::io::Read;

/// Parsed command line: positional arguments plus `--key value` /
/// `--flag` options.
#[derive(Debug, Default)]
pub struct Parsed {
    pub positional: Vec<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// Options that take a value; everything else starting with `--` is a
/// boolean flag.
const VALUED: &[&str] = &[
    "addr",
    "alloc",
    "backoff-ms",
    "batch-delay-us",
    "batch-max",
    "codec",
    "core",
    "data-dir",
    "durability",
    "fault-plan",
    "level",
    "levels",
    "concurrency",
    "realloc-timeout-ms",
    "retries",
    "seed",
    "repeat",
    "snapshot-every",
    "ssi-mode",
    "tenant",
    "threads",
];

impl Parsed {
    pub fn parse(argv: &[String]) -> Result<Parsed, String> {
        let mut out = Parsed::default();
        let mut it = argv.iter().peekable();
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let (name, inline) = match name.split_once('=') {
                    Some((n, v)) => (n, Some(v.to_string())),
                    None => (name, None),
                };
                if VALUED.contains(&name) {
                    let value = match inline {
                        Some(v) => v,
                        None => it
                            .next()
                            .ok_or_else(|| format!("--{name} requires a value"))?
                            .clone(),
                    };
                    out.options.insert(name.to_string(), value);
                } else if inline.is_some() {
                    return Err(format!("--{name} does not take a value"));
                } else {
                    out.flags.push(name.to_string());
                }
            } else {
                out.positional.push(arg.clone());
            }
        }
        Ok(out)
    }

    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    pub fn option(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(|s| s.as_str())
    }

    pub fn option_parse<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String>
    where
        T::Err: std::fmt::Display,
    {
        self.option(name)
            .map(|v| v.parse::<T>().map_err(|e| format!("invalid --{name}: {e}")))
            .transpose()
    }

    /// `--threads N` (default 1): worker threads. For `allocate`/`check`
    /// this parallelizes the robustness engine's outer search (verdicts
    /// identical at any count); for `simulate`, N ≥ 2 additionally
    /// routes execution to the multi-core MVCC engine.
    pub fn threads(&self) -> Result<usize, String> {
        match self.option_parse::<usize>("threads")? {
            Some(0) => Err("--threads must be at least 1".into()),
            Some(n) => Ok(n),
            None => Ok(1),
        }
    }

    /// `--no-components`: disables the component-sharded engine and runs
    /// the monolithic search. Verdicts and optima are identical either
    /// way; the flag exists as an escape hatch and for A/B timing.
    pub fn components(&self) -> bool {
        !self.flag("no-components")
    }

    /// `--levels rc-si|rc-si-ssi` (default rc-si-ssi): the isolation
    /// menu for `allocate` and `serve`. Unknown spellings fail with the
    /// accepted ones listed.
    pub fn level_set(&self) -> Result<mvrobustness::LevelSet, String> {
        match self.option("levels") {
            None => Ok(mvrobustness::LevelSet::default()),
            Some(v) => v
                .parse::<mvrobustness::LevelSet>()
                .map_err(|e| format!("invalid --levels: {e}")),
        }
    }

    /// Loads the workload from the first positional argument (or stdin).
    pub fn load_workload(&self) -> Result<TransactionSet, String> {
        let text = match self.positional.first().map(|s| s.as_str()) {
            None | Some("-") => {
                let mut buf = String::new();
                std::io::stdin()
                    .read_to_string(&mut buf)
                    .map_err(|e| format!("reading stdin: {e}"))?;
                buf
            }
            Some(path) => {
                std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?
            }
        };
        let set = parse_transactions(&text).map_err(|e| e.to_string())?;
        if set.is_empty() {
            return Err("workload contains no transactions".to_string());
        }
        Ok(set)
    }

    /// Resolves `--alloc` / `--level` into a full allocation for `txns`.
    pub fn allocation(&self, txns: &TransactionSet) -> Result<Allocation, String> {
        match (self.option("alloc"), self.option("level")) {
            (Some(_), Some(_)) => Err("--alloc and --level are mutually exclusive".into()),
            (Some(spec), None) => {
                let a = Allocation::parse(spec).map_err(|e| e.to_string())?;
                if !a.covers(txns) {
                    let missing: Vec<String> = txns
                        .ids()
                        .filter(|&t| a.get(t).is_none())
                        .map(|t| t.to_string())
                        .collect();
                    return Err(format!(
                        "--alloc misses transactions: {}",
                        missing.join(", ")
                    ));
                }
                Ok(a)
            }
            (None, Some(level)) => {
                let l: IsolationLevel = level.parse().map_err(|e: _| format!("{e}"))?;
                Ok(Allocation::uniform(txns, l))
            }
            (None, None) => Err("one of --alloc or --level is required".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(args: &[&str]) -> Parsed {
        Parsed::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn parses_options_flags_positional() {
        let parsed = p(&["wl.txt", "--alloc", "T1=RC", "--json", "--seed=9"]);
        assert_eq!(parsed.positional, vec!["wl.txt"]);
        assert_eq!(parsed.option("alloc"), Some("T1=RC"));
        assert_eq!(parsed.option("seed"), Some("9"));
        assert!(parsed.flag("json"));
        assert!(!parsed.flag("explain"));
        assert_eq!(parsed.option_parse::<u64>("seed").unwrap(), Some(9));
    }

    #[test]
    fn rejects_missing_values_and_bad_flags() {
        let e = Parsed::parse(&["--alloc".to_string()]).unwrap_err();
        assert!(e.contains("requires a value"));
        let e = Parsed::parse(&["--json=1".to_string()]).unwrap_err();
        assert!(e.contains("does not take a value"));
    }

    #[test]
    fn allocation_resolution() {
        let txns = parse_transactions("T1: R[x]\nT2: W[x]").unwrap();
        let parsed = p(&["--level", "si"]);
        let a = parsed.allocation(&txns).unwrap();
        assert_eq!(a.level(mvmodel::TxnId(1)), IsolationLevel::SI);

        let parsed = p(&["--alloc", "T1=RC T2=SSI"]);
        let a = parsed.allocation(&txns).unwrap();
        assert_eq!(a.level(mvmodel::TxnId(2)), IsolationLevel::SSI);

        let parsed = p(&["--alloc", "T1=RC"]);
        assert!(parsed.allocation(&txns).unwrap_err().contains("misses"));

        let parsed = p(&["--alloc", "T1=RC", "--level", "si"]);
        assert!(parsed
            .allocation(&txns)
            .unwrap_err()
            .contains("mutually exclusive"));

        let parsed = p(&[]);
        assert!(parsed.allocation(&txns).unwrap_err().contains("required"));
    }

    #[test]
    fn bad_numeric_option() {
        let parsed = p(&["--seed", "banana"]);
        assert!(parsed.option_parse::<u64>("seed").is_err());
    }
}
