//! `mvrobust client`: talk to a running allocation daemon.
//!
//! ```text
//! mvrobust client register "T1: R[x] W[y]" [--addr HOST:PORT] [--json]
//! mvrobust client deregister T1 | assign T1 | stats | list | ping | shutdown
//! mvrobust client ... [--retries N] [--backoff-ms MS] [--seed N]
//! ```
//!
//! `--retries` / `--backoff-ms` switch to the reconnecting retry client:
//! transport failures are retried with exponential backoff and jittered
//! delays, and mutating verbs carry idempotent request ids so a replay
//! never double-applies. `--seed` pins the jitter for reproducibility.
//!
//! Exit code 0 = success, 1 = the server replied with a structured
//! error (e.g. unknown transaction, unallocatable workload), 2 = usage
//! or transport error.

use crate::args::Parsed;
use mvisolation::IsolationLevel;
use mvservice::{Client, ClientError, RetryClient, RetryPolicy};
use serde_json::Value;
use std::process::ExitCode;
use std::time::Duration;

/// Either a plain one-shot connection or the reconnecting retry client;
/// both speak the same verbs.
enum Conn {
    Plain(Client),
    Retry(RetryClient),
}

impl Conn {
    fn register(&mut self, line: &str) -> Result<Value, ClientError> {
        match self {
            Conn::Plain(c) => c.register(line),
            Conn::Retry(c) => c.register(line),
        }
    }
    fn deregister(&mut self, id: u32) -> Result<Value, ClientError> {
        match self {
            Conn::Plain(c) => c.deregister(id),
            Conn::Retry(c) => c.deregister(id),
        }
    }
    fn assign(&mut self, id: u32) -> Result<IsolationLevel, ClientError> {
        match self {
            Conn::Plain(c) => c.assign(id),
            Conn::Retry(c) => c.assign(id),
        }
    }
    fn stats(&mut self) -> Result<Value, ClientError> {
        match self {
            Conn::Plain(c) => c.stats(),
            Conn::Retry(c) => c.stats(),
        }
    }
    fn list(&mut self) -> Result<Value, ClientError> {
        match self {
            Conn::Plain(c) => c.list(),
            Conn::Retry(c) => c.list(),
        }
    }
    fn ping(&mut self) -> Result<(), ClientError> {
        match self {
            Conn::Plain(c) => c.ping(),
            Conn::Retry(c) => c.ping(),
        }
    }
    fn shutdown(&mut self) -> Result<(), ClientError> {
        match self {
            Conn::Plain(c) => c.shutdown(),
            Conn::Retry(c) => c.shutdown(),
        }
    }
}

pub fn run(argv: &[String]) -> Result<ExitCode, String> {
    let parsed = Parsed::parse(argv)?;
    let addr = parsed.option("addr").unwrap_or("127.0.0.1:7411");
    let json = parsed.flag("json");
    let mut args = parsed.positional.iter();
    let verb = args.next().ok_or(
        "client needs a subcommand: register, deregister, assign, stats, list, ping or shutdown",
    )?;
    let retries = parsed.option_parse::<u32>("retries")?;
    let backoff_ms = parsed.option_parse::<u64>("backoff-ms")?;
    let mut client = if retries.is_some() || backoff_ms.is_some() {
        let mut policy = RetryPolicy::default();
        if let Some(n) = retries {
            policy.retries = n;
        }
        if let Some(ms) = backoff_ms {
            policy.base = Duration::from_millis(ms);
        }
        if let Some(seed) = parsed.option_parse::<u64>("seed")? {
            policy.seed = seed;
        }
        Conn::Retry(RetryClient::new(addr, policy))
    } else {
        Conn::Plain(
            Client::connect(addr)
                .map_err(|e| format!("connecting to {addr}: {e} (is `mvrobust serve` running?)"))?,
        )
    };

    let result = match verb.as_str() {
        "register" => {
            let line = args
                .next()
                .ok_or("register needs a transaction line, e.g. `T1: R[x] W[y]`")?;
            client.register(line).map(|reply| {
                if json {
                    print_json(&reply);
                } else {
                    println!(
                        "registered T{} at {} ({} transactions)",
                        reply["txn_id"],
                        show(&reply["level"]),
                        reply["registry_size"]
                    );
                    print_changes(&reply["changed"]);
                }
            })
        }
        "deregister" => {
            let id = parse_txn_arg(args.next(), "deregister")?;
            client.deregister(id).map(|reply| {
                if json {
                    print_json(&reply);
                } else {
                    println!(
                        "deregistered T{id} ({} transactions)",
                        reply["registry_size"]
                    );
                    print_changes(&reply["changed"]);
                }
            })
        }
        "assign" => {
            let id = parse_txn_arg(args.next(), "assign")?;
            client.assign(id).map(|level| {
                if json {
                    print_json(&serde_json::json!({"txn_id": id, "level": level.as_str()}));
                } else {
                    println!("{level}");
                }
            })
        }
        "stats" => client.stats().map(|reply| {
            if json {
                print_json(&reply);
            } else {
                println!(
                    "registry: {} transactions (levels {})",
                    reply["registry_size"],
                    show(&reply["levels"])
                );
                println!(
                    "requests: {} total, {} errors (p50 {}µs, p99 {}µs)",
                    reply["total"],
                    reply["errors"],
                    reply["latency_us"]["p50"],
                    reply["latency_us"]["p99"]
                );
                if !reply["last_realloc"].is_null() {
                    let r = &reply["last_realloc"];
                    println!(
                        "last reallocation: {} probes, {} cache hits, {} cached specs, {}µs",
                        r["probes"], r["cache_hits"], r["cached_specs"], r["wall_us"]
                    );
                }
            }
        }),
        "list" => client.list().map(|reply| {
            if json {
                print_json(&reply);
            } else if let Some(txns) = reply["txns"].as_array() {
                for t in txns {
                    println!("{}  [{}]", show(&t["text"]), show(&t["level"]));
                }
            }
        }),
        "ping" => client.ping().map(|()| {
            if json {
                print_json(&serde_json::json!({"ok": true, "pong": true}));
            } else {
                println!("pong");
            }
        }),
        "shutdown" => client.shutdown().map(|()| {
            if json {
                print_json(&serde_json::json!({"ok": true, "shutting_down": true}));
            } else {
                println!("server shutting down");
            }
        }),
        other => {
            return Err(format!(
                "unknown client subcommand `{other}` (expected register, deregister, assign, stats, list, ping or shutdown)"
            ))
        }
    };

    match result {
        Ok(()) => Ok(ExitCode::SUCCESS),
        Err(ClientError::Server(msg)) => {
            eprintln!("server error: {msg}");
            Ok(ExitCode::from(1))
        }
        // Transport / protocol failure: one actionable line, exit 2.
        Err(e) => Err(format!(
            "talking to {addr}: {e} (is `mvrobust serve` running?)"
        )),
    }
}

/// Accepts `T7` or bare `7`.
fn parse_txn_arg(arg: Option<&String>, verb: &str) -> Result<u32, String> {
    let raw = arg.ok_or_else(|| format!("{verb} needs a transaction id (e.g. T7)"))?;
    let digits = raw
        .strip_prefix('T')
        .or_else(|| raw.strip_prefix('t'))
        .unwrap_or(raw);
    digits
        .parse::<u32>()
        .map_err(|_| format!("invalid transaction id `{raw}`"))
}

/// JSON strings unquoted for human-readable output; everything else as
/// its JSON rendering.
fn show(v: &Value) -> String {
    v.as_str()
        .map(str::to_string)
        .unwrap_or_else(|| v.to_string())
}

fn print_json(v: &Value) {
    println!(
        "{}",
        serde_json::to_string_pretty(v).expect("replies are encodable")
    );
}

/// Renders the `changed` array as `  T5: SI → SSI` lines.
fn print_changes(changed: &Value) {
    let Some(entries) = changed.as_array() else {
        return;
    };
    for c in entries {
        let before = c["before"].as_str().unwrap_or("∅");
        let after = c["after"].as_str().unwrap_or("∅");
        println!("  T{}: {before} → {after}", c["txn"]);
    }
}
