//! `mvrobust client`: talk to a running allocation daemon.
//!
//! ```text
//! mvrobust client register "T1: R[x] W[y]" [--addr HOST:PORT] [--json]
//! mvrobust client deregister T1 | assign T1 | stats | list | ping | shutdown
//! ```
//!
//! Exit code 0 = success, 1 = the server replied with a structured
//! error (e.g. unknown transaction, unallocatable workload), 2 = usage
//! or transport error.

use crate::args::Parsed;
use mvservice::{Client, ClientError};
use serde_json::Value;
use std::process::ExitCode;

pub fn run(argv: &[String]) -> Result<ExitCode, String> {
    let parsed = Parsed::parse(argv)?;
    let addr = parsed.option("addr").unwrap_or("127.0.0.1:7411");
    let json = parsed.flag("json");
    let mut args = parsed.positional.iter();
    let verb = args.next().ok_or(
        "client needs a subcommand: register, deregister, assign, stats, list, ping or shutdown",
    )?;
    let mut client = Client::connect(addr)
        .map_err(|e| format!("connecting to {addr}: {e} (is `mvrobust serve` running?)"))?;

    let result = match verb.as_str() {
        "register" => {
            let line = args
                .next()
                .ok_or("register needs a transaction line, e.g. `T1: R[x] W[y]`")?;
            client.register(line).map(|reply| {
                if json {
                    print_json(&reply);
                } else {
                    println!(
                        "registered T{} at {} ({} transactions)",
                        reply["txn_id"],
                        show(&reply["level"]),
                        reply["registry_size"]
                    );
                    print_changes(&reply["changed"]);
                }
            })
        }
        "deregister" => {
            let id = parse_txn_arg(args.next(), "deregister")?;
            client.deregister(id).map(|reply| {
                if json {
                    print_json(&reply);
                } else {
                    println!(
                        "deregistered T{id} ({} transactions)",
                        reply["registry_size"]
                    );
                    print_changes(&reply["changed"]);
                }
            })
        }
        "assign" => {
            let id = parse_txn_arg(args.next(), "assign")?;
            client.assign(id).map(|level| {
                if json {
                    print_json(&serde_json::json!({"txn_id": id, "level": level.as_str()}));
                } else {
                    println!("{level}");
                }
            })
        }
        "stats" => client.stats().map(|reply| {
            if json {
                print_json(&reply);
            } else {
                println!(
                    "registry: {} transactions (levels {})",
                    reply["registry_size"],
                    show(&reply["levels"])
                );
                println!(
                    "requests: {} total, {} errors (p50 {}µs, p99 {}µs)",
                    reply["total"],
                    reply["errors"],
                    reply["latency_us"]["p50"],
                    reply["latency_us"]["p99"]
                );
                if !reply["last_realloc"].is_null() {
                    let r = &reply["last_realloc"];
                    println!(
                        "last reallocation: {} probes, {} cache hits, {} cached specs, {}µs",
                        r["probes"], r["cache_hits"], r["cached_specs"], r["wall_us"]
                    );
                }
            }
        }),
        "list" => client.list().map(|reply| {
            if json {
                print_json(&reply);
            } else if let Some(txns) = reply["txns"].as_array() {
                for t in txns {
                    println!("{}  [{}]", show(&t["text"]), show(&t["level"]));
                }
            }
        }),
        "ping" => client.ping().map(|()| {
            if json {
                print_json(&serde_json::json!({"ok": true, "pong": true}));
            } else {
                println!("pong");
            }
        }),
        "shutdown" => client.shutdown().map(|()| {
            if json {
                print_json(&serde_json::json!({"ok": true, "shutting_down": true}));
            } else {
                println!("server shutting down");
            }
        }),
        other => {
            return Err(format!(
                "unknown client subcommand `{other}` (expected register, deregister, assign, stats, list, ping or shutdown)"
            ))
        }
    };

    match result {
        Ok(()) => Ok(ExitCode::SUCCESS),
        Err(ClientError::Server(msg)) => {
            eprintln!("server error: {msg}");
            Ok(ExitCode::from(1))
        }
        Err(e) => Err(e.to_string()),
    }
}

/// Accepts `T7` or bare `7`.
fn parse_txn_arg(arg: Option<&String>, verb: &str) -> Result<u32, String> {
    let raw = arg.ok_or_else(|| format!("{verb} needs a transaction id (e.g. T7)"))?;
    let digits = raw
        .strip_prefix('T')
        .or_else(|| raw.strip_prefix('t'))
        .unwrap_or(raw);
    digits
        .parse::<u32>()
        .map_err(|_| format!("invalid transaction id `{raw}`"))
}

/// JSON strings unquoted for human-readable output; everything else as
/// its JSON rendering.
fn show(v: &Value) -> String {
    v.as_str()
        .map(str::to_string)
        .unwrap_or_else(|| v.to_string())
}

fn print_json(v: &Value) {
    println!(
        "{}",
        serde_json::to_string_pretty(v).expect("replies are encodable")
    );
}

/// Renders the `changed` array as `  T5: SI → SSI` lines.
fn print_changes(changed: &Value) {
    let Some(entries) = changed.as_array() else {
        return;
    };
    for c in entries {
        let before = c["before"].as_str().unwrap_or("∅");
        let after = c["after"].as_str().unwrap_or("∅");
        println!("  T{}: {before} → {after}", c["txn"]);
    }
}
