//! `mvrobust client`: talk to a running allocation daemon.
//!
//! ```text
//! mvrobust client register "T1: R[x] W[y]" [--addr HOST:PORT] [--json]
//! mvrobust client deregister T1 | assign T1 | stats | list | ping | shutdown
//! mvrobust client template register "Balance: R[sav:$0] R[chk:$0]"
//! mvrobust client template list
//! mvrobust client instantiate 0 7         # admit one instance, O(1)
//! mvrobust client batch [LINE ...]        # or one line per stdin line
//! mvrobust client ... [--retries N] [--backoff-ms MS] [--seed N]
//! mvrobust client ... [--codec line|binary] [--tenant NAME]
//! ```
//!
//! `--tenant` routes every request to that namespace on a multi-tenant
//! server (default `default`, which stays off the wire entirely).
//!
//! `--codec binary` speaks length-prefixed binary frames instead of
//! newline-delimited JSON; the server sniffs the framing per
//! connection, so no server-side flag is needed. Replies are
//! semantically identical under either codec.
//!
//! `--retries` / `--backoff-ms` switch to the reconnecting retry client:
//! transport failures are retried with exponential backoff and jittered
//! delays, and mutating verbs carry idempotent request ids so a replay
//! never double-applies. Request ids derive from a per-invocation
//! entropy seed so separate invocations never collide in the server's
//! replay cache; `--seed` pins both the ids and the jitter for
//! reproducibility.
//!
//! `batch` pipelines many registrations down one connection in a single
//! flush (transaction lines as positional arguments, or — with none —
//! one per stdin line; blank lines and `#` comments are skipped).
//! Replies are matched by idempotency key, so it composes with a
//! server running group-commit coalescing (`serve --batch-max`).
//!
//! Exit code 0 = success, 1 = the server replied with a structured
//! error (e.g. unknown transaction, unallocatable workload), 2 = usage
//! or transport error.

use crate::args::Parsed;
use mvisolation::IsolationLevel;
use mvservice::{BatchOp, Client, ClientError, CodecKind, RetryClient, RetryPolicy};
use serde_json::Value;
use std::io::BufRead;
use std::process::ExitCode;
use std::time::Duration;

/// Either a plain one-shot connection or the reconnecting retry client;
/// both speak the same verbs.
enum Conn {
    Plain(Client),
    Retry(RetryClient),
}

impl Conn {
    fn register(&mut self, line: &str) -> Result<Value, ClientError> {
        match self {
            Conn::Plain(c) => c.register(line),
            Conn::Retry(c) => c.register(line),
        }
    }
    fn deregister(&mut self, id: u32) -> Result<Value, ClientError> {
        match self {
            Conn::Plain(c) => c.deregister(id),
            Conn::Retry(c) => c.deregister(id),
        }
    }
    fn assign(&mut self, id: u32) -> Result<IsolationLevel, ClientError> {
        match self {
            Conn::Plain(c) => c.assign(id),
            Conn::Retry(c) => c.assign(id),
        }
    }
    fn stats(&mut self) -> Result<Value, ClientError> {
        match self {
            Conn::Plain(c) => c.stats(),
            Conn::Retry(c) => c.stats(),
        }
    }
    fn list(&mut self) -> Result<Value, ClientError> {
        match self {
            Conn::Plain(c) => c.list(),
            Conn::Retry(c) => c.list(),
        }
    }
    fn template_register(&mut self, template: &str) -> Result<Value, ClientError> {
        match self {
            Conn::Plain(c) => c.template_register(template),
            Conn::Retry(c) => c.template_register(template),
        }
    }
    fn instantiate(&mut self, template_id: u64, params: &[u32]) -> Result<Value, ClientError> {
        match self {
            Conn::Plain(c) => c.instantiate(template_id, params),
            Conn::Retry(c) => c.instantiate(template_id, params),
        }
    }
    fn template_list(&mut self) -> Result<Value, ClientError> {
        match self {
            Conn::Plain(c) => c.template_list(),
            Conn::Retry(c) => c.template_list(),
        }
    }
    fn ping(&mut self) -> Result<(), ClientError> {
        match self {
            Conn::Plain(c) => c.ping(),
            Conn::Retry(c) => c.ping(),
        }
    }
    fn shutdown(&mut self) -> Result<(), ClientError> {
        match self {
            Conn::Plain(c) => c.shutdown(),
            Conn::Retry(c) => c.shutdown(),
        }
    }
}

pub fn run(argv: &[String]) -> Result<ExitCode, String> {
    let parsed = Parsed::parse(argv)?;
    let addr = parsed.option("addr").unwrap_or("127.0.0.1:7411");
    let json = parsed.flag("json");
    let mut args = parsed.positional.iter();
    let verb = args.next().ok_or(
        "client needs a subcommand: register, deregister, assign, template, instantiate, batch, stats, list, ping or shutdown",
    )?;
    let retries = parsed.option_parse::<u32>("retries")?;
    let backoff_ms = parsed.option_parse::<u64>("backoff-ms")?;
    let codec = parsed
        .option("codec")
        .map(|s| s.parse::<CodecKind>())
        .transpose()
        .map_err(|e| format!("invalid --codec: {e}"))?
        .unwrap_or(CodecKind::Line);
    // Idempotency keys derive from the policy seed, so two invocations
    // sharing a seed would collide in the server's replay cache and be
    // answered with each other's cached replies. Default to
    // per-invocation entropy; `--seed` opts back into reproducibility.
    let policy = RetryPolicy {
        seed: parsed
            .option_parse::<u64>("seed")?
            .unwrap_or_else(invocation_seed),
        retries: retries.unwrap_or(RetryPolicy::default().retries),
        base: backoff_ms
            .map(Duration::from_millis)
            .unwrap_or(RetryPolicy::default().base),
        ..RetryPolicy::default()
    };
    let tenant = parsed.option("tenant");
    let mut client = if retries.is_some() || backoff_ms.is_some() {
        let mut c = RetryClient::with_codec(addr, policy, codec);
        if let Some(t) = tenant {
            c = c.with_tenant(t);
        }
        Conn::Retry(c)
    } else {
        let mut c = Client::connect_with(addr, codec)
            .map_err(|e| format!("connecting to {addr}: {e} (is `mvrobust serve` running?)"))?;
        if let Some(t) = tenant {
            c = c.with_tenant(t);
        }
        Conn::Plain(c)
    };

    let result = match verb.as_str() {
        "register" => {
            let line = args
                .next()
                .ok_or("register needs a transaction line, e.g. `T1: R[x] W[y]`")?;
            client.register(line).map(|reply| {
                if json {
                    print_json(&reply);
                } else {
                    println!(
                        "registered T{} at {} ({} transactions)",
                        reply["txn_id"],
                        show(&reply["level"]),
                        reply["registry_size"]
                    );
                    print_changes(&reply["changed"]);
                }
            })
        }
        "deregister" => {
            let id = parse_txn_arg(args.next(), "deregister")?;
            client.deregister(id).map(|reply| {
                if json {
                    print_json(&reply);
                } else {
                    println!(
                        "deregistered T{id} ({} transactions)",
                        reply["registry_size"]
                    );
                    print_changes(&reply["changed"]);
                }
            })
        }
        "assign" => {
            let id = parse_txn_arg(args.next(), "assign")?;
            client.assign(id).map(|level| {
                if json {
                    print_json(&serde_json::json!({"txn_id": id, "level": level.as_str()}));
                } else {
                    println!("{level}");
                }
            })
        }
        "stats" => client.stats().map(|reply| {
            if json {
                print_json(&reply);
            } else {
                println!(
                    "registry: {} transactions (levels {})",
                    reply["registry_size"],
                    show(&reply["levels"])
                );
                println!(
                    "requests: {} total, {} errors (p50 {}µs, p99 {}µs)",
                    reply["total"],
                    reply["errors"],
                    reply["latency_us"]["p50"],
                    reply["latency_us"]["p99"]
                );
                if !reply["last_realloc"].is_null() {
                    let r = &reply["last_realloc"];
                    println!(
                        "last reallocation: {} probes, {} cache hits, {} cached specs, {}µs",
                        r["probes"], r["cache_hits"], r["cached_specs"], r["wall_us"]
                    );
                }
            }
        }),
        "list" => client.list().map(|reply| {
            if json {
                print_json(&reply);
            } else if let Some(txns) = reply["txns"].as_array() {
                for t in txns {
                    println!("{}  [{}]", show(&t["text"]), show(&t["level"]));
                }
            }
        }),
        "batch" => {
            let mut ops: Vec<BatchOp> = args.map(|l| BatchOp::Register(l.clone())).collect();
            if ops.is_empty() {
                for line in std::io::stdin().lock().lines() {
                    let line = line.map_err(|e| format!("reading stdin: {e}"))?;
                    let line = line.trim();
                    if line.is_empty() || line.starts_with('#') {
                        continue;
                    }
                    ops.push(BatchOp::Register(line.to_string()));
                }
            }
            if ops.is_empty() {
                return Err("batch needs transaction lines (arguments or stdin)".to_string());
            }
            // Pipelining needs idempotency keys to match replies, so
            // the batch verb always runs through the retry client.
            let replies = match &mut client {
                Conn::Retry(c) => c.send_batch(&ops),
                Conn::Plain(_) => {
                    let mut c = RetryClient::with_codec(addr, policy, codec);
                    if let Some(t) = tenant {
                        c = c.with_tenant(t);
                    }
                    c.send_batch(&ops)
                }
            };
            replies.map(|replies| {
                if json {
                    print_json(&Value::Array(replies));
                } else {
                    let accepted = replies.iter().filter(|r| r["ok"] == true).count();
                    println!("batch: {accepted}/{} registered", replies.len());
                    for r in replies.iter().filter(|r| r["ok"] != true) {
                        println!("  rejected: {}", show(&r["error"]));
                    }
                    if let Some(last) = replies.iter().rev().find(|r| r["ok"] == true) {
                        println!("  registry now {} transactions", last["registry_size"]);
                    }
                }
            })
        }
        "template" => {
            let sub = args
                .next()
                .ok_or("template needs a subcommand: register or list")?;
            match sub.as_str() {
                "register" => {
                    let line = args.next().ok_or(
                        "template register needs a template line, e.g. `Balance: R[sav:$0] R[chk:$0]`",
                    )?;
                    client.template_register(line).map(|reply| {
                        if json {
                            print_json(&reply);
                        } else {
                            println!(
                                "template {} registered at {} ({} templates)",
                                reply["template_id"],
                                show(&reply["level"]),
                                reply["templates"]
                            );
                            if let Some(changed) = reply["changed"].as_array() {
                                for c in changed {
                                    println!(
                                        "  template {}: {} → {}",
                                        c["template"],
                                        show(&c["before"]),
                                        show(&c["after"])
                                    );
                                }
                            }
                        }
                    })
                }
                "list" => client.template_list().map(|reply| {
                    if json {
                        print_json(&reply);
                    } else if let Some(templates) = reply["templates"].as_array() {
                        for t in templates {
                            println!(
                                "{}  [{}]  {} instances",
                                show(&t["text"]),
                                show(&t["level"]),
                                t["instances"]
                            );
                        }
                    }
                }),
                other => {
                    return Err(format!(
                        "unknown template subcommand `{other}` (expected register or list)"
                    ))
                }
            }
        }
        "instantiate" => {
            let id = args
                .next()
                .ok_or("instantiate needs a template id (from `template list`)")?
                .parse::<u64>()
                .map_err(|_| "invalid template id".to_string())?;
            let params = args
                .map(|p| {
                    p.parse::<u32>()
                        .map_err(|_| format!("invalid template parameter `{p}`"))
                })
                .collect::<Result<Vec<u32>, String>>()?;
            client.instantiate(id, &params).map(|reply| {
                if json {
                    print_json(&reply);
                } else {
                    println!(
                        "admitted at {} (instance {} of template {})",
                        show(&reply["level"]),
                        reply["instances"],
                        reply["template_id"]
                    );
                }
            })
        }
        "ping" => client.ping().map(|()| {
            if json {
                print_json(&serde_json::json!({"ok": true, "pong": true}));
            } else {
                println!("pong");
            }
        }),
        "shutdown" => client.shutdown().map(|()| {
            if json {
                print_json(&serde_json::json!({"ok": true, "shutting_down": true}));
            } else {
                println!("server shutting down");
            }
        }),
        other => {
            return Err(format!(
                "unknown client subcommand `{other}` (expected register, deregister, assign, template, instantiate, batch, stats, list, ping or shutdown)"
            ))
        }
    };

    match result {
        Ok(()) => Ok(ExitCode::SUCCESS),
        Err(ClientError::Server(msg)) => {
            eprintln!("server error: {msg}");
            Ok(ExitCode::from(1))
        }
        // Transport / protocol failure: one actionable line, exit 2.
        Err(e) => Err(format!(
            "talking to {addr}: {e} (is `mvrobust serve` running?)"
        )),
    }
}

/// A per-invocation seed: wall-clock nanos mixed with the process id,
/// so concurrent and back-to-back invocations draw disjoint idempotency
/// keys. Not cryptographic — it only needs to avoid collisions.
fn invocation_seed() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    nanos ^ ((std::process::id() as u64) << 32) ^ 0x9E37_79B9_7F4A_7C15
}

/// Accepts `T7` or bare `7`.
fn parse_txn_arg(arg: Option<&String>, verb: &str) -> Result<u32, String> {
    let raw = arg.ok_or_else(|| format!("{verb} needs a transaction id (e.g. T7)"))?;
    let digits = raw
        .strip_prefix('T')
        .or_else(|| raw.strip_prefix('t'))
        .unwrap_or(raw);
    digits
        .parse::<u32>()
        .map_err(|_| format!("invalid transaction id `{raw}`"))
}

/// JSON strings unquoted for human-readable output; everything else as
/// its JSON rendering.
fn show(v: &Value) -> String {
    v.as_str()
        .map(str::to_string)
        .unwrap_or_else(|| v.to_string())
}

fn print_json(v: &Value) {
    println!(
        "{}",
        serde_json::to_string_pretty(v).expect("replies are encodable")
    );
}

/// Renders the `changed` array as `  T5: SI → SSI` lines.
fn print_changes(changed: &Value) {
    let Some(entries) = changed.as_array() else {
        return;
    };
    for c in entries {
        let before = c["before"].as_str().unwrap_or("∅");
        let after = c["after"].as_str().unwrap_or("∅");
        println!("  T{}: {before} → {after}", c["txn"]);
    }
}
