//! `mvrobust` — command-line robustness checker, allocator and simulator
//! for multiversion transaction workloads.
//!
//! ```text
//! mvrobust check    [FILE] (--alloc "T1=RC T2=SI" | --level SI) [--json]
//! mvrobust allocate [FILE] [--levels rc-si|rc-si-ssi] [--explain] [--json]
//! mvrobust witness  [FILE] (--alloc … | --level …) [--json]
//! mvrobust simulate [FILE] [--alloc … | --level … | --optimal | --allocate [--levels …]]
//!                   [--concurrency N] [--seed N] [--repeat K]
//!                   [--ssi-mode exact|conservative] [--json]
//! mvrobust serve    [--addr HOST:PORT] [--levels rc-si|rc-si-ssi] [--threads N]
//!                   [--realloc-timeout-ms N] [--fault-plan SPEC]
//! mvrobust client   <register|deregister|assign|template|instantiate|stats|list|ping|shutdown> [ARG]
//!                   [--addr HOST:PORT] [--retries N] [--backoff-ms MS] [--json]
//! ```
//!
//! `FILE` contains one transaction per line (`T1: R[x] W[y]`); `-` or no
//! file reads stdin. Exit code 0 = robust / allocation found, 1 = not,
//! 2 = usage or input error.

use std::process::ExitCode;

mod args;
mod cmd_allocate;
mod cmd_analyze;
mod cmd_check;
mod cmd_client;
mod cmd_serve;
mod cmd_simulate;
mod cmd_witness;
mod output;

/// Restore the default SIGPIPE disposition so piping into `head` ends
/// the process quietly. Declared inline (no libc crate): `signal(2)` is
/// part of the platform C ABI on every unix target we build for.
#[cfg(unix)]
fn reset_sigpipe() {
    const SIGPIPE: i32 = 13;
    const SIG_DFL: usize = 0;
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    unsafe {
        signal(SIGPIPE, SIG_DFL);
    }
}

fn main() -> ExitCode {
    // Die quietly on SIGPIPE (e.g. `mvrobust witness ... | head`) instead
    // of panicking on a broken stdout.
    #[cfg(unix)]
    reset_sigpipe();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(argv: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = argv.first() else {
        print_usage();
        return Ok(ExitCode::from(2));
    };
    let rest = &argv[1..];
    match cmd.as_str() {
        "check" => cmd_check::run(rest),
        "allocate" => cmd_allocate::run(rest),
        "analyze" => cmd_analyze::run(rest),
        "witness" => cmd_witness::run(rest),
        "simulate" => cmd_simulate::run(rest),
        "serve" => cmd_serve::run(rest),
        "client" => cmd_client::run(rest),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}` (try `mvrobust help`)")),
    }
}

fn print_usage() {
    eprintln!(
        "mvrobust — robustness checking and isolation-level allocation for \
         multiversion transaction workloads\n\
         (after Vandevoort, Ketsman & Neven, PODS 2023)\n\n\
         USAGE:\n  \
         mvrobust check    [FILE] (--alloc \"T1=RC T2=SI\" | --level SI) [--json]\n  \
         mvrobust allocate [FILE] [--levels rc-si|rc-si-ssi] [--explain] [--json]\n  \
         mvrobust analyze  [FILE] [--json]\n  \
         mvrobust witness  [FILE] (--alloc ... | --level ...) [--json]\n  \
         mvrobust simulate [FILE] [--alloc ... | --level ... | --optimal | --allocate [--levels ...]]\n            \
         [--concurrency N] [--seed N] [--repeat K] [--ssi-mode exact|conservative] [--json]\n            \
         (--allocate validates every committed trace against the optimal allocation; exit 1 on violation)\n  \
         mvrobust serve    [--addr HOST:PORT] [--levels rc-si|rc-si-ssi] [--threads N]\n            \
         [--realloc-timeout-ms N] [--fault-plan SPEC]\n  \
         mvrobust client   <register \"T1: R[x]\" | deregister T1 | assign T1 | stats | list |\n            \
         template register \"B: R[sav:$0]\" | template list | instantiate ID [P ...] |\n            \
         ping | shutdown> [--addr HOST:PORT] [--retries N] [--backoff-ms MS] [--json]\n\n\
         FILE holds one transaction per line, e.g. `T1: R[x] W[y]`; `-` reads stdin."
    );
}
