//! `mvrobust serve`: run the online allocation daemon.
//!
//! ```text
//! mvrobust serve [--addr HOST:PORT] [--levels rc-si|rc-si-ssi] [--threads N]
//!                [--realloc-timeout-ms N] [--fault-plan SPEC]
//!                [--batch-max N] [--batch-delay-us N]
//! ```
//!
//! `--realloc-timeout-ms` caps each incremental reallocation; on expiry
//! the mutation is rolled back and the last-known-good allocation keeps
//! being served (degraded mode). `--fault-plan` installs a seeded
//! chaos-testing schedule, e.g.
//! `seed=42,drop=0.1,truncate=0.05,slow=0.1,delay_ms=10,budget=40` —
//! never use it in production. `--batch-max` enables group-commit
//! coalescing: up to N concurrent mutations are applied as one engine
//! batch (default 1 = off); `--batch-delay-us` is how long a drain
//! lingers for companions (default 100).
//!
//! Prints `listening on <addr>` once the socket is bound (with the
//! ephemeral port resolved, so `--addr 127.0.0.1:0` is scriptable),
//! then serves until a client sends `shutdown` or the process receives
//! `SIGINT`/`SIGTERM`.

use crate::args::Parsed;
use mvservice::{install_signal_handlers, Config, FaultPlan, Server};
use std::process::ExitCode;
use std::time::Duration;

pub fn run(argv: &[String]) -> Result<ExitCode, String> {
    let parsed = Parsed::parse(argv)?;
    if let Some(extra) = parsed.positional.first() {
        return Err(format!(
            "serve takes no positional argument (got `{extra}`)"
        ));
    }
    let faults = parsed
        .option("fault-plan")
        .map(|spec| spec.parse::<FaultPlan>())
        .transpose()
        .map_err(|e| format!("invalid --fault-plan: {e}"))?;
    let mut config = Config {
        addr: parsed
            .option("addr")
            .unwrap_or("127.0.0.1:7411")
            .to_string(),
        levels: parsed.level_set()?,
        threads: parsed.threads()?,
        realloc_timeout: parsed
            .option_parse::<u64>("realloc-timeout-ms")?
            .map(Duration::from_millis),
        faults,
        components: parsed.components(),
        batch_max: parsed
            .option_parse::<usize>("batch-max")?
            .unwrap_or(1)
            .max(1),
        ..Config::default()
    };
    if let Some(us) = parsed.option_parse::<u64>("batch-delay-us")? {
        config.batch_delay = Duration::from_micros(us);
    }
    let levels = config.levels;
    let fault_note = config
        .faults
        .as_ref()
        .map(|p| format!(" [fault injection: {p}]"))
        .unwrap_or_default();
    let server = Server::bind(config).map_err(|e| format!("binding listener: {e}"))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    install_signal_handlers();
    // Stdout is line-buffered: this line is visible to a parent process
    // (or test harness) immediately, before the accept loop blocks.
    println!("listening on {addr} (levels {levels}){fault_note}");
    server.run().map_err(|e| format!("serving: {e}"))?;
    println!("shut down cleanly");
    Ok(ExitCode::SUCCESS)
}
