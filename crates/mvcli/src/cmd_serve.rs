//! `mvrobust serve`: run the online allocation daemon.
//!
//! ```text
//! mvrobust serve [--addr HOST:PORT] [--levels rc-si|rc-si-ssi] [--threads N]
//!                [--realloc-timeout-ms N] [--fault-plan SPEC]
//!                [--batch-max N] [--batch-delay-us N]
//!                [--codec auto|line|binary] [--core event|threaded]
//!                [--data-dir DIR] [--snapshot-every N]
//!                [--durability none|batch|event]
//! ```
//!
//! `--realloc-timeout-ms` caps each incremental reallocation; on expiry
//! the mutation is rolled back and the last-known-good allocation keeps
//! being served (degraded mode). `--fault-plan` installs a seeded
//! chaos-testing schedule, e.g.
//! `seed=42,drop=0.1,truncate=0.05,slow=0.1,delay_ms=10,budget=40` —
//! never use it in production. `--batch-max` enables group-commit
//! coalescing: up to N concurrent mutations are applied as one engine
//! batch (default 1 = off); `--batch-delay-us` is how long a drain
//! lingers for companions (default 100).
//!
//! `--codec` restricts which wire codecs connections may negotiate
//! (default `auto`: first-byte sniff per connection — `{` means
//! line-JSON, the 0xB1 magic means binary frames). `--core` selects the
//! socket core: the default `event` loop multiplexes every connection
//! on one readiness-polled thread; `threaded` is the blocking
//! thread-per-connection baseline kept for the scaling bench.
//!
//! `--data-dir` turns on durability: every applied mutation is written
//! to a write-ahead event log in DIR before its reply ships, a snapshot
//! is cut every `--snapshot-every` applied events (default 1024,
//! 0 = never), and on startup the server recovers its exact pre-crash
//! state — all tenants, allocations, and the idempotency replay cache —
//! from the latest valid snapshot plus the log tail. `--durability`
//! picks the fsync policy: `batch` (default) syncs once per group-commit
//! drain, `event` syncs every record, `none` leaves flushing to the OS.
//!
//! Prints `listening on <addr>` once the socket is bound (with the
//! ephemeral port resolved, so `--addr 127.0.0.1:0` is scriptable),
//! then serves until a client sends `shutdown` or the process receives
//! `SIGINT`/`SIGTERM`. The shutdown summary reports connection and
//! per-codec counters from the server's metrics.

use crate::args::Parsed;
use mvservice::{
    install_signal_handlers, CodecAccept, Config, CoreKind, Durability, FaultPlan, Server,
};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

pub fn run(argv: &[String]) -> Result<ExitCode, String> {
    let parsed = Parsed::parse(argv)?;
    if let Some(extra) = parsed.positional.first() {
        return Err(format!(
            "serve takes no positional argument (got `{extra}`)"
        ));
    }
    let faults = parsed
        .option("fault-plan")
        .map(|spec| spec.parse::<FaultPlan>())
        .transpose()
        .map_err(|e| format!("invalid --fault-plan: {e}"))?;
    let mut config = Config {
        addr: parsed
            .option("addr")
            .unwrap_or("127.0.0.1:7411")
            .to_string(),
        levels: parsed.level_set()?,
        threads: parsed.threads()?,
        realloc_timeout: parsed
            .option_parse::<u64>("realloc-timeout-ms")?
            .map(Duration::from_millis),
        faults,
        components: parsed.components(),
        batch_max: parsed
            .option_parse::<usize>("batch-max")?
            .unwrap_or(1)
            .max(1),
        codec: parsed
            .option("codec")
            .map(|s| s.parse::<CodecAccept>())
            .transpose()
            .map_err(|e| format!("invalid --codec: {e}"))?
            .unwrap_or_default(),
        core: parsed
            .option("core")
            .map(|s| s.parse::<CoreKind>())
            .transpose()
            .map_err(|e| format!("invalid --core: {e}"))?
            .unwrap_or_default(),
        data_dir: parsed.option("data-dir").map(PathBuf::from),
        durability: parsed
            .option("durability")
            .map(|s| s.parse::<Durability>())
            .transpose()
            .map_err(|e| format!("invalid --durability: {e}"))?
            .unwrap_or_default(),
        ..Config::default()
    };
    if let Some(n) = parsed.option_parse::<u64>("snapshot-every")? {
        config.snapshot_every = n;
    }
    if config.data_dir.is_none()
        && (parsed.option("snapshot-every").is_some() || parsed.option("durability").is_some())
    {
        return Err(
            "--snapshot-every / --durability need --data-dir (nothing is durable without one)"
                .to_string(),
        );
    }
    if let Some(us) = parsed.option_parse::<u64>("batch-delay-us")? {
        config.batch_delay = Duration::from_micros(us);
    }
    let levels = config.levels;
    let fault_note = config
        .faults
        .as_ref()
        .map(|p| format!(" [fault injection: {p}]"))
        .unwrap_or_default();
    let core = config.core;
    let codec = config.codec;
    let durable_note = config
        .data_dir
        .as_ref()
        .map(|d| format!(" [durable: {} fsync={}]", d.display(), config.durability))
        .unwrap_or_default();
    let server = Server::bind(config).map_err(|e| format!("binding listener: {e}"))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    let handle = server.handle();
    install_signal_handlers();
    // Stdout is line-buffered: this line is visible to a parent process
    // (or test harness) immediately, before the accept loop blocks. It
    // must stay the FIRST line printed — harnesses parse the address
    // out of it.
    println!(
        "listening on {addr} (levels {levels}, core {}, codec {}){durable_note}{fault_note}",
        core.as_str(),
        codec.as_str()
    );
    server.run().map_err(|e| format!("serving: {e}"))?;
    let m = handle.metrics_json();
    println!(
        "served {} connections ({} line, {} binary), {} requests, {} errors",
        m["connections"]["total"], m["codec_line"], m["codec_frame"], m["total"], m["errors"]
    );
    println!("shut down cleanly");
    Ok(ExitCode::SUCCESS)
}
