//! `mvrobust serve`: run the online allocation daemon.
//!
//! ```text
//! mvrobust serve [--addr HOST:PORT] [--levels rc-si|rc-si-ssi] [--threads N]
//! ```
//!
//! Prints `listening on <addr>` once the socket is bound (with the
//! ephemeral port resolved, so `--addr 127.0.0.1:0` is scriptable),
//! then serves until a client sends `shutdown` or the process receives
//! `SIGINT`/`SIGTERM`.

use crate::args::Parsed;
use mvservice::{install_signal_handlers, Config, Server};
use std::process::ExitCode;

pub fn run(argv: &[String]) -> Result<ExitCode, String> {
    let parsed = Parsed::parse(argv)?;
    if let Some(extra) = parsed.positional.first() {
        return Err(format!(
            "serve takes no positional argument (got `{extra}`)"
        ));
    }
    let config = Config {
        addr: parsed
            .option("addr")
            .unwrap_or("127.0.0.1:7411")
            .to_string(),
        levels: parsed.level_set()?,
        threads: parsed.threads()?,
        ..Config::default()
    };
    let levels = config.levels;
    let server = Server::bind(config).map_err(|e| format!("binding listener: {e}"))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    install_signal_handlers();
    // Stdout is line-buffered: this line is visible to a parent process
    // (or test harness) immediately, before the accept loop blocks.
    println!("listening on {addr} (levels {levels})");
    server.run().map_err(|e| format!("serving: {e}"))?;
    println!("shut down cleanly");
    Ok(ExitCode::SUCCESS)
}
