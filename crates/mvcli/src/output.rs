//! Shared rendering helpers (text and JSON).

use mvmodel::{Schedule, TransactionSet};
use mvrobustness::SplitSpec;
use serde_json::json;

/// JSON description of a split-schedule counterexample.
pub fn spec_json(txns: &TransactionSet, spec: &SplitSpec) -> serde_json::Value {
    json!({
        "split_transaction": spec.t1.to_string(),
        "b1": op_str(txns, spec.b1),
        "a1": op_str(txns, spec.a1),
        "chain": spec.chain.iter().map(|t| t.to_string()).collect::<Vec<_>>(),
        "links": spec
            .links
            .iter()
            .map(|(b, a)| json!([op_str(txns, *b), op_str(txns, *a)]))
            .collect::<Vec<_>>(),
    })
}

/// `R1[x]`-style rendering of an operation address.
pub fn op_str(txns: &TransactionSet, addr: mvmodel::OpAddr) -> String {
    let op = txns.op_at(addr);
    format!(
        "{}{}[{}]",
        op.kind.letter(),
        addr.txn.0,
        txns.object_name(op.object)
    )
}

/// Text rendering of a counterexample schedule with versions.
pub fn schedule_text(s: &Schedule) -> String {
    mvmodel::fmt::schedule_full(s)
}

/// Human-readable cycle description for a spec.
pub fn spec_text(txns: &TransactionSet, spec: &SplitSpec) -> String {
    let mut out = format!(
        "counterexample: split {} after {}\n  cycle: {}",
        spec.t1,
        op_str(txns, spec.b1),
        spec.t1
    );
    for (i, (b, a)) in spec.links.iter().enumerate() {
        let target = if i < spec.chain.len() {
            spec.chain[i]
        } else {
            spec.t1
        };
        out.push_str(&format!(
            "\n    --[{} conflicts {}]--> {}",
            op_str(txns, *b),
            op_str(txns, *a),
            target
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvisolation::Allocation;
    use mvmodel::parse_transactions;
    use mvrobustness::find_counterexample;

    #[test]
    fn renders_spec_both_ways() {
        let txns = parse_transactions("T1: R[x] W[y]\nT2: R[y] W[x]").unwrap();
        let si = Allocation::uniform_si(&txns);
        let spec = find_counterexample(&txns, &si).unwrap();
        let text = spec_text(&txns, &spec);
        assert!(text.contains("split T1"));
        assert!(text.contains("-->"));
        let j = spec_json(&txns, &spec);
        assert_eq!(j["split_transaction"], "T1");
        assert_eq!(j["chain"][0], "T2");
        assert!(j["links"].as_array().unwrap().len() >= 2);
    }
}
