//! End-to-end tests of the `mvrobust` binary.

use std::io::{BufRead, BufReader, Read, Write};
use std::process::{Child, Command, Stdio};

const SKEW: &str = "T1: R[x] W[y]\nT2: R[y] W[x]\n";
const DISJOINT: &str = "T1: R[x] W[x]\nT2: R[y] W[y]\n";

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mvrobust"))
}

fn run_with_stdin(args: &[&str], stdin: &str) -> (String, String, i32) {
    let mut child = bin()
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn mvrobust");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(stdin.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

#[test]
fn check_detects_write_skew() {
    let (stdout, _, code) = run_with_stdin(&["check", "--level", "si"], SKEW);
    assert_eq!(code, 1);
    assert!(stdout.contains("NOT ROBUST"));
    assert!(stdout.contains("split T1"));
}

#[test]
fn check_robust_exit_zero() {
    let (stdout, _, code) = run_with_stdin(&["check", "--level", "ssi"], SKEW);
    assert_eq!(code, 0);
    assert!(stdout.contains("ROBUST"));
}

#[test]
fn check_json_shape() {
    let (stdout, _, code) = run_with_stdin(&["check", "--level", "si", "--json"], SKEW);
    assert_eq!(code, 1);
    let j: serde_json::Value = serde_json::from_str(&stdout).expect("valid json");
    assert_eq!(j["robust"], false);
    assert_eq!(j["transactions"], 2);
    assert_eq!(j["counterexample"]["chain"][0], "T2");
}

#[test]
fn check_mixed_allocation() {
    let (stdout, _, code) = run_with_stdin(&["check", "--alloc", "T1=SSI T2=SSI"], SKEW);
    assert_eq!(code, 0, "{stdout}");
}

#[test]
fn allocate_finds_optimum() {
    let (stdout, _, code) = run_with_stdin(&["allocate"], DISJOINT);
    assert_eq!(code, 0);
    assert!(stdout.contains("T1=RC T2=RC"), "{stdout}");
}

#[test]
fn allocate_rc_si_not_allocatable_for_skew() {
    let (stdout, _, code) = run_with_stdin(&["allocate", "--levels", "rc-si"], SKEW);
    assert_eq!(code, 1);
    assert!(stdout.contains("NOT ALLOCATABLE"));
}

#[test]
fn allocate_explain_json() {
    let (stdout, _, code) = run_with_stdin(&["allocate", "--explain", "--json"], SKEW);
    assert_eq!(code, 0);
    let j: serde_json::Value = serde_json::from_str(&stdout).expect("valid json");
    assert_eq!(j["allocation"], "T1=SSI T2=SSI");
    assert_eq!(j["counts"]["SSI"], 2);
    assert!(!j["reasons"].as_array().unwrap().is_empty());
}

#[test]
fn allocate_json_reports_engine_stats() {
    let (stdout, _, code) = run_with_stdin(&["allocate", "--json"], SKEW);
    assert_eq!(code, 0);
    let j: serde_json::Value = serde_json::from_str(&stdout).expect("valid json");
    let stats = &j["engine_stats"];
    assert_eq!(stats["threads"], 1);
    assert!(stats["probes"].as_u64().unwrap() >= 1);
    // All four lowering attempts fail; the ones not probed hit the cache.
    assert!(stats["probes"].as_u64().unwrap() + stats["cache_hits"].as_u64().unwrap() >= 4);
    assert!(stats["cached_specs"].as_u64().unwrap() >= 1);
    assert!(stats["wall_ms"].as_f64().unwrap() >= 0.0);
}

#[test]
fn threads_flag_does_not_change_verdicts() {
    let (baseline, _, code) = run_with_stdin(&["allocate"], SKEW);
    assert_eq!(code, 0);
    let (threaded, _, code) = run_with_stdin(&["allocate", "--threads", "4"], SKEW);
    assert_eq!(code, 0);
    assert_eq!(baseline, threaded);
    let (_, stderr, code) = run_with_stdin(&["check", "--level", "si", "--threads", "0"], SKEW);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("--threads must be at least 1"));
}

#[test]
fn witness_prints_verified_schedule() {
    let (stdout, _, code) = run_with_stdin(&["witness", "--level", "si"], SKEW);
    assert_eq!(code, 1);
    assert!(stdout.contains("witness schedule"));
    assert!(stdout.contains("v(R1[x]) = op0"));
}

#[test]
fn witness_json_verified() {
    let (stdout, _, code) = run_with_stdin(&["witness", "--level", "si", "--json"], SKEW);
    assert_eq!(code, 1);
    let j: serde_json::Value = serde_json::from_str(&stdout).expect("valid json");
    assert_eq!(j["verified"], true);
    assert!(j["schedule"].as_str().unwrap().contains("C1"));
}

#[test]
fn simulate_optimal_runs() {
    let (stdout, _, code) = run_with_stdin(
        &[
            "simulate",
            "--optimal",
            "--repeat",
            "2",
            "--seed",
            "1",
            "--json",
        ],
        SKEW,
    );
    assert_eq!(code, 0);
    let j: serde_json::Value = serde_json::from_str(&stdout).expect("valid json");
    assert_eq!(j["serializable_runs"], 2);
    assert_eq!(j["allowed_runs"], 2);
}

#[test]
fn simulate_conservative_mode() {
    let (stdout, _, code) = run_with_stdin(
        &[
            "simulate",
            "--level",
            "ssi",
            "--ssi-mode",
            "conservative",
            "--json",
        ],
        SKEW,
    );
    assert_eq!(code, 0, "{stdout}");
}

#[test]
fn simulate_allocate_full_pipeline() {
    // --allocate: optimal allocation, execution, and per-run conformance
    // validation in one invocation.
    let (stdout, stderr, code) = run_with_stdin(
        &[
            "simulate",
            "--allocate",
            "--repeat",
            "3",
            "--seed",
            "2",
            "--json",
        ],
        SKEW,
    );
    assert_eq!(code, 0, "{stderr}");
    let j: serde_json::Value = serde_json::from_str(&stdout).expect("valid json");
    assert_eq!(j["allocated"], true);
    assert_eq!(j["allocation"], "T1=SSI T2=SSI");
    assert_eq!(j["serializable_runs"], 3);
    assert_eq!(j["allowed_runs"], 3);
    assert!(j["conformance_violations"].as_array().unwrap().is_empty());
    // Both write-skew partners sit at SSI, so the other levels are idle.
    assert!(j["per_level"]["SSI"]["commits"].as_u64().unwrap() >= 3);
    assert_eq!(j["per_level"]["RC"]["commits"], 0);
    assert_eq!(j["per_level"]["SI"]["commits"], 0);
}

#[test]
fn simulate_allocate_text_table_and_level_menu() {
    let (stdout, _, code) = run_with_stdin(&["simulate", "--allocate"], DISJOINT);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("allocation: T1=RC T2=RC"), "{stdout}");
    assert!(stdout.contains("level  commits"), "{stdout}");
    // Write skew has no robust {RC, SI} allocation: exit 1 with guidance.
    let (_, stderr, code) = run_with_stdin(&["simulate", "--allocate", "--levels", "rc-si"], SKEW);
    assert_eq!(code, 1);
    assert!(stderr.contains("no robust {RC, SI} allocation"), "{stderr}");
    // But the disjoint workload allocates fine over the reduced menu.
    let (stdout, _, code) =
        run_with_stdin(&["simulate", "--allocate", "--levels", "rc-si"], DISJOINT);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("T1=RC T2=RC"), "{stdout}");
}

#[test]
fn simulate_reports_wall_clock() {
    let (stdout, _, code) = run_with_stdin(&["simulate", "--optimal", "--json"], SKEW);
    assert_eq!(code, 0);
    let j: serde_json::Value = serde_json::from_str(&stdout).expect("valid json");
    assert_eq!(j["threads"], 1);
    assert!(j["elapsed_ms"].as_f64().unwrap() > 0.0);
    assert!(j["txns_per_sec"].as_f64().unwrap() > 0.0);
    let (stdout, _, code) = run_with_stdin(&["simulate", "--optimal"], SKEW);
    assert_eq!(code, 0);
    assert!(stdout.contains("txns/sec:"), "{stdout}");
}

#[test]
fn simulate_threads_routes_to_parallel_engine() {
    // --allocate --threads: allocation search and execution both run
    // multi-threaded; every run's trace still passes the conformance
    // contract (validated in-process, exit 0).
    let (stdout, stderr, code) = run_with_stdin(
        &[
            "simulate",
            "--allocate",
            "--threads",
            "4",
            "--repeat",
            "3",
            "--json",
        ],
        SKEW,
    );
    assert_eq!(code, 0, "{stderr}");
    let j: serde_json::Value = serde_json::from_str(&stdout).expect("valid json");
    assert_eq!(j["threads"], 4);
    assert_eq!(j["allocation"], "T1=SSI T2=SSI");
    assert_eq!(j["serializable_runs"], 3);
    assert_eq!(j["allowed_runs"], 3);
    assert!(j["conformance_violations"].as_array().unwrap().is_empty());
    // Unbounded retries commit every instance in every run.
    assert_eq!(j["commits"], 6);
    assert!(j["txns_per_sec"].as_f64().unwrap() > 0.0);

    let (_, stderr, code) = run_with_stdin(&["simulate", "--optimal", "--threads", "0"], SKEW);
    assert_eq!(code, 2);
    assert!(stderr.contains("--threads must be at least 1"));
}

#[test]
fn simulate_allocate_is_exclusive_with_manual_allocations() {
    for conflicting in [
        vec!["simulate", "--allocate", "--optimal"],
        vec!["simulate", "--allocate", "--level", "si"],
        vec!["simulate", "--allocate", "--alloc", "T1=RC T2=RC"],
    ] {
        let (_, stderr, code) = run_with_stdin(&conflicting, SKEW);
        assert_eq!(code, 2, "{conflicting:?}");
        assert!(stderr.contains("mutually exclusive"), "{stderr}");
    }
}

#[test]
fn usage_errors() {
    let (_, stderr, code) = run_with_stdin(&["frobnicate"], "");
    assert_eq!(code, 2);
    assert!(stderr.contains("unknown command"));
    let (_, stderr, code) = run_with_stdin(&["check"], SKEW);
    assert_eq!(code, 2);
    assert!(stderr.contains("required"));
    let (_, stderr, code) = run_with_stdin(&["check", "--level", "chaos"], SKEW);
    assert_eq!(code, 2);
    assert!(!stderr.is_empty());
    let (_, stderr, code) = run_with_stdin(&["check", "--level", "si"], "");
    assert_eq!(code, 2);
    assert!(stderr.contains("no transactions"));
}

#[test]
fn help_exits_zero() {
    let (_, stderr, code) = run_with_stdin(&["help"], "");
    assert_eq!(code, 0);
    assert!(stderr.contains("USAGE"));
}

#[test]
fn analyze_text_and_json() {
    let (stdout, _, code) = run_with_stdin(&["analyze"], SKEW);
    assert_eq!(code, 0);
    assert!(stdout.contains("vulnerable"));
    assert!(stdout.contains("no {RC, SI} allocation"));
    let (stdout, _, code) = run_with_stdin(&["analyze", "--json"], SKEW);
    assert_eq!(code, 0);
    let j: serde_json::Value = serde_json::from_str(&stdout).expect("valid json");
    assert_eq!(j["robust_si"], false);
    assert_eq!(j["static_sdg_certified"], false);
    assert_eq!(j["optimal_counts"]["SSI"], 2);
    assert_eq!(j["watch_list"].as_array().unwrap().len(), 2);
}

#[test]
fn analyze_disjoint_workload() {
    let (stdout, _, code) = run_with_stdin(&["analyze", "--json"], DISJOINT);
    assert_eq!(code, 0);
    let j: serde_json::Value = serde_json::from_str(&stdout).expect("valid json");
    assert_eq!(j["robust_rc"], true);
    assert_eq!(j["optimal_counts"]["RC"], 2);
    assert_eq!(j["optimal_rc_si"], "T1=RC T2=RC");
}

#[test]
fn allocate_rejects_unknown_level_set() {
    let (_, stderr, code) = run_with_stdin(&["allocate", "--levels", "rc-only"], SKEW);
    assert_eq!(code, 2);
    assert!(stderr.contains("unknown level set"), "{stderr}");
    assert!(stderr.contains("rc-si, rc-si-ssi"), "{stderr}");
    let (_, stderr, code) = run_with_stdin(&["serve", "--levels", "everything"], "");
    assert_eq!(code, 2);
    assert!(stderr.contains("rc-si, rc-si-ssi"), "{stderr}");
}

/// Spawns `mvrobust serve --addr 127.0.0.1:0` and reads the resolved
/// address from its first stdout line. The returned reader must stay
/// alive until the server exits — closing the pipe early would kill the
/// server with SIGPIPE on its shutdown message.
fn spawn_server(extra: &[&str]) -> (Child, String, BufReader<std::process::ChildStdout>, String) {
    let mut child = bin()
        .args(["serve", "--addr", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn mvrobust serve");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read listening line");
    let addr = line
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .split_whitespace()
        .next()
        .expect("address token")
        .to_string();
    (child, addr, reader, line)
}

fn client(addr: &str, args: &[&str]) -> (String, String, i32) {
    let mut full = vec!["client"];
    full.extend_from_slice(args);
    full.extend_from_slice(&["--addr", addr]);
    run_with_stdin(&full, "")
}

#[test]
fn serve_and_client_round_trip() {
    let (mut server, addr, mut server_out, _) = spawn_server(&[]);

    let (stdout, stderr, code) = client(&addr, &["ping"]);
    assert_eq!(code, 0, "{stderr}");
    assert!(stdout.contains("pong"));

    let (stdout, stderr, code) = client(&addr, &["register", "T1: R[x] W[y]"]);
    assert_eq!(code, 0, "{stderr}");
    assert!(stdout.contains("registered T1"), "{stdout}");
    let (_, _, code) = client(&addr, &["register", "T2: R[y] W[x]"]);
    assert_eq!(code, 0);

    // Write skew: both partners need SSI under the full menu.
    let (stdout, _, code) = client(&addr, &["assign", "T1"]);
    assert_eq!(code, 0);
    assert_eq!(stdout.trim(), "SSI");

    let (stdout, _, code) = client(&addr, &["stats", "--json"]);
    assert_eq!(code, 0);
    let j: serde_json::Value = serde_json::from_str(&stdout).expect("valid json");
    assert_eq!(j["registry_size"], 2);
    assert_eq!(j["levels"], "rc-si-ssi");

    // Structured server errors exit 1, not 2.
    let (_, stderr, code) = client(&addr, &["assign", "T9"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("server error"), "{stderr}");

    let (_, _, code) = client(&addr, &["shutdown"]);
    assert_eq!(code, 0);
    let status = server.wait().expect("server exit");
    assert_eq!(status.code(), Some(0));
    let mut rest = String::new();
    server_out.read_to_string(&mut rest).expect("drain stdout");
    assert!(rest.contains("shut down cleanly"), "{rest}");
}

#[test]
fn serve_and_client_template_fast_path() {
    let (mut server, addr, _server_out, _) = spawn_server(&[]);

    let (stdout, stderr, code) = client(
        &addr,
        &["template", "register", "Balance: R[sav:$0] R[chk:$0]"],
    );
    assert_eq!(code, 0, "{stderr}");
    assert!(stdout.contains("template 0 registered"), "{stdout}");

    // Fast-path admission: O(1), any u32 parameter.
    let (stdout, stderr, code) = client(&addr, &["instantiate", "0", "7"]);
    assert_eq!(code, 0, "{stderr}");
    assert!(stdout.contains("admitted at"), "{stdout}");
    let (stdout, _, code) = client(&addr, &["instantiate", "0", "4000000000", "--json"]);
    assert_eq!(code, 0);
    let j: serde_json::Value = serde_json::from_str(&stdout).expect("valid json");
    assert_eq!(j["instances"], 2);

    let (stdout, _, code) = client(&addr, &["template", "list"]);
    assert_eq!(code, 0);
    assert!(stdout.contains("Balance: R[sav:$0] R[chk:$0]"), "{stdout}");
    assert!(stdout.contains("2 instances"), "{stdout}");

    // A malformed instantiation is a structured server error (exit 1),
    // never a dropped connection or a server panic.
    let (_, stderr, code) = client(&addr, &["instantiate", "9"]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("server error"), "{stderr}");
    let (_, stderr, code) = client(&addr, &["instantiate", "0", "1", "2"]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("server error"), "{stderr}");

    // Template instances never touch the engine: the transaction
    // registry is still empty.
    let (stdout, _, code) = client(&addr, &["stats", "--json"]);
    assert_eq!(code, 0);
    let j: serde_json::Value = serde_json::from_str(&stdout).expect("valid json");
    assert_eq!(j["registry_size"], 0);
    assert_eq!(j["templates"], 1);
    assert_eq!(j["instances"], 2);
    assert_eq!(j["admission"]["fast_path"], 2);

    let (_, _, code) = client(&addr, &["shutdown"]);
    assert_eq!(code, 0);
    let status = server.wait().expect("server exit");
    assert_eq!(status.code(), Some(0));
}

#[test]
fn serve_rc_si_mode_rejects_unallocatable_registration() {
    let (mut server, addr, _server_out, _) = spawn_server(&["--levels", "rc-si"]);
    let (_, _, code) = client(&addr, &["register", "T1: R[x] W[y]"]);
    assert_eq!(code, 0);
    // The write-skew partner has no robust {RC, SI} allocation.
    let (_, stderr, code) = client(&addr, &["register", "T2: R[y] W[x]"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("rc-si"), "{stderr}");
    // The rollback kept the registry serving.
    let (stdout, _, code) = client(&addr, &["assign", "T1"]);
    assert_eq!(code, 0);
    assert_eq!(stdout.trim(), "RC");
    let (_, _, code) = client(&addr, &["shutdown"]);
    assert_eq!(code, 0);
    server.wait().expect("server exit");
}

#[test]
fn serve_and_client_round_trip_over_the_binary_codec() {
    let (mut server, addr, mut server_out, banner) = spawn_server(&[]);
    assert!(banner.contains("codec auto"), "{banner}");

    // Register over binary frames, read back over line-JSON: the codec
    // is per-connection wire framing, not state.
    let (stdout, stderr, code) = client(&addr, &["register", "T1: R[x] W[y]", "--codec", "binary"]);
    assert_eq!(code, 0, "{stderr}");
    assert!(stdout.contains("registered T1"), "{stdout}");
    let (_, stderr, code) = client(&addr, &["register", "T2: R[y] W[x]", "--codec", "binary"]);
    assert_eq!(code, 0, "{stderr}");
    let (stdout, _, code) = client(&addr, &["assign", "T1", "--codec", "line"]);
    assert_eq!(code, 0);
    assert_eq!(stdout.trim(), "SSI");
    let (stdout, _, code) = client(&addr, &["assign", "T1", "--codec", "binary"]);
    assert_eq!(code, 0);
    assert_eq!(stdout.trim(), "SSI");

    // The retry client speaks frames too.
    let (stdout, stderr, code) = client(
        &addr,
        &["stats", "--json", "--codec", "binary", "--retries", "2"],
    );
    assert_eq!(code, 0, "{stderr}");
    let j: serde_json::Value = serde_json::from_str(&stdout).expect("valid json");
    assert_eq!(j["registry_size"], 2);
    assert!(j["codec_frame"].as_u64().unwrap() > 0, "{j}");
    assert!(j["codec_line"].as_u64().unwrap() > 0, "{j}");

    let (_, _, code) = client(&addr, &["shutdown", "--codec", "binary"]);
    assert_eq!(code, 0);
    let status = server.wait().expect("server exit");
    assert_eq!(status.code(), Some(0));
    // The shutdown summary reports connection and per-codec counters.
    let mut rest = String::new();
    server_out.read_to_string(&mut rest).expect("drain stdout");
    assert!(rest.contains("served "), "{rest}");
    assert!(rest.contains("binary"), "{rest}");
    assert!(rest.contains("shut down cleanly"), "{rest}");
}

#[test]
fn serve_threaded_core_and_codec_flags_validate() {
    // The threaded baseline core serves the same protocol.
    let (mut server, addr, _server_out, banner) = spawn_server(&["--core", "threaded"]);
    assert!(banner.contains("core threaded"), "{banner}");
    let (stdout, stderr, code) = client(&addr, &["ping", "--codec", "binary"]);
    assert_eq!(code, 0, "{stderr}");
    assert!(stdout.contains("pong"));
    let (_, _, code) = client(&addr, &["shutdown"]);
    assert_eq!(code, 0);
    server.wait().expect("server exit");

    // Bad values are usage errors (exit 2) with actionable messages.
    let (_, stderr, code) = run_with_stdin(&["serve", "--codec", "morse"], "");
    assert_eq!(code, 2);
    assert!(stderr.contains("invalid --codec"), "{stderr}");
    let (_, stderr, code) = run_with_stdin(&["serve", "--core", "fiber"], "");
    assert_eq!(code, 2);
    assert!(stderr.contains("invalid --core"), "{stderr}");
    let (_, stderr, code) = run_with_stdin(&["client", "ping", "--codec", "morse"], "");
    assert_eq!(code, 2);
    assert!(stderr.contains("invalid --codec"), "{stderr}");
}

#[test]
fn client_against_unreachable_server_fails_cleanly() {
    // Reserve a port, then close it: nothing is listening there.
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("addr").to_string()
    };
    let (stdout, stderr, code) = client(&dead, &["ping"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stdout.is_empty(), "{stdout}");
    // One actionable line, no stack trace or panic spew.
    assert_eq!(stderr.trim().lines().count(), 1, "{stderr}");
    assert!(stderr.contains(&dead), "{stderr}");
    assert!(stderr.contains("is `mvrobust serve` running?"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
    assert!(!stderr.contains("RUST_BACKTRACE"), "{stderr}");

    // The retry client path fails the same way after its retries.
    let (_, stderr, code) = client(&dead, &["ping", "--retries", "1", "--backoff-ms", "1"]);
    assert_eq!(code, 2, "{stderr}");
    assert_eq!(stderr.trim().lines().count(), 1, "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn client_against_server_dying_mid_handshake_fails_cleanly() {
    // A fake server that accepts the connection and immediately drops it
    // — the client sees EOF before any reply line.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let accepter = std::thread::spawn(move || {
        for stream in listener.incoming().take(2) {
            drop(stream);
        }
    });
    let (stdout, stderr, code) = client(&addr, &["register", "T1: R[x]"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stdout.is_empty(), "{stdout}");
    assert_eq!(stderr.trim().lines().count(), 1, "{stderr}");
    assert!(stderr.contains(&addr), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
    // Second accept slot: the retry path also ends in one clean line.
    let (_, stderr, code) = client(&addr, &["ping", "--retries", "0"]);
    assert_eq!(code, 2, "{stderr}");
    assert_eq!(stderr.trim().lines().count(), 1, "{stderr}");
    accepter.join().expect("accepter");
}

#[test]
fn serve_fault_plan_announced_and_survivable_with_retries() {
    let (mut server, addr, _server_out, banner) =
        spawn_server(&["--fault-plan", "seed=7,drop=0.4,budget=4"]);
    assert!(banner.contains("fault injection"), "{banner}");
    assert!(banner.contains("drop=0.4"), "{banner}");
    // Retries + idempotent request ids ride out the injected drops.
    let retry = ["--retries", "8", "--backoff-ms", "1", "--seed", "3"];
    let with_retry = |args: &[&str]| {
        let mut full = args.to_vec();
        full.extend_from_slice(&retry);
        client(&addr, &full)
    };
    let (stdout, stderr, code) = with_retry(&["register", "T1: R[x] W[y]"]);
    assert_eq!(code, 0, "{stderr}");
    assert!(stdout.contains("registered T1"), "{stdout}");
    let (stdout, stderr, code) = with_retry(&["stats", "--json"]);
    assert_eq!(code, 0, "{stderr}");
    let j: serde_json::Value = serde_json::from_str(&stdout).expect("valid json");
    assert_eq!(j["registry_size"], 1);
    let (_, stderr, code) = with_retry(&["shutdown"]);
    assert_eq!(code, 0, "{stderr}");
    server.wait().expect("server exit");
}

#[test]
fn serve_rejects_malformed_fault_plan() {
    let (_, stderr, code) = run_with_stdin(&["serve", "--fault-plan", "drop=1.5"], "");
    assert_eq!(code, 2);
    assert!(stderr.contains("invalid --fault-plan"), "{stderr}");
    let (_, stderr, code) = run_with_stdin(&["serve", "--fault-plan", "gremlins=yes"], "");
    assert_eq!(code, 2);
    assert!(stderr.contains("invalid --fault-plan"), "{stderr}");
}

/// A scratch data directory, removed on drop.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("mvrobust-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }
    fn path(&self) -> &str {
        self.0.to_str().expect("utf-8 temp path")
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn serve_survives_kill_dash_nine_with_identical_state() {
    let data = TempDir::new("kill9");
    let durable = ["--data-dir", data.path(), "--snapshot-every", "4"];

    let (mut server, addr, _out, banner) = spawn_server(&durable);
    assert!(banner.contains("durable:"), "{banner}");
    assert!(banner.contains("fsync=batch"), "{banner}");

    // Two tenants: write skew in the default namespace, a lost-update
    // pair in `acme`.
    for line in ["T1: R[x] W[y]", "T2: R[y] W[x]"] {
        let (_, stderr, code) = client(&addr, &["register", line]);
        assert_eq!(code, 0, "{stderr}");
    }
    for line in ["T1: R[z] W[z]", "T2: R[z] W[z]", "T3: W[q]"] {
        let (_, stderr, code) = client(&addr, &["register", line, "--tenant", "acme"]);
        assert_eq!(code, 0, "{stderr}");
    }
    let (before_default, _, code) = client(&addr, &["list", "--json"]);
    assert_eq!(code, 0);
    let (before_acme, _, code) = client(&addr, &["list", "--json", "--tenant", "acme"]);
    assert_eq!(code, 0);

    // SIGKILL: no shutdown handler runs, no buffer is flushed — the
    // only surviving state is what the store already made durable.
    server.kill().expect("kill -9 the server");
    server.wait().expect("reap");

    let (mut server, addr, _out, banner) = spawn_server(&durable);
    assert!(banner.contains("durable:"), "{banner}");

    let (after_default, _, code) = client(&addr, &["list", "--json"]);
    assert_eq!(code, 0);
    assert_eq!(
        before_default, after_default,
        "default tenant state must survive kill -9"
    );
    let (after_acme, _, code) = client(&addr, &["list", "--json", "--tenant", "acme"]);
    assert_eq!(code, 0);
    assert_eq!(
        before_acme, after_acme,
        "acme tenant state must survive kill -9"
    );

    // The recovered allocation answers assigns exactly as before.
    let (stdout, _, code) = client(&addr, &["assign", "T1"]);
    assert_eq!(code, 0);
    assert_eq!(stdout.trim(), "SSI");
    let (stdout, _, code) = client(&addr, &["assign", "T1", "--tenant", "acme"]);
    assert_eq!(code, 0);
    assert_eq!(stdout.trim(), "SI");

    // Stats surface the recovery record and both tenants.
    let (stdout, _, code) = client(&addr, &["stats", "--json"]);
    assert_eq!(code, 0);
    let j: serde_json::Value = serde_json::from_str(&stdout).expect("valid json");
    assert_eq!(j["tenants"], 2, "{j}");
    assert_eq!(j["durability"]["policy"], "batch", "{j}");
    assert!(
        j["durability"]["recovery"]["wal_records_replayed"]
            .as_u64()
            .unwrap()
            + j["durability"]["recovery"]["snapshot_tenants"]
                .as_u64()
                .unwrap()
            > 0,
        "recovery must have replayed the log or loaded a snapshot: {j}"
    );

    let (_, _, code) = client(&addr, &["shutdown"]);
    assert_eq!(code, 0);
    server.wait().expect("server exit");
}

#[test]
fn serve_durability_flags_validate() {
    let (_, stderr, code) = run_with_stdin(&["serve", "--durability", "batch"], "");
    assert_eq!(code, 2);
    assert!(stderr.contains("need --data-dir"), "{stderr}");
    let (_, stderr, code) = run_with_stdin(&["serve", "--snapshot-every", "8"], "");
    assert_eq!(code, 2);
    assert!(stderr.contains("need --data-dir"), "{stderr}");
    let data = TempDir::new("badpolicy");
    let (_, stderr, code) = run_with_stdin(
        &[
            "serve",
            "--data-dir",
            data.path(),
            "--durability",
            "paranoid",
        ],
        "",
    );
    assert_eq!(code, 2);
    assert!(stderr.contains("invalid --durability"), "{stderr}");
}

#[test]
fn witness_dot_output() {
    let (stdout, _, code) = run_with_stdin(&["witness", "--level", "si", "--dot"], SKEW);
    assert_eq!(code, 1);
    assert!(stdout.contains("digraph SeG {"));
    assert!(stdout.contains("style=dashed"));
    let (stdout, _, _) = run_with_stdin(&["witness", "--level", "si", "--dot", "--json"], SKEW);
    let j: serde_json::Value = serde_json::from_str(&stdout).expect("valid json");
    assert!(j["dot"].as_str().unwrap().contains("digraph"));
}
