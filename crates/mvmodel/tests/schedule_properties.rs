//! Property-based tests of the schedule model's structural invariants.

use mvmodel::dependency::{conflict_equivalent, dependencies};
use mvmodel::serializability::{equivalent_serial_schedule, is_conflict_serializable};
use mvmodel::{
    conflict, Object, Op, OpAddr, OpId, Schedule, SerializationGraph, Transaction, TransactionSet,
    TxnId,
};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Strategy: a well-formed transaction set.
fn txn_sets() -> impl Strategy<Value = Arc<TransactionSet>> {
    prop::collection::vec(
        prop::collection::vec((0u32..4, prop::bool::ANY), 1..=4),
        1..=5,
    )
    .prop_map(|specs| {
        let mut txns = Vec::new();
        for (i, spec) in specs.into_iter().enumerate() {
            let mut ops: Vec<Op> = Vec::new();
            for (obj, write) in spec {
                let op = if write {
                    Op::write(Object(obj))
                } else {
                    Op::read(Object(obj))
                };
                if !ops.contains(&op) {
                    ops.push(op);
                }
            }
            txns.push(Transaction::new(TxnId(i as u32 + 1), ops).expect("deduped"));
        }
        Arc::new(TransactionSet::new(txns).expect("unique ids"))
    })
}

/// Strategy: a random *valid* multiversion schedule over a set — random
/// interleaving, random (consistent) version order, and a version
/// function drawn from the versions positioned before each read.
fn schedules() -> impl Strategy<Value = Schedule> {
    (txn_sets(), any::<u64>()).prop_map(|(txns, seed)| {
        let mut rng = seed;
        let mut next = move || {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (rng >> 33) as usize
        };
        // Random interleaving preserving program order.
        let mut cursors: Vec<(TxnId, usize, usize)> =
            txns.iter().map(|t| (t.id(), 0usize, t.len() + 1)).collect();
        let mut order: Vec<OpId> = Vec::new();
        while !cursors.is_empty() {
            let k = next() % cursors.len();
            let (tid, ref mut pos, len) = cursors[k];
            let t = txns.txn(tid);
            order.push(if *pos < t.len() {
                OpId::op(tid, *pos as u16)
            } else {
                OpId::Commit(tid)
            });
            *pos += 1;
            if *pos >= len {
                cursors.remove(k);
            }
        }
        let pos: HashMap<OpId, usize> = order.iter().enumerate().map(|(i, &o)| (o, i)).collect();
        // Random version order per object (random shuffle of writers).
        let mut versions: HashMap<Object, Vec<OpAddr>> = HashMap::new();
        for object in txns.objects() {
            let mut writers = txns.writers_of(object);
            for i in (1..writers.len()).rev() {
                writers.swap(i, next() % (i + 1));
            }
            if !writers.is_empty() {
                versions.insert(object, writers);
            }
        }
        // Version function: any write positioned before the read, or op0.
        let mut reads_from: HashMap<OpAddr, OpId> = HashMap::new();
        for t in txns.iter() {
            for (addr, object) in t.reads() {
                let candidates: Vec<OpId> = txns
                    .writers_of(object)
                    .into_iter()
                    .map(OpId::Op)
                    .filter(|w| pos[w] < pos[&OpId::Op(addr)])
                    .collect();
                let v = if candidates.is_empty() || next() % 3 == 0 {
                    OpId::Init
                } else {
                    candidates[next() % candidates.len()]
                };
                reads_from.insert(addr, v);
            }
        }
        Schedule::new(txns, order, versions, reads_from).expect("constructed to be valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every conflicting operation pair is oriented by exactly one
    /// dependency, and non-conflicting pairs by none.
    #[test]
    fn dependency_totality(s in schedules()) {
        let txns = s.txns();
        let deps = dependencies(&s);
        let mut oriented: HashMap<(OpAddr, OpAddr), usize> = HashMap::new();
        for d in &deps {
            let key = (d.from.min(d.to), d.from.max(d.to));
            *oriented.entry(key).or_default() += 1;
            prop_assert!(conflict::conflicts(txns, d.from, d.to));
        }
        // Count all conflicting pairs.
        let ids: Vec<TxnId> = txns.ids().collect();
        let mut expected = 0usize;
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                expected += conflict::conflicting_pairs(txns, a, b).len();
            }
        }
        prop_assert_eq!(deps.len(), expected, "every conflicting pair oriented once");
        prop_assert!(oriented.values().all(|&c| c == 1));
    }

    /// Theorem 2.2 both ways on random schedules: acyclic ⟹ the
    /// constructed serial schedule is conflict-equivalent; cyclic ⟹ no
    /// equivalent serial order exists (checked by exhaustion for ≤ 5
    /// transactions).
    #[test]
    fn theorem_2_2_on_random_schedules(s in schedules()) {
        let g = SerializationGraph::of(&s);
        if g.is_acyclic() {
            let serial = equivalent_serial_schedule(&s).expect("acyclic ⟹ witness");
            prop_assert!(conflict_equivalent(&s, &serial));
            prop_assert!(serial.is_serial());
            prop_assert!(serial.is_single_version());
        } else {
            prop_assert!(!is_conflict_serializable(&s));
            // Exhaustive cross-check: no serial order is equivalent.
            let ids: Vec<TxnId> = s.txns().ids().collect();
            let mut perms = vec![ids.clone()];
            // Heap's algorithm, iterative.
            let mut c = vec![0usize; ids.len()];
            let mut arr = ids.clone();
            let mut i = 0;
            while i < arr.len() {
                if c[i] < i {
                    if i % 2 == 0 { arr.swap(0, i) } else { arr.swap(c[i], i) }
                    perms.push(arr.clone());
                    c[i] += 1;
                    i = 0;
                } else {
                    c[i] = 0;
                    i += 1;
                }
            }
            for perm in perms {
                let serial =
                    Schedule::single_version_serial(s.txns_arc(), &perm).expect("valid perm");
                prop_assert!(!conflict_equivalent(&s, &serial));
            }
        }
    }

    /// The cycle reported by `find_cycle` is a real cycle, and SCCs
    /// partition the nodes consistently with it.
    #[test]
    fn cycles_and_sccs_consistent(s in schedules()) {
        let g = SerializationGraph::of(&s);
        let sccs = g.sccs();
        let mut all: Vec<TxnId> = sccs.iter().flatten().copied().collect();
        all.sort_unstable();
        let mut nodes: Vec<TxnId> = g.nodes().to_vec();
        nodes.sort_unstable();
        prop_assert_eq!(all, nodes, "SCCs partition the nodes");
        match g.find_cycle() {
            Some(cycle) => {
                for w in cycle.windows(2) {
                    prop_assert!(g.has_edge(w[0], w[1]));
                }
                prop_assert!(g.has_edge(*cycle.last().unwrap(), cycle[0]));
                // All cycle members share one SCC.
                let home = sccs.iter().find(|c| c.contains(&cycle[0])).unwrap();
                prop_assert!(cycle.iter().all(|t| home.contains(t)));
                prop_assert!(!g.is_acyclic());
            }
            None => {
                prop_assert!(g.is_acyclic());
                prop_assert!(sccs.iter().all(|c| c.len() == 1));
            }
        }
    }

    /// Concurrency is symmetric and consistent with first/commit
    /// positions.
    #[test]
    fn concurrency_symmetric(s in schedules()) {
        let ids: Vec<TxnId> = s.txns().ids().collect();
        for &a in &ids {
            prop_assert!(!s.concurrent(a, a));
            for &b in &ids {
                prop_assert_eq!(s.concurrent(a, b), s.concurrent(b, a));
                if s.concurrent(a, b) {
                    prop_assert!(s.first_pos(a) < s.commit_pos(b));
                    prop_assert!(s.first_pos(b) < s.commit_pos(a));
                }
            }
        }
    }

    /// Schedule rendering round-trips through the dependency set: the
    /// rendered order re-parsed as positions matches `pos`.
    #[test]
    fn order_rendering_is_faithful(s in schedules()) {
        let rendered = mvmodel::fmt::schedule_order(&s);
        let tokens: Vec<&str> = rendered.split(' ').collect();
        prop_assert_eq!(tokens.len(), s.order().len());
        for (i, &op) in s.order().iter().enumerate() {
            match op {
                OpId::Commit(t) => prop_assert_eq!(tokens[i], format!("C{}", t.0)),
                OpId::Op(a) => {
                    let k = s.txns().op_at(a).kind.letter();
                    prop_assert!(tokens[i].starts_with(k));
                }
                OpId::Init => unreachable!(),
            }
        }
    }
}
