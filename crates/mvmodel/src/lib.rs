//! Formal model of transactions and multiversion schedules.
//!
//! This crate implements Section 2 of *Allocating Isolation Levels to
//! Transactions in a Multiversion Setting* (Vandevoort, Ketsman & Neven,
//! PODS 2023):
//!
//! - [`Transaction`]s are sequences of read/write operations over abstract
//!   [`Object`]s followed by a commit, with at most one read and one write
//!   per object (the paper's §2.1 convention).
//! - A multiversion [`Schedule`] is a tuple `(O_s, ≤_s, ≪_s, v_s)`: an
//!   operation order, a per-object *version order* over writes, and a
//!   *version function* mapping every read to the write (or the initial
//!   operation `op₀`) whose version it observes.
//! - [`dependency`] derives the ww-dependencies, wr-dependencies and
//!   rw-antidependencies of a schedule (§2.2), [`graph`] builds the
//!   serialization graph `SeG(s)`, and [`serializability`] decides conflict
//!   serializability (Theorem 2.2) and constructs equivalent single-version
//!   serial schedules.
//!
//! The crate is self-contained: graph algorithms (cycle detection,
//! topological sort, strongly connected components) are implemented in
//! [`graph`] without external dependencies.
//!
//! # Example
//!
//! ```
//! use mvmodel::{TxnSetBuilder, Schedule};
//! use std::sync::Arc;
//!
//! let mut b = TxnSetBuilder::new();
//! let x = b.object("x");
//! let y = b.object("y");
//! b.txn(1).read(x).write(y).finish();
//! b.txn(2).write(x).finish();
//! let txns = Arc::new(b.build().unwrap());
//!
//! // A serial execution: T1 entirely before T2.
//! let s = Schedule::single_version_serial(txns, &[1.into(), 2.into()]).unwrap();
//! assert!(mvmodel::serializability::is_conflict_serializable(&s));
//! ```

#[cfg(test)]
pub(crate) mod fixtures;

pub mod conflict;
pub mod dependency;
pub mod error;
pub mod fmt;
pub mod graph;
pub mod ids;
pub mod parser;
pub mod schedule;
pub mod serializability;
pub mod transaction;
pub mod txnset;

pub use conflict::{conflict_kind, conflicts, ConflictKind};
pub use dependency::{dependencies, DepKind, Dependency};
pub use error::{ModelError, ParseError, ScheduleError};
pub use graph::SerializationGraph;
pub use ids::{Object, OpAddr, OpId, OpKind, TxnId};
pub use parser::{parse_transaction_line, parse_transactions};
pub use schedule::Schedule;
pub use transaction::{Op, Transaction};
pub use txnset::{TransactionSet, TxnBuilder, TxnSetBuilder};
