//! Schedule-independent conflicts between operations (§2.2).

use crate::ids::{OpAddr, OpKind};
use crate::txnset::TransactionSet;

/// The three conflict shapes of §2.2, named from the first operation's kind
/// to the second's: `b` is *X-Y-conflicting* with `a`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ConflictKind {
    /// `b = W[t]`, `a = W[t]`.
    Ww,
    /// `b = W[t]`, `a = R[t]`.
    Wr,
    /// `b = R[t]`, `a = W[t]`.
    Rw,
}

impl ConflictKind {
    /// The conflict kind seen from the opposite direction (`a` vs `b`).
    pub fn reversed(self) -> ConflictKind {
        match self {
            ConflictKind::Ww => ConflictKind::Ww,
            ConflictKind::Wr => ConflictKind::Rw,
            ConflictKind::Rw => ConflictKind::Wr,
        }
    }
}

/// Returns the kind with which `b` conflicts with `a`, or `None` when the
/// operations do not conflict.
///
/// Operations conflict when they are from *different* transactions, act on
/// the same object, and at least one is a write. Commits never conflict and
/// are not addressable as [`OpAddr`], so they cannot be passed here.
pub fn conflict_kind(txns: &TransactionSet, b: OpAddr, a: OpAddr) -> Option<ConflictKind> {
    if b.txn == a.txn {
        return None;
    }
    let ob = txns.op_at(b);
    let oa = txns.op_at(a);
    if ob.object != oa.object {
        return None;
    }
    match (ob.kind, oa.kind) {
        (OpKind::Write, OpKind::Write) => Some(ConflictKind::Ww),
        (OpKind::Write, OpKind::Read) => Some(ConflictKind::Wr),
        (OpKind::Read, OpKind::Write) => Some(ConflictKind::Rw),
        (OpKind::Read, OpKind::Read) => None,
    }
}

/// Whether `b` and `a` are conflicting operations.
pub fn conflicts(txns: &TransactionSet, b: OpAddr, a: OpAddr) -> bool {
    conflict_kind(txns, b, a).is_some()
}

/// All conflicting operation pairs `(b ∈ T_i, a ∈ T_j)` between two distinct
/// transactions, with their conflict kinds.
pub fn conflicting_pairs(
    txns: &TransactionSet,
    ti: crate::ids::TxnId,
    tj: crate::ids::TxnId,
) -> Vec<(OpAddr, OpAddr, ConflictKind)> {
    let a = txns.txn(ti);
    let b = txns.txn(tj);
    let mut out = Vec::new();
    for i in 0..a.len() as u16 {
        for j in 0..b.len() as u16 {
            let (ba, aa) = (a.addr(i), b.addr(j));
            if let Some(kind) = conflict_kind(txns, ba, aa) {
                out.push((ba, aa, kind));
            }
        }
    }
    out
}

/// Whether transactions `ti` and `tj` have any pair of conflicting
/// operations.
pub fn txns_conflict(txns: &TransactionSet, ti: crate::ids::TxnId, tj: crate::ids::TxnId) -> bool {
    if ti == tj {
        return false;
    }
    let a = txns.txn(ti);
    let b = txns.txn(tj);
    for op_a in a.ops() {
        // A pair conflicts iff same object and at least one write.
        let needs_write = op_a.is_read();
        let hit = if needs_write {
            b.write_of(op_a.object).is_some()
        } else {
            b.write_of(op_a.object).is_some() || b.read_of(op_a.object).is_some()
        };
        if hit {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TxnId;
    use crate::txnset::TxnSetBuilder;

    fn set() -> TransactionSet {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).write(x).read(y).finish();
        b.txn(3).read(x).finish();
        b.build().unwrap()
    }

    #[test]
    fn kinds() {
        let s = set();
        let r1x = OpAddr::new(TxnId(1), 0);
        let w1y = OpAddr::new(TxnId(1), 1);
        let w2x = OpAddr::new(TxnId(2), 0);
        let r2y = OpAddr::new(TxnId(2), 1);
        let r3x = OpAddr::new(TxnId(3), 0);
        assert_eq!(conflict_kind(&s, r1x, w2x), Some(ConflictKind::Rw));
        assert_eq!(conflict_kind(&s, w2x, r1x), Some(ConflictKind::Wr));
        assert_eq!(conflict_kind(&s, w1y, r2y), Some(ConflictKind::Wr));
        // Reads never conflict with reads.
        assert_eq!(conflict_kind(&s, r1x, r3x), None);
        // Different objects never conflict.
        assert_eq!(conflict_kind(&s, w1y, w2x), None);
        // Same transaction never conflicts with itself.
        assert_eq!(conflict_kind(&s, r1x, w1y), None);
        assert!(conflicts(&s, r1x, w2x));
        assert!(!conflicts(&s, r1x, r3x));
    }

    #[test]
    fn reversed_kinds() {
        assert_eq!(ConflictKind::Ww.reversed(), ConflictKind::Ww);
        assert_eq!(ConflictKind::Wr.reversed(), ConflictKind::Rw);
        assert_eq!(ConflictKind::Rw.reversed(), ConflictKind::Wr);
    }

    #[test]
    fn pairs_between_txns() {
        let s = set();
        let pairs = conflicting_pairs(&s, TxnId(1), TxnId(2));
        // R1[x]-W2[x] (rw) and W1[y]-R2[y] (wr).
        assert_eq!(pairs.len(), 2);
        assert!(pairs.iter().any(|&(_, _, k)| k == ConflictKind::Rw));
        assert!(pairs.iter().any(|&(_, _, k)| k == ConflictKind::Wr));
        assert!(conflicting_pairs(&s, TxnId(1), TxnId(3)).is_empty());
    }

    #[test]
    fn txn_level_conflicts() {
        let s = set();
        assert!(txns_conflict(&s, TxnId(1), TxnId(2)));
        assert!(txns_conflict(&s, TxnId(2), TxnId(3)));
        assert!(!txns_conflict(&s, TxnId(1), TxnId(3)));
        assert!(!txns_conflict(&s, TxnId(1), TxnId(1)));
    }
}
