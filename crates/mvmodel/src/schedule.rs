//! Multiversion schedules: `(O_s, ≤_s, ≪_s, v_s)` per Definition 2.2.

use crate::error::ScheduleError;
use crate::ids::{Object, OpAddr, OpId, TxnId};
use crate::txnset::TransactionSet;
use std::collections::HashMap;
use std::sync::Arc;

/// A multiversion schedule over a [`TransactionSet`].
///
/// The schedule stores:
/// - the operation order `≤_s` (as [`Schedule::order`]; the virtual initial
///   write `op₀` implicitly precedes everything),
/// - the per-object version order `≪_s` over write operations (with `op₀`
///   implicitly first for every object), and
/// - the version function `v_s` mapping every read to the write whose
///   version it observes (or `op₀`).
///
/// All well-formedness conditions of Definition 2.2 are validated at
/// construction: every operation of every transaction appears exactly once,
/// program order is respected, the version order per object is a total order
/// over exactly that object's writes, and `v_s(a) <_s a` with `v_s(a)` on
/// the same object as `a`.
#[derive(Clone, Debug)]
pub struct Schedule {
    txns: Arc<TransactionSet>,
    order: Vec<OpId>,
    pos: HashMap<OpId, u32>,
    /// `≪_s`: per object, its writes in version order (`op₀` implicit first).
    versions: HashMap<Object, Vec<OpAddr>>,
    /// Rank of each write in its object's version order (1-based; `op₀` has
    /// rank 0).
    vrank: HashMap<OpAddr, u32>,
    /// `v_s`: read operation → observed write (or `op₀`).
    reads_from: HashMap<OpAddr, OpId>,
}

impl Schedule {
    /// Constructs and validates a schedule.
    ///
    /// `order` must list every read/write/commit of every transaction in
    /// `txns` exactly once (excluding `op₀`). `versions` gives `≪_s` per
    /// object; objects with no writes may be omitted. `reads_from` gives
    /// `v_s` for every read.
    pub fn new(
        txns: Arc<TransactionSet>,
        order: Vec<OpId>,
        versions: HashMap<Object, Vec<OpAddr>>,
        reads_from: HashMap<OpAddr, OpId>,
    ) -> Result<Self, ScheduleError> {
        let pos = Self::index_order(&txns, &order)?;
        Self::check_program_order(&txns, &pos)?;
        let vrank = Self::check_versions(&txns, &versions)?;
        Self::check_reads_from(&txns, &pos, &reads_from)?;
        Ok(Schedule {
            txns,
            order,
            pos,
            versions,
            vrank,
            reads_from,
        })
    }

    fn index_order(
        txns: &TransactionSet,
        order: &[OpId],
    ) -> Result<HashMap<OpId, u32>, ScheduleError> {
        let expected: usize = txns.iter().map(|t| t.len() + 1).sum();
        if order.len() != expected {
            return Err(ScheduleError::OrderMismatch(format!(
                "expected {expected} operations, got {}",
                order.len()
            )));
        }
        let mut pos = HashMap::with_capacity(order.len());
        for (i, &op) in order.iter().enumerate() {
            let valid = match op {
                OpId::Init => false,
                OpId::Op(a) => txns.get(a.txn).is_some_and(|t| (a.idx as usize) < t.len()),
                OpId::Commit(t) => txns.contains(t),
            };
            if !valid {
                return Err(ScheduleError::OrderMismatch(format!(
                    "unknown operation {op}"
                )));
            }
            if pos.insert(op, i as u32).is_some() {
                return Err(ScheduleError::OrderMismatch(format!(
                    "operation {op} listed twice"
                )));
            }
        }
        Ok(pos)
    }

    fn check_program_order(
        txns: &TransactionSet,
        pos: &HashMap<OpId, u32>,
    ) -> Result<(), ScheduleError> {
        for t in txns.iter() {
            let ids: Vec<OpId> = t.op_ids().collect();
            for w in ids.windows(2) {
                if pos[&w[0]] > pos[&w[1]] {
                    return Err(ScheduleError::ProgramOrderViolated {
                        txn: t.id(),
                        earlier: w[0],
                        later: w[1],
                    });
                }
            }
        }
        Ok(())
    }

    fn check_versions(
        txns: &TransactionSet,
        versions: &HashMap<Object, Vec<OpAddr>>,
    ) -> Result<HashMap<OpAddr, u32>, ScheduleError> {
        let mut vrank = HashMap::new();
        for object in txns.objects() {
            let mut writers = txns.writers_of(object);
            let listed = versions.get(&object).cloned().unwrap_or_default();
            if writers.is_empty() && listed.is_empty() {
                continue;
            }
            let mut sorted = listed.clone();
            sorted.sort_unstable();
            writers.sort_unstable();
            if sorted != writers {
                return Err(ScheduleError::VersionOrderMismatch(object));
            }
            for (rank, addr) in listed.iter().enumerate() {
                vrank.insert(*addr, rank as u32 + 1);
            }
        }
        // Reject version orders over objects no transaction writes.
        for (object, listed) in versions {
            if !listed.is_empty() && txns.writers_of(*object).is_empty() {
                return Err(ScheduleError::VersionOrderMismatch(*object));
            }
        }
        Ok(vrank)
    }

    fn check_reads_from(
        txns: &TransactionSet,
        pos: &HashMap<OpId, u32>,
        reads_from: &HashMap<OpAddr, OpId>,
    ) -> Result<(), ScheduleError> {
        let mut n_reads = 0usize;
        for t in txns.iter() {
            for (addr, object) in t.reads() {
                n_reads += 1;
                let v = *reads_from
                    .get(&addr)
                    .ok_or(ScheduleError::VersionFunctionDomain(addr))?;
                match v {
                    OpId::Init => {}
                    OpId::Op(w) => {
                        let wop = txns
                            .get(w.txn)
                            .filter(|t| (w.idx as usize) < t.len())
                            .map(|t| t.op(w.idx))
                            .ok_or(ScheduleError::VersionWrongObject {
                                read: addr,
                                version: v,
                            })?;
                        if !wop.is_write() || wop.object != object {
                            return Err(ScheduleError::VersionWrongObject {
                                read: addr,
                                version: v,
                            });
                        }
                        if pos[&v] >= pos[&OpId::Op(addr)] {
                            return Err(ScheduleError::VersionNotBeforeRead {
                                read: addr,
                                version: v,
                            });
                        }
                    }
                    OpId::Commit(_) => {
                        return Err(ScheduleError::VersionWrongObject {
                            read: addr,
                            version: v,
                        })
                    }
                }
            }
        }
        if reads_from.len() != n_reads {
            // Entries for non-read operations.
            let extra = reads_from
                .keys()
                .find(|a| {
                    txns.get(a.txn)
                        .is_none_or(|t| (a.idx as usize) >= t.len() || !t.op(a.idx).is_read())
                })
                .copied()
                .unwrap_or(OpAddr::new(TxnId(u32::MAX), 0));
            return Err(ScheduleError::VersionFunctionDomain(extra));
        }
        Ok(())
    }

    /// Builds the single-version serial schedule executing the transactions
    /// of `txns` in the given order (Definition 2.1's target form).
    ///
    /// Version order follows the serial order, and each read observes the
    /// most recent preceding write (or `op₀`).
    pub fn single_version_serial(
        txns: Arc<TransactionSet>,
        serial: &[TxnId],
    ) -> Result<Self, ScheduleError> {
        let mut sorted: Vec<TxnId> = serial.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut all: Vec<TxnId> = txns.ids().collect();
        all.sort_unstable();
        if sorted != all || serial.len() != all.len() {
            return Err(ScheduleError::BadSerialOrder);
        }

        let mut order = Vec::with_capacity(txns.total_ops() + txns.len());
        let mut versions: HashMap<Object, Vec<OpAddr>> = HashMap::new();
        let mut last_write: HashMap<Object, OpId> = HashMap::new();
        let mut reads_from = HashMap::new();
        for &tid in serial {
            let t = txns.txn(tid);
            for (i, op) in t.ops().iter().enumerate() {
                let addr = OpAddr::new(tid, i as u16);
                order.push(OpId::Op(addr));
                if op.is_write() {
                    versions.entry(op.object).or_default().push(addr);
                    last_write.insert(op.object, OpId::Op(addr));
                } else {
                    reads_from.insert(
                        addr,
                        last_write.get(&op.object).copied().unwrap_or(OpId::Init),
                    );
                }
            }
            order.push(OpId::Commit(tid));
        }
        Self::new(txns, order, versions, reads_from)
    }

    /// The underlying transaction set.
    pub fn txns(&self) -> &TransactionSet {
        &self.txns
    }

    /// Shared handle to the transaction set.
    pub fn txns_arc(&self) -> Arc<TransactionSet> {
        Arc::clone(&self.txns)
    }

    /// The operation order `≤_s` (excluding the implicit leading `op₀`).
    pub fn order(&self) -> &[OpId] {
        &self.order
    }

    /// Position of an operation in `≤_s`. `op₀` has position `u32::MAX` —
    /// use [`Schedule::before`] for comparisons instead. Panics on unknown
    /// operations.
    pub fn pos(&self, op: OpId) -> u32 {
        self.pos[&op]
    }

    /// `a <_s b`: strict operation order, with `op₀` before everything.
    pub fn before(&self, a: OpId, b: OpId) -> bool {
        match (a, b) {
            (OpId::Init, OpId::Init) => false,
            (OpId::Init, _) => true,
            (_, OpId::Init) => false,
            _ => self.pos[&a] < self.pos[&b],
        }
    }

    /// The version order `≪_s` restricted to `object`: its writes, in
    /// installation order (`op₀` implicitly first).
    pub fn version_order(&self, object: Object) -> &[OpAddr] {
        self.versions.get(&object).map_or(&[], |v| v.as_slice())
    }

    /// `a ≪_s b` for two write operations on the same object (either may be
    /// `op₀`). Returns `false` when the operations are not both writes on a
    /// common object.
    pub fn vless(&self, a: OpId, b: OpId) -> bool {
        let rank = |op: OpId| -> Option<u32> {
            match op {
                OpId::Init => Some(0),
                OpId::Op(addr) => self.vrank.get(&addr).copied(),
                OpId::Commit(_) => None,
            }
        };
        match (rank(a), rank(b)) {
            (Some(ra), Some(rb)) => {
                if let (OpId::Op(wa), OpId::Op(wb)) = (a, b) {
                    // Ranks are per-object; require a common object.
                    if self.txns.op_at(wa).object != self.txns.op_at(wb).object {
                        return false;
                    }
                }
                match (a, b) {
                    (OpId::Init, OpId::Init) => false,
                    _ => ra < rb,
                }
            }
            _ => false,
        }
    }

    /// `v_s`: the write (or `op₀`) observed by a read operation. Panics if
    /// `read` is not a read of the schedule.
    pub fn version_fn(&self, read: OpAddr) -> OpId {
        self.reads_from[&read]
    }

    /// Position of `first(T)` in the schedule.
    pub fn first_pos(&self, txn: TxnId) -> u32 {
        self.pos[&self.txns.txn(txn).first()]
    }

    /// Position of `C_T` in the schedule.
    pub fn commit_pos(&self, txn: TxnId) -> u32 {
        self.pos[&OpId::Commit(txn)]
    }

    /// Whether two transactions are concurrent: `first(T_i) <_s C_j` and
    /// `first(T_j) <_s C_i` (§2.3).
    pub fn concurrent(&self, ti: TxnId, tj: TxnId) -> bool {
        ti != tj
            && self.first_pos(ti) < self.commit_pos(tj)
            && self.first_pos(tj) < self.commit_pos(ti)
    }

    /// Transactions ordered by commit position.
    pub fn commit_order(&self) -> Vec<TxnId> {
        let mut ids: Vec<TxnId> = self.txns.ids().collect();
        ids.sort_by_key(|&t| self.commit_pos(t));
        ids
    }

    /// Whether the schedule is single-version (§2.1): `≪_s` is compatible
    /// with `≤_s` and every read observes the most recent preceding write.
    pub fn is_single_version(&self) -> bool {
        for writes in self.versions.values() {
            for w in writes.windows(2) {
                if !self.before(OpId::Op(w[0]), OpId::Op(w[1])) {
                    return false;
                }
            }
        }
        for t in self.txns.iter() {
            for (addr, object) in t.reads() {
                let v = self.version_fn(addr);
                // No write c on the same object with v <_s c <_s read.
                for &w in self.version_order(object) {
                    let wid = OpId::Op(w);
                    if self.before(v, wid) && self.before(wid, OpId::Op(addr)) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Whether transactions are not interleaved (§2.1's seriality).
    pub fn is_serial(&self) -> bool {
        let mut current: Option<TxnId> = None;
        let mut finished: Vec<TxnId> = Vec::new();
        for &op in &self.order {
            let t = op.txn().expect("order contains no op0");
            match current {
                Some(c) if c == t => {}
                _ => {
                    if finished.contains(&t) {
                        return false;
                    }
                    if let Some(c) = current {
                        finished.push(c);
                    }
                    current = Some(t);
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txnset::TxnSetBuilder;

    fn two_txns() -> Arc<TransactionSet> {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).write(x).finish();
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn serial_schedule_roundtrip() {
        let txns = two_txns();
        let s = Schedule::single_version_serial(Arc::clone(&txns), &[TxnId(1), TxnId(2)]).unwrap();
        assert!(s.is_serial());
        assert!(s.is_single_version());
        assert_eq!(s.order().len(), 5);
        // T1's read of x precedes T2's write: reads op0.
        assert_eq!(s.version_fn(OpAddr::new(TxnId(1), 0)), OpId::Init);
        assert!(!s.concurrent(TxnId(1), TxnId(2)));
        assert_eq!(s.commit_order(), vec![TxnId(1), TxnId(2)]);
    }

    #[test]
    fn serial_schedule_sees_prior_writes() {
        let txns = two_txns();
        let s = Schedule::single_version_serial(Arc::clone(&txns), &[TxnId(2), TxnId(1)]).unwrap();
        let w2 = OpAddr::new(TxnId(2), 0);
        assert_eq!(s.version_fn(OpAddr::new(TxnId(1), 0)), OpId::Op(w2));
        assert!(s.vless(OpId::Init, OpId::Op(w2)));
        assert!(!s.vless(OpId::Op(w2), OpId::Init));
    }

    #[test]
    fn bad_serial_order_rejected() {
        let txns = two_txns();
        assert_eq!(
            Schedule::single_version_serial(Arc::clone(&txns), &[TxnId(1)]).unwrap_err(),
            ScheduleError::BadSerialOrder
        );
        assert_eq!(
            Schedule::single_version_serial(txns, &[TxnId(1), TxnId(1)]).unwrap_err(),
            ScheduleError::BadSerialOrder
        );
    }

    #[test]
    fn interleaved_schedule_detected() {
        let txns = two_txns();
        // R1[x] W2[x] C2 W1[y] C1 — T2 interleaves with T1.
        let r1 = OpId::op(TxnId(1), 0);
        let w1 = OpId::op(TxnId(1), 1);
        let w2 = OpId::op(TxnId(2), 0);
        let order = vec![r1, w2, OpId::Commit(TxnId(2)), w1, OpId::Commit(TxnId(1))];
        let mut versions = HashMap::new();
        versions.insert(Object(0), vec![OpAddr::new(TxnId(2), 0)]);
        versions.insert(Object(1), vec![OpAddr::new(TxnId(1), 1)]);
        let mut reads_from = HashMap::new();
        reads_from.insert(OpAddr::new(TxnId(1), 0), OpId::Init);
        let s = Schedule::new(txns, order, versions, reads_from).unwrap();
        assert!(!s.is_serial());
        assert!(s.is_single_version());
        assert!(s.concurrent(TxnId(1), TxnId(2)));
        assert!(s.before(r1, w2));
        assert!(s.before(OpId::Init, r1));
        assert!(!s.before(r1, OpId::Init));
    }

    #[test]
    fn multiversion_read_of_old_version() {
        let txns = two_txns();
        // W2[x] C2 R1[x] W1[y] C1 with R1[x] still reading op0 (an old
        // version) — legal in a multiversion schedule.
        let order = vec![
            OpId::op(TxnId(2), 0),
            OpId::Commit(TxnId(2)),
            OpId::op(TxnId(1), 0),
            OpId::op(TxnId(1), 1),
            OpId::Commit(TxnId(1)),
        ];
        let mut versions = HashMap::new();
        versions.insert(Object(0), vec![OpAddr::new(TxnId(2), 0)]);
        versions.insert(Object(1), vec![OpAddr::new(TxnId(1), 1)]);
        let mut reads_from = HashMap::new();
        reads_from.insert(OpAddr::new(TxnId(1), 0), OpId::Init);
        let s = Schedule::new(txns, order, versions, reads_from).unwrap();
        assert!(!s.is_single_version());
        assert!(s.is_serial());
    }

    #[test]
    fn validation_rejects_missing_and_dup_ops() {
        let txns = two_txns();
        let err = Schedule::new(
            Arc::clone(&txns),
            vec![OpId::op(TxnId(1), 0)],
            HashMap::new(),
            HashMap::new(),
        )
        .unwrap_err();
        assert!(matches!(err, ScheduleError::OrderMismatch(_)));

        let order = vec![
            OpId::op(TxnId(1), 0),
            OpId::op(TxnId(1), 0),
            OpId::op(TxnId(1), 1),
            OpId::Commit(TxnId(1)),
            OpId::op(TxnId(2), 0),
        ];
        let err =
            Schedule::new(Arc::clone(&txns), order, HashMap::new(), HashMap::new()).unwrap_err();
        assert!(matches!(err, ScheduleError::OrderMismatch(_)));
    }

    #[test]
    fn validation_rejects_program_order_violation() {
        let txns = two_txns();
        let order = vec![
            OpId::op(TxnId(1), 1),
            OpId::op(TxnId(1), 0),
            OpId::Commit(TxnId(1)),
            OpId::op(TxnId(2), 0),
            OpId::Commit(TxnId(2)),
        ];
        let mut versions = HashMap::new();
        versions.insert(Object(0), vec![OpAddr::new(TxnId(2), 0)]);
        versions.insert(Object(1), vec![OpAddr::new(TxnId(1), 1)]);
        let err = Schedule::new(txns, order, versions, HashMap::new()).unwrap_err();
        assert!(matches!(
            err,
            ScheduleError::ProgramOrderViolated { txn: TxnId(1), .. }
        ));
    }

    #[test]
    fn validation_rejects_bad_version_function() {
        let txns = two_txns();
        let order = vec![
            OpId::op(TxnId(1), 0),
            OpId::op(TxnId(1), 1),
            OpId::Commit(TxnId(1)),
            OpId::op(TxnId(2), 0),
            OpId::Commit(TxnId(2)),
        ];
        let mut versions = HashMap::new();
        versions.insert(Object(0), vec![OpAddr::new(TxnId(2), 0)]);
        versions.insert(Object(1), vec![OpAddr::new(TxnId(1), 1)]);

        // Missing entry for the read.
        let err = Schedule::new(
            Arc::clone(&txns),
            order.clone(),
            versions.clone(),
            HashMap::new(),
        )
        .unwrap_err();
        assert!(matches!(err, ScheduleError::VersionFunctionDomain(_)));

        // Read of a version written later in the schedule.
        let mut rf = HashMap::new();
        rf.insert(OpAddr::new(TxnId(1), 0), OpId::op(TxnId(2), 0));
        let err =
            Schedule::new(Arc::clone(&txns), order.clone(), versions.clone(), rf).unwrap_err();
        assert!(matches!(err, ScheduleError::VersionNotBeforeRead { .. }));

        // Read observing a write on a different object.
        let mut rf = HashMap::new();
        rf.insert(OpAddr::new(TxnId(1), 0), OpId::op(TxnId(1), 1));
        let err = Schedule::new(Arc::clone(&txns), order, versions, rf).unwrap_err();
        assert!(matches!(err, ScheduleError::VersionWrongObject { .. }));
    }

    #[test]
    fn validation_rejects_bad_version_order() {
        let txns = two_txns();
        let order = vec![
            OpId::op(TxnId(1), 0),
            OpId::op(TxnId(1), 1),
            OpId::Commit(TxnId(1)),
            OpId::op(TxnId(2), 0),
            OpId::Commit(TxnId(2)),
        ];
        // Version order for x missing T2's write.
        let mut versions = HashMap::new();
        versions.insert(Object(1), vec![OpAddr::new(TxnId(1), 1)]);
        let mut rf = HashMap::new();
        rf.insert(OpAddr::new(TxnId(1), 0), OpId::Init);
        let err = Schedule::new(txns, order, versions, rf).unwrap_err();
        assert_eq!(err, ScheduleError::VersionOrderMismatch(Object(0)));
    }

    #[test]
    fn vless_requires_same_object() {
        let txns = two_txns();
        let s = Schedule::single_version_serial(txns, &[TxnId(1), TxnId(2)]).unwrap();
        // W1[y] and W2[x] are on different objects: incomparable.
        let w1y = OpId::op(TxnId(1), 1);
        let w2x = OpId::op(TxnId(2), 0);
        assert!(!s.vless(w1y, w2x));
        assert!(!s.vless(w2x, w1y));
        // op0 ≪ every write.
        assert!(s.vless(OpId::Init, w1y));
        assert!(s.vless(OpId::Init, w2x));
        assert!(!s.vless(OpId::Init, OpId::Init));
        // Commits are never version-ordered.
        assert!(!s.vless(OpId::Commit(TxnId(1)), w1y));
    }
}
