//! Dependencies between conflicting operations in a schedule (§2.2).

use crate::ids::{OpAddr, OpId};
use crate::schedule::Schedule;

/// The kind of a dependency `b →_s a`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum DepKind {
    /// ww-dependency: `b` and `a` write the same object and `b ≪_s a`.
    Ww,
    /// wr-dependency: `b` writes what `a` reads — `b = v_s(a)` or
    /// `b ≪_s v_s(a)`.
    Wr,
    /// rw-antidependency: `a` overwrites what `b` read — `v_s(b) ≪_s a`.
    RwAnti,
}

impl std::fmt::Display for DepKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DepKind::Ww => "ww",
            DepKind::Wr => "wr",
            DepKind::RwAnti => "rw",
        })
    }
}

/// A dependency `from →_s to` between operations of different transactions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Dependency {
    pub from: OpAddr,
    pub to: OpAddr,
    pub kind: DepKind,
}

/// Computes all dependencies of a schedule, grouped per object pair.
///
/// For every pair of conflicting operations exactly one dependency holds
/// (in one direction): version orders are total per object, so ww pairs are
/// ordered by `≪_s`, and a wr pair `(W, R)` yields either the
/// wr-dependency `W → R` (when `W ⊑ v_s(R)`) or the rw-antidependency
/// `R → W` (when `v_s(R) ≪_s W`).
pub fn dependencies(s: &Schedule) -> Vec<Dependency> {
    let txns = s.txns();
    let mut deps = Vec::new();
    for object in txns.objects() {
        let writers = txns.writers_of(object);
        let readers = txns.readers_of(object);
        for (i, &wi) in writers.iter().enumerate() {
            for &wj in &writers[i + 1..] {
                let (a, b) = (OpId::Op(wi), OpId::Op(wj));
                if s.vless(a, b) {
                    deps.push(Dependency {
                        from: wi,
                        to: wj,
                        kind: DepKind::Ww,
                    });
                } else {
                    debug_assert!(s.vless(b, a), "version order must be total per object");
                    deps.push(Dependency {
                        from: wj,
                        to: wi,
                        kind: DepKind::Ww,
                    });
                }
            }
        }
        for &r in &readers {
            let v = s.version_fn(r);
            for &w in &writers {
                if w.txn == r.txn {
                    continue;
                }
                let wid = OpId::Op(w);
                if wid == v || s.vless(wid, v) {
                    deps.push(Dependency {
                        from: w,
                        to: r,
                        kind: DepKind::Wr,
                    });
                } else {
                    debug_assert!(
                        s.vless(v, wid),
                        "v_s(read) and writer must be version-comparable"
                    );
                    deps.push(Dependency {
                        from: r,
                        to: w,
                        kind: DepKind::RwAnti,
                    });
                }
            }
        }
    }
    deps
}

/// Whether two schedules are conflict equivalent (§2.2): same transaction
/// set and, for every pair of conflicting operations, the same dependency
/// orientation.
///
/// Since exactly one dependency holds per conflicting pair in any schedule,
/// equality of dependency sets captures the definition.
pub fn conflict_equivalent(a: &Schedule, b: &Schedule) -> bool {
    if a.txns() != b.txns() {
        return false;
    }
    let mut da = dependencies(a);
    let mut db = dependencies(b);
    da.sort_unstable();
    db.sort_unstable();
    da == db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure_2;
    use crate::ids::{Object, TxnId};
    use crate::schedule::Schedule;
    use crate::txnset::TxnSetBuilder;

    use std::sync::Arc;

    #[test]
    fn figure_2_named_dependencies() {
        let s = figure_2();
        let deps = dependencies(&s);
        let has =
            |from: OpAddr, to: OpAddr, kind: DepKind| deps.contains(&Dependency { from, to, kind });
        let w2t = OpAddr {
            txn: TxnId(2),
            idx: 1,
        };
        let w4t = OpAddr {
            txn: TxnId(4),
            idx: 2,
        };
        let w3v = OpAddr {
            txn: TxnId(3),
            idx: 1,
        };
        let r4v = OpAddr {
            txn: TxnId(4),
            idx: 1,
        };
        let r4t = OpAddr {
            txn: TxnId(4),
            idx: 0,
        };
        // The three dependencies the paper names below Figure 2.
        assert!(has(w2t, w4t, DepKind::Ww), "W2[t] → W4[t] ww");
        assert!(has(w3v, r4v, DepKind::Wr), "W3[v] → R4[v] wr");
        assert!(has(r4t, w2t, DepKind::RwAnti), "R4[t] → W2[t] rw");
    }

    #[test]
    fn figure_2_antidependencies_from_initial_reads() {
        let s = figure_2();
        let deps = dependencies(&s);
        let r1t = OpAddr {
            txn: TxnId(1),
            idx: 0,
        };
        let w2t = OpAddr {
            txn: TxnId(2),
            idx: 1,
        };
        let r2v = OpAddr {
            txn: TxnId(2),
            idx: 2,
        };
        let w3v = OpAddr {
            txn: TxnId(3),
            idx: 1,
        };
        // R1[t] read op0 which precedes W2[t] in the version order.
        assert!(deps.contains(&Dependency {
            from: r1t,
            to: w2t,
            kind: DepKind::RwAnti
        }));
        // R2[v] read op0 although T3 already installed a version of v.
        assert!(deps.contains(&Dependency {
            from: r2v,
            to: w3v,
            kind: DepKind::RwAnti
        }));
    }

    #[test]
    fn each_conflicting_pair_oriented_once() {
        let s = figure_2();
        let deps = dependencies(&s);
        let mut pairs: Vec<(OpAddr, OpAddr)> = deps
            .iter()
            .map(|d| {
                let (x, y) = (d.from.min(d.to), d.from.max(d.to));
                (x, y)
            })
            .collect();
        let n = pairs.len();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), n, "no conflicting pair is oriented twice");
    }

    #[test]
    fn conflict_equivalence_of_serial_orders() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        b.txn(1).read(x).finish();
        b.txn(2).write(x).finish();
        let txns = Arc::new(b.build().unwrap());
        let s12 =
            Schedule::single_version_serial(Arc::clone(&txns), &[TxnId(1), TxnId(2)]).unwrap();
        let s21 = Schedule::single_version_serial(txns, &[TxnId(2), TxnId(1)]).unwrap();
        assert!(conflict_equivalent(&s12, &s12));
        // Opposite orders orient the R-W pair differently.
        assert!(!conflict_equivalent(&s12, &s21));
    }

    #[test]
    fn equivalence_requires_same_txn_set() {
        let mut b1 = TxnSetBuilder::new();
        let x = b1.object("x");
        b1.txn(1).read(x).finish();
        let t1 = Arc::new(b1.build().unwrap());
        let mut b2 = TxnSetBuilder::new();
        let y = b2.object("x");
        b2.txn(1).write(y).finish();
        let t2 = Arc::new(b2.build().unwrap());
        let s1 = Schedule::single_version_serial(t1, &[TxnId(1)]).unwrap();
        let s2 = Schedule::single_version_serial(t2, &[TxnId(1)]).unwrap();
        assert!(!conflict_equivalent(&s1, &s2));
    }

    #[test]
    fn no_dependency_without_conflict() {
        // Disjoint objects → no dependencies at all.
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).write(x).finish();
        b.txn(2).write(y).finish();
        let txns = Arc::new(b.build().unwrap());
        let s = Schedule::single_version_serial(txns, &[TxnId(1), TxnId(2)]).unwrap();
        assert!(dependencies(&s).is_empty());
    }

    #[test]
    fn figure_2_concurrency_matches_example_2_5() {
        let s = figure_2();
        assert!(s.concurrent(TxnId(1), TxnId(2)));
        assert!(s.concurrent(TxnId(1), TxnId(4)));
        assert!(!s.concurrent(TxnId(1), TxnId(3)));
        assert!(s.concurrent(TxnId(2), TxnId(3)));
        assert!(s.concurrent(TxnId(2), TxnId(4)));
        assert!(s.concurrent(TxnId(3), TxnId(4)));
        let _ = Object(0);
    }
}
