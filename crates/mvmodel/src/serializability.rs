//! Conflict serializability (Definition 2.1 / Theorem 2.2).

use crate::dependency::conflict_equivalent;
use crate::graph::SerializationGraph;
use crate::ids::TxnId;
use crate::schedule::Schedule;

/// Whether a schedule is conflict serializable: by Theorem 2.2, iff its
/// serialization graph is acyclic.
pub fn is_conflict_serializable(s: &Schedule) -> bool {
    SerializationGraph::of(s).is_acyclic()
}

/// A serial transaction order witnessing serializability, or `None` when
/// the schedule is not conflict serializable.
///
/// The returned order is a topological order of `SeG(s)`; executing the
/// transactions serially in that order is conflict equivalent to `s`
/// (machine-checked by [`equivalent_serial_schedule`]).
pub fn serialization_order(s: &Schedule) -> Option<Vec<TxnId>> {
    SerializationGraph::of(s).topological_order()
}

/// Constructs a single-version serial schedule conflict-equivalent to `s`,
/// or `None` when `s` is not conflict serializable.
///
/// This is the constructive content of Theorem 2.2: in a serial schedule
/// all conflicting pairs are oriented along the serial order; since a
/// topological order of `SeG(s)` places every dependency of `s` forward,
/// the serial schedule orients every pair exactly as `s` does.
pub fn equivalent_serial_schedule(s: &Schedule) -> Option<Schedule> {
    let order = serialization_order(s)?;
    let serial = Schedule::single_version_serial(s.txns_arc(), &order)
        .expect("topological order enumerates all transactions");
    debug_assert!(
        conflict_equivalent(s, &serial),
        "Theorem 2.2 construction must hold"
    );
    Some(serial)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure_2;
    use crate::txnset::TxnSetBuilder;
    use std::sync::Arc;

    #[test]
    fn figure_2_not_serializable() {
        let s = figure_2();
        assert!(!is_conflict_serializable(&s));
        assert!(serialization_order(&s).is_none());
        assert!(equivalent_serial_schedule(&s).is_none());
    }

    #[test]
    fn serial_schedules_are_serializable() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).write(x).read(y).finish();
        let txns = Arc::new(b.build().unwrap());
        for order in [[TxnId(1), TxnId(2)], [TxnId(2), TxnId(1)]] {
            let s = Schedule::single_version_serial(Arc::clone(&txns), &order).unwrap();
            assert!(is_conflict_serializable(&s));
            let w = serialization_order(&s).unwrap();
            assert_eq!(w, order.to_vec());
            let eq = equivalent_serial_schedule(&s).unwrap();
            assert!(conflict_equivalent(&s, &eq));
        }
    }

    #[test]
    fn interleaved_but_serializable() {
        // R1[x] W2[y] C2 W1[y]? — need a serializable interleaving:
        // R1[x] W2[x] W1[y] C1 C2 with T1 = R[x] W[y], T2 = W[x].
        // T1 reads op0 (before T2's version), so T1 → T2 (rw) only:
        // acyclic, equivalent to T1 T2.
        use crate::ids::{Object, OpAddr, OpId};
        use std::collections::HashMap;
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        let _ = (x, y);
        b.txn(1).read(x).write(y).finish();
        b.txn(2).write(x).finish();
        let txns = Arc::new(b.build().unwrap());
        let r1 = OpAddr {
            txn: TxnId(1),
            idx: 0,
        };
        let w1 = OpAddr {
            txn: TxnId(1),
            idx: 1,
        };
        let w2 = OpAddr {
            txn: TxnId(2),
            idx: 0,
        };
        let order = vec![
            OpId::Op(r1),
            OpId::Op(w2),
            OpId::Op(w1),
            OpId::Commit(TxnId(1)),
            OpId::Commit(TxnId(2)),
        ];
        let mut versions = HashMap::new();
        versions.insert(Object(0), vec![w2]);
        versions.insert(Object(1), vec![w1]);
        let mut rf = HashMap::new();
        rf.insert(r1, OpId::Init);
        let s = Schedule::new(txns, order, versions, rf).unwrap();
        assert!(!s.is_serial());
        assert!(is_conflict_serializable(&s));
        assert_eq!(serialization_order(&s).unwrap(), vec![TxnId(1), TxnId(2)]);
        let serial = equivalent_serial_schedule(&s).unwrap();
        assert!(serial.is_serial());
        assert!(serial.is_single_version());
    }

    #[test]
    fn empty_set_is_serializable() {
        let txns = Arc::new(TxnSetBuilder::new().build().unwrap());
        let s = Schedule::single_version_serial(txns, &[]).unwrap();
        assert!(is_conflict_serializable(&s));
        assert_eq!(serialization_order(&s).unwrap(), Vec::<TxnId>::new());
    }
}
