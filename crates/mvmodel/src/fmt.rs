//! Human-readable rendering of schedules and transactions in the paper's
//! notation (`R1[x] W2[y] C1 …`).

use crate::ids::OpId;
use crate::schedule::Schedule;
use crate::transaction::Transaction;
use crate::txnset::TransactionSet;
use std::fmt::Write as _;

/// Renders a transaction as `T1: R[x] W[y] C`.
pub fn transaction(txns: &TransactionSet, t: &Transaction) -> String {
    let mut out = format!("{}:", t.id());
    for op in t.ops() {
        let _ = write!(
            out,
            " {}[{}]",
            op.kind.letter(),
            txns.object_name(op.object)
        );
    }
    out.push_str(" C");
    out
}

/// Renders a whole transaction set, one transaction per line.
pub fn transaction_set(txns: &TransactionSet) -> String {
    let mut out = String::new();
    for t in txns.iter() {
        out.push_str(&transaction(txns, t));
        out.push('\n');
    }
    out
}

/// Renders the operation order of a schedule in the paper's inline
/// notation, e.g. `R2[t] W2[t] C2 …`.
pub fn schedule_order(s: &Schedule) -> String {
    let txns = s.txns();
    let mut parts = Vec::with_capacity(s.order().len());
    for &op in s.order() {
        match op {
            OpId::Init => parts.push("op0".to_string()),
            OpId::Op(a) => {
                let o = txns.op_at(a);
                parts.push(format!(
                    "{}{}[{}]",
                    o.kind.letter(),
                    a.txn.0,
                    txns.object_name(o.object)
                ));
            }
            OpId::Commit(t) => parts.push(format!("C{}", t.0)),
        }
    }
    parts.join(" ")
}

/// Renders a schedule including its version order and version function,
/// suitable for diagnostics and the CLI's `witness` output.
pub fn schedule_full(s: &Schedule) -> String {
    let txns = s.txns();
    let mut out = schedule_order(s);
    out.push('\n');
    for object in txns.objects() {
        let writes = s.version_order(object);
        if writes.is_empty() {
            continue;
        }
        let _ = write!(out, "  <<_{}: op0", txns.object_name(object));
        for w in writes {
            let _ = write!(out, " << W{}[{}]", w.txn.0, txns.object_name(object));
        }
        out.push('\n');
    }
    for t in txns.iter() {
        for (addr, object) in t.reads() {
            let v = s.version_fn(addr);
            let vs = match v {
                OpId::Init => "op0".to_string(),
                OpId::Op(w) => format!("W{}[{}]", w.txn.0, txns.object_name(object)),
                OpId::Commit(_) => unreachable!("v_s never maps to a commit"),
            };
            let _ = writeln!(
                out,
                "  v(R{}[{}]) = {}",
                addr.txn.0,
                txns.object_name(object),
                vs
            );
        }
    }
    out
}

/// Renders a schedule's serialization graph in Graphviz DOT format, with
/// dependency kinds as edge labels (rw-antidependencies dashed, as is
/// conventional in the SSI literature).
pub fn serialization_graph_dot(s: &Schedule) -> String {
    use crate::dependency::{dependencies, DepKind};
    let txns = s.txns();
    let mut out = String::from("digraph SeG {\n  rankdir=LR;\n  node [shape=circle];\n");
    for t in txns.iter() {
        let _ = writeln!(out, "  T{};", t.id().0);
    }
    // One edge per (from, to, kind) with merged operation labels.
    let mut edges: std::collections::BTreeMap<(u32, u32, &str), Vec<String>> =
        std::collections::BTreeMap::new();
    for d in dependencies(s) {
        let kind = match d.kind {
            DepKind::Ww => "ww",
            DepKind::Wr => "wr",
            DepKind::RwAnti => "rw",
        };
        let from_op = s.txns().op_at(d.from);
        let label = format!(
            "{}[{}]",
            from_op.kind.letter(),
            txns.object_name(from_op.object)
        );
        edges
            .entry((d.from.txn.0, d.to.txn.0, kind))
            .or_default()
            .push(label);
    }
    for ((from, to, kind), mut labels) in edges {
        labels.sort();
        labels.dedup();
        let style = if kind == "rw" { ", style=dashed" } else { "" };
        let _ = writeln!(
            out,
            "  T{from} -> T{to} [label=\"{kind}: {}\"{style}];",
            labels.join(", ")
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TxnId;
    use crate::txnset::TxnSetBuilder;
    use std::sync::Arc;

    #[test]
    fn renders_transactions() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).read(x).write(y).finish();
        let set = b.build().unwrap();
        assert_eq!(transaction(&set, set.txn(TxnId(1))), "T1: R[x] W[y] C");
        assert_eq!(transaction_set(&set), "T1: R[x] W[y] C\n");
    }

    #[test]
    fn renders_dot_graph() {
        let s = crate::fixtures::figure_2();
        let dot = serialization_graph_dot(&s);
        assert!(dot.starts_with("digraph SeG {"));
        assert!(dot.contains("T1;"));
        assert!(dot.contains("T2 -> T4"));
        assert!(dot.contains("style=dashed"), "antidependencies dashed");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn renders_schedule_order_and_versions() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        b.txn(1).read(x).finish();
        b.txn(2).write(x).finish();
        let txns = Arc::new(b.build().unwrap());
        let s = Schedule::single_version_serial(txns, &[TxnId(2), TxnId(1)]).unwrap();
        assert_eq!(schedule_order(&s), "W2[x] C2 R1[x] C1");
        let full = schedule_full(&s);
        assert!(full.contains("<<_x: op0 << W2[x]"));
        assert!(full.contains("v(R1[x]) = W2[x]"));
    }
}
