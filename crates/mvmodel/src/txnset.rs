//! Sets of transactions with interned, optionally named objects.

use crate::error::ModelError;
use crate::ids::{Object, OpAddr, TxnId};
use crate::transaction::{Op, Transaction};
use std::collections::HashMap;

/// A finite set of transactions `𝒯`, the unit over which robustness and
/// allocation are decided.
///
/// Transaction ids may be sparse; [`TransactionSet::index_of`] provides the
/// dense index used by the algorithmic crates. Object names registered
/// through [`TxnSetBuilder::object`] are retained for display.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TransactionSet {
    txns: Vec<Transaction>,
    index: HashMap<TxnId, usize>,
    object_names: Vec<String>,
}

impl TransactionSet {
    /// Builds a set from transactions, rejecting duplicate ids. Transactions
    /// are kept sorted by id.
    pub fn new(mut txns: Vec<Transaction>) -> Result<Self, ModelError> {
        txns.sort_by_key(|t| t.id());
        let mut index = HashMap::with_capacity(txns.len());
        for (i, t) in txns.iter().enumerate() {
            if index.insert(t.id(), i).is_some() {
                return Err(ModelError::DuplicateTxnId(t.id()));
            }
        }
        Ok(TransactionSet {
            txns,
            index,
            object_names: Vec::new(),
        })
    }

    /// As [`TransactionSet::new`], additionally recording display names for
    /// objects `Object(0)..Object(names.len())`.
    pub fn with_object_names(
        txns: Vec<Transaction>,
        names: Vec<String>,
    ) -> Result<Self, ModelError> {
        let mut set = Self::new(txns)?;
        set.object_names = names;
        Ok(set)
    }

    /// Number of transactions (`|𝒯|`).
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// Transactions in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = &Transaction> {
        self.txns.iter()
    }

    /// Transaction ids in ascending order.
    pub fn ids(&self) -> impl Iterator<Item = TxnId> + '_ {
        self.txns.iter().map(|t| t.id())
    }

    pub fn contains(&self, id: TxnId) -> bool {
        self.index.contains_key(&id)
    }

    pub fn get(&self, id: TxnId) -> Option<&Transaction> {
        self.index.get(&id).map(|&i| &self.txns[i])
    }

    /// The transaction with the given id. Panics if absent.
    pub fn txn(&self, id: TxnId) -> &Transaction {
        self.get(id)
            .unwrap_or_else(|| panic!("transaction {id} not in set"))
    }

    /// Dense index of a transaction id (stable across the set's lifetime).
    pub fn index_of(&self, id: TxnId) -> usize {
        self.index[&id]
    }

    /// Transaction at a dense index.
    pub fn by_index(&self, idx: usize) -> &Transaction {
        &self.txns[idx]
    }

    /// The operation at an address. Panics if the address is invalid.
    pub fn op_at(&self, addr: OpAddr) -> Op {
        self.txn(addr.txn).op(addr.idx)
    }

    /// All objects touched by any transaction, ascending.
    pub fn objects(&self) -> Vec<Object> {
        let mut objs: Vec<Object> = self
            .txns
            .iter()
            .flat_map(|t| t.ops().iter().map(|op| op.object))
            .collect();
        objs.sort_unstable();
        objs.dedup();
        objs
    }

    /// Total number of read/write operations over all transactions (the
    /// paper's `k`).
    pub fn total_ops(&self) -> usize {
        self.txns.iter().map(|t| t.len()).sum()
    }

    /// Maximum number of operations in a single transaction (the paper's
    /// `ℓ`).
    pub fn max_ops(&self) -> usize {
        self.txns.iter().map(|t| t.len()).max().unwrap_or(0)
    }

    /// Addresses of all writes on `object`, grouped per transaction
    /// (ascending transaction id).
    pub fn writers_of(&self, object: Object) -> Vec<OpAddr> {
        self.txns
            .iter()
            .filter_map(|t| t.write_of(object).map(|i| OpAddr::new(t.id(), i)))
            .collect()
    }

    /// Addresses of all reads on `object` (ascending transaction id).
    pub fn readers_of(&self, object: Object) -> Vec<OpAddr> {
        self.txns
            .iter()
            .filter_map(|t| t.read_of(object).map(|i| OpAddr::new(t.id(), i)))
            .collect()
    }

    /// Display name of an object: the registered name, or `o<n>`.
    pub fn object_name(&self, object: Object) -> String {
        self.object_names
            .get(object.0 as usize)
            .cloned()
            .unwrap_or_else(|| object.to_string())
    }

    /// The registered object names (index = object id).
    pub fn object_names(&self) -> &[String] {
        &self.object_names
    }

    /// Looks up an object id by registered name.
    pub fn object_by_name(&self, name: &str) -> Option<Object> {
        self.object_names
            .iter()
            .position(|n| n == name)
            .map(|i| Object(i as u32))
    }

    /// Interns an object name against this set, returning the existing id
    /// or registering a fresh one. Counterpart of [`TxnSetBuilder::object`]
    /// for sets that grow after construction (the online registry path).
    pub fn intern_object(&mut self, name: &str) -> Object {
        if let Some(o) = self.object_by_name(name) {
            return o;
        }
        let o = Object(self.object_names.len() as u32);
        self.object_names.push(name.to_string());
        o
    }

    /// Inserts a transaction into the set, keeping the id order and dense
    /// indices consistent. Rejects duplicate ids.
    pub fn insert(&mut self, txn: Transaction) -> Result<(), ModelError> {
        if self.index.contains_key(&txn.id()) {
            return Err(ModelError::DuplicateTxnId(txn.id()));
        }
        let pos = self.txns.partition_point(|t| t.id() < txn.id());
        self.txns.insert(pos, txn);
        self.reindex();
        Ok(())
    }

    /// Removes the transaction with the given id, returning it (or `None`
    /// when absent). Dense indices of later transactions shift down.
    pub fn remove(&mut self, id: TxnId) -> Option<Transaction> {
        let pos = *self.index.get(&id)?;
        let txn = self.txns.remove(pos);
        self.reindex();
        Some(txn)
    }

    fn reindex(&mut self) {
        self.index.clear();
        for (i, t) in self.txns.iter().enumerate() {
            self.index.insert(t.id(), i);
        }
    }
}

/// Fluent builder for [`TransactionSet`]s with object-name interning.
///
/// ```
/// use mvmodel::TxnSetBuilder;
///
/// let mut b = TxnSetBuilder::new();
/// let x = b.object("x");
/// b.txn(1).read(x).write(x).finish();
/// let set = b.build().unwrap();
/// assert_eq!(set.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct TxnSetBuilder {
    txns: Vec<Transaction>,
    names: Vec<String>,
    name_index: HashMap<String, Object>,
    error: Option<ModelError>,
}

impl TxnSetBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an object name, returning a stable [`Object`] id.
    pub fn object(&mut self, name: &str) -> Object {
        if let Some(&o) = self.name_index.get(name) {
            return o;
        }
        let o = Object(self.names.len() as u32);
        self.names.push(name.to_string());
        self.name_index.insert(name.to_string(), o);
        o
    }

    /// Starts a transaction with the given id; finish it with
    /// [`TxnBuilder::finish`].
    pub fn txn(&mut self, id: impl Into<TxnId>) -> TxnBuilder<'_> {
        TxnBuilder {
            set: self,
            id: id.into(),
            ops: Vec::new(),
        }
    }

    /// Adds a pre-built transaction.
    pub fn push(&mut self, txn: Transaction) -> &mut Self {
        self.txns.push(txn);
        self
    }

    /// Finalizes the set. Errors from any intermediate step are reported
    /// here.
    pub fn build(self) -> Result<TransactionSet, ModelError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        TransactionSet::with_object_names(self.txns, self.names)
    }
}

/// Builder for a single transaction inside a [`TxnSetBuilder`].
#[derive(Debug)]
pub struct TxnBuilder<'a> {
    set: &'a mut TxnSetBuilder,
    id: TxnId,
    ops: Vec<Op>,
}

impl TxnBuilder<'_> {
    pub fn read(mut self, object: Object) -> Self {
        self.ops.push(Op::read(object));
        self
    }

    pub fn write(mut self, object: Object) -> Self {
        self.ops.push(Op::write(object));
        self
    }

    /// Convenience: read an object by (interned) name.
    pub fn read_named(mut self, name: &str) -> Self {
        let o = self.set.object(name);
        self.ops.push(Op::read(o));
        self
    }

    /// Convenience: write an object by (interned) name.
    pub fn write_named(mut self, name: &str) -> Self {
        let o = self.set.object(name);
        self.ops.push(Op::write(o));
        self
    }

    /// Completes the transaction and returns to the set builder.
    pub fn finish(self) {
        match Transaction::new(self.id, self.ops) {
            Ok(t) => self.set.txns.push(t),
            Err(e) => {
                if self.set.error.is_none() {
                    self.set.error = Some(e);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::OpKind;

    #[test]
    fn builder_interns_objects() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let x2 = b.object("x");
        let y = b.object("y");
        assert_eq!(x, x2);
        assert_ne!(x, y);
        b.txn(1).read(x).write(y).finish();
        let set = b.build().unwrap();
        assert_eq!(set.object_name(x), "x");
        assert_eq!(set.object_by_name("y"), Some(y));
        assert_eq!(set.object_by_name("z"), None);
    }

    #[test]
    fn duplicate_ids_rejected() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        b.txn(1).read(x).finish();
        b.txn(1).write(x).finish();
        assert_eq!(b.build().unwrap_err(), ModelError::DuplicateTxnId(TxnId(1)));
    }

    #[test]
    fn builder_enforces_u16_op_bound() {
        // 65_535 operations is the largest transaction the model admits
        // (operation indices are u16); one more must be rejected with a
        // readable error, not silently truncated.
        let max = u16::MAX as u32;
        for (count, ok) in [(max, true), (max + 1, false)] {
            let mut b = TxnSetBuilder::new();
            let objs: Vec<Object> = (0..count).map(|i| b.object(&format!("o{i}"))).collect();
            let mut t = b.txn(1);
            for &o in &objs {
                t = t.read(o);
            }
            t.finish();
            let result = b.build();
            if ok {
                let set = result.expect("65535 operations are within the model");
                assert_eq!(set.total_ops(), max as usize);
            } else {
                let err = result.unwrap_err();
                assert!(matches!(err, ModelError::TooManyOperations(TxnId(1))));
                assert_eq!(err.to_string(), "T1 has more than 65535 operations");
            }
        }
    }

    #[test]
    fn builder_propagates_txn_errors() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        b.txn(1).read(x).read(x).finish();
        assert!(matches!(
            b.build().unwrap_err(),
            ModelError::DuplicateOperation {
                kind: OpKind::Read,
                ..
            }
        ));
    }

    #[test]
    fn set_statistics() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(2).read(x).write(x).write(y).finish();
        b.txn(1).read(y).finish();
        let set = b.build().unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.total_ops(), 4);
        assert_eq!(set.max_ops(), 3);
        // Sorted by id regardless of insertion order.
        let ids: Vec<_> = set.ids().collect();
        assert_eq!(ids, vec![TxnId(1), TxnId(2)]);
        assert_eq!(set.index_of(TxnId(1)), 0);
        assert_eq!(set.by_index(1).id(), TxnId(2));
        assert_eq!(set.objects(), vec![x, y]);
        assert_eq!(set.writers_of(x).len(), 1);
        assert_eq!(set.readers_of(y).len(), 1);
        assert_eq!(set.readers_of(x), vec![OpAddr::new(TxnId(2), 0)]);
    }

    #[test]
    fn insert_remove_keep_order_and_indices() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        b.txn(1).read(x).finish();
        b.txn(5).write(x).finish();
        let mut set = b.build().unwrap();

        // Insert between existing ids: order and dense indices update.
        let t3 = Transaction::new(TxnId(3), vec![Op::read(x)]).unwrap();
        set.insert(t3).unwrap();
        let ids: Vec<_> = set.ids().collect();
        assert_eq!(ids, vec![TxnId(1), TxnId(3), TxnId(5)]);
        assert_eq!(set.index_of(TxnId(3)), 1);
        assert_eq!(set.index_of(TxnId(5)), 2);

        // Duplicate ids rejected without mutating the set.
        let dup = Transaction::new(TxnId(3), vec![Op::write(x)]).unwrap();
        assert_eq!(set.insert(dup), Err(ModelError::DuplicateTxnId(TxnId(3))));
        assert_eq!(set.len(), 3);

        // Remove shifts the dense indices back down.
        let removed = set.remove(TxnId(3)).unwrap();
        assert_eq!(removed.id(), TxnId(3));
        assert_eq!(set.remove(TxnId(3)), None);
        assert_eq!(set.index_of(TxnId(5)), 1);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn intern_object_after_build() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        b.txn(1).read(x).finish();
        let mut set = b.build().unwrap();
        assert_eq!(set.intern_object("x"), x);
        let y = set.intern_object("y");
        assert_ne!(x, y);
        assert_eq!(set.object_by_name("y"), Some(y));
        assert_eq!(set.object_name(y), "y");
        assert_eq!(set.intern_object("y"), y);
    }

    #[test]
    fn named_ops_via_txn_builder() {
        let mut b = TxnSetBuilder::new();
        b.txn(1).read_named("a").write_named("b").finish();
        let set = b.build().unwrap();
        let t = set.txn(TxnId(1));
        assert_eq!(t.len(), 2);
        assert_eq!(set.object_name(t.op(0).object), "a");
        assert_eq!(set.object_name(t.op(1).object), "b");
    }
}
