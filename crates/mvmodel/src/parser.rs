//! Text format for transaction workloads.
//!
//! One transaction per line:
//!
//! ```text
//! # comment lines and blank lines are ignored
//! T1: R[x] W[y]
//! T2: W(x) R(z)     -- parentheses and brackets are interchangeable
//! ```
//!
//! The trailing commit is implicit; a literal `C` at the end of a line is
//! accepted and ignored. Object names are identifiers (`[A-Za-z0-9_.-]+`).

use crate::error::{ModelError, ParseError};
use crate::ids::TxnId;
use crate::transaction::{Op, Transaction};
use crate::txnset::{TransactionSet, TxnSetBuilder};

/// Parses a workload in the textual format described at module level.
pub fn parse_transactions(input: &str) -> Result<TransactionSet, ParseError> {
    let mut b = TxnSetBuilder::new();
    let mut any_error: Option<ParseError> = None;
    for (lineno, raw) in input.lines().enumerate() {
        let lineno = lineno + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let (head, rest) = line
            .split_once(':')
            .ok_or_else(|| ParseError::new(lineno, "expected `T<id>: <ops>`"))?;
        let id = parse_txn_id(head.trim(), lineno)?;
        let ops = parse_ops(rest, lineno)?;
        let mut tb = b.txn(id);
        for (kind, name) in ops {
            tb = match kind {
                'R' => tb.read_named(&name),
                _ => tb.write_named(&name),
            };
        }
        tb.finish();
        let _ = &mut any_error;
    }
    b.build().map_err(|e| ParseError::new(0, e.to_string()))
}

/// Parses a single transaction line (`T7: R[x] W[y]`) against an
/// existing set: object names resolve through [`TransactionSet::intern_object`]
/// so the new transaction shares object identities with the transactions
/// already present. The transaction is *not* inserted into the set.
///
/// This is the entry point for online registration, where transactions
/// arrive one at a time against a long-lived workload.
pub fn parse_transaction_line(
    input: &str,
    set: &mut TransactionSet,
) -> Result<Transaction, ParseError> {
    let line = strip_comment(input).trim();
    let (head, rest) = line
        .split_once(':')
        .ok_or_else(|| ParseError::new(1, "expected `T<id>: <ops>`"))?;
    let id = parse_txn_id(head.trim(), 1)?;
    let ops = parse_ops(rest, 1)?
        .into_iter()
        .map(|(kind, name)| {
            let object = set.intern_object(&name);
            match kind {
                'R' => Op::read(object),
                _ => Op::write(object),
            }
        })
        .collect();
    Transaction::new(TxnId(id), ops).map_err(|e: ModelError| ParseError::new(1, e.to_string()))
}

fn strip_comment(line: &str) -> &str {
    let cut = line.find('#').map(|i| &line[..i]).unwrap_or(line);
    cut.find("--").map(|i| &cut[..i]).unwrap_or(cut)
}

fn parse_txn_id(head: &str, lineno: usize) -> Result<u32, ParseError> {
    let digits = head
        .strip_prefix('T')
        .or_else(|| head.strip_prefix('t'))
        .unwrap_or(head);
    digits
        .parse::<u32>()
        .map_err(|_| ParseError::new(lineno, format!("invalid transaction id `{head}`")))
}

fn parse_ops(rest: &str, lineno: usize) -> Result<Vec<(char, String)>, ParseError> {
    let mut ops = Vec::new();
    let mut chars = rest.chars().peekable();
    loop {
        // Skip separators.
        while matches!(chars.peek(), Some(c) if c.is_whitespace() || *c == ',') {
            chars.next();
        }
        let Some(&c) = chars.peek() else { break };
        let kind = match c {
            'R' | 'r' => 'R',
            'W' | 'w' => 'W',
            'C' | 'c' => {
                // Trailing explicit commit: must be the last token.
                chars.next();
                while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
                    chars.next();
                }
                if chars.peek().is_some() {
                    return Err(ParseError::new(lineno, "commit must be the last operation"));
                }
                break;
            }
            other => {
                return Err(ParseError::new(
                    lineno,
                    format!("unexpected character `{other}`"),
                ))
            }
        };
        chars.next();
        let open = chars.next();
        let close = match open {
            Some('[') => ']',
            Some('(') => ')',
            _ => {
                return Err(ParseError::new(
                    lineno,
                    format!("expected `[` or `(` after `{kind}`"),
                ))
            }
        };
        let mut name = String::new();
        loop {
            match chars.next() {
                Some(c) if c == close => break,
                Some(c) if c.is_alphanumeric() || "_.-:".contains(c) => name.push(c),
                Some(c) => {
                    return Err(ParseError::new(
                        lineno,
                        format!("invalid character `{c}` in object name"),
                    ))
                }
                None => return Err(ParseError::new(lineno, "unterminated object name")),
            }
        }
        if name.is_empty() {
            return Err(ParseError::new(lineno, "empty object name"));
        }
        ops.push((kind, name));
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TxnId;

    #[test]
    fn parses_basic_workload() {
        let set = parse_transactions(
            "# demo\n\
             T1: R[x] W[y]\n\
             \n\
             T2: W(x) R(z) C\n",
        )
        .unwrap();
        assert_eq!(set.len(), 2);
        let t1 = set.txn(TxnId(1));
        assert_eq!(t1.len(), 2);
        assert_eq!(set.object_name(t1.op(0).object), "x");
        assert_eq!(set.object_name(t1.op(1).object), "y");
        let t2 = set.txn(TxnId(2));
        assert_eq!(set.object_name(t2.op(1).object), "z");
    }

    #[test]
    fn accepts_lowercase_and_commas() {
        let set = parse_transactions("t3: r[a], w[b]").unwrap();
        let t = set.txn(TxnId(3));
        assert_eq!(t.ops()[0].kind.letter(), 'R');
        assert_eq!(t.ops()[1].kind.letter(), 'W');
    }

    #[test]
    fn accepts_bare_numeric_ids_and_comments() {
        let set = parse_transactions("7: R[x] -- trailing comment").unwrap();
        assert!(set.contains(TxnId(7)));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_transactions("T1 R[x]").is_err());
        assert!(parse_transactions("Tx: R[x]").is_err());
        assert!(parse_transactions("T1: Q[x]").is_err());
        assert!(parse_transactions("T1: R x").is_err());
        assert!(parse_transactions("T1: R[]").is_err());
        assert!(parse_transactions("T1: R[x").is_err());
        assert!(parse_transactions("T1: C R[x]").is_err());
        assert!(parse_transactions("T1: R[x!]").is_err());
    }

    #[test]
    fn rejects_duplicate_operations_via_model_rules() {
        let err = parse_transactions("T1: R[x] R[x]").unwrap_err();
        assert!(err.message.contains("more than one read"));
    }

    #[test]
    fn empty_transaction_allowed() {
        let set = parse_transactions("T1: C").unwrap();
        assert!(set.txn(TxnId(1)).is_empty());
    }

    #[test]
    fn single_line_parses_against_existing_set() {
        let mut set = parse_transactions("T1: R[x] W[y]").unwrap();
        let t = parse_transaction_line("T7: W[x] R[z] C", &mut set).unwrap();
        assert_eq!(t.id(), TxnId(7));
        // `x` resolves to the existing object; `z` is freshly interned.
        assert_eq!(t.ops()[0].object, set.object_by_name("x").unwrap());
        assert_eq!(set.object_name(t.ops()[1].object), "z");
        // The set itself is untouched apart from interning.
        assert_eq!(set.len(), 1);

        assert!(parse_transaction_line("T7 R[x]", &mut set).is_err());
        assert!(parse_transaction_line("T7: R[x] R[x]", &mut set).is_err());
        assert!(parse_transaction_line("nope: R[x]", &mut set).is_err());
    }

    #[test]
    fn roundtrips_with_fmt() {
        let text = "T1: R[x] W[y]\nT2: W[x] C\n";
        let set = parse_transactions(text).unwrap();
        let rendered = crate::fmt::transaction_set(&set);
        let reparsed = parse_transactions(&rendered).unwrap();
        assert_eq!(set, reparsed);
    }
}
