//! Error types for model construction, schedule validation and parsing.

use crate::ids::{Object, OpAddr, OpId, OpKind, TxnId};
use std::fmt;

/// Errors raised while building transactions or transaction sets.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ModelError {
    /// A transaction performs more than one read or more than one write on
    /// the same object (forbidden by the paper's §2.1 convention).
    DuplicateOperation {
        txn: TxnId,
        kind: OpKind,
        object: Object,
    },
    /// Two transactions in a set share an id.
    DuplicateTxnId(TxnId),
    /// A transaction has more operations than `OpAddr::idx` can address.
    TooManyOperations(TxnId),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicateOperation { txn, kind, object } => write!(
                f,
                "{txn} performs more than one {} on object {object}",
                match kind {
                    OpKind::Read => "read",
                    OpKind::Write => "write",
                }
            ),
            ModelError::DuplicateTxnId(t) => write!(f, "duplicate transaction id {t}"),
            ModelError::TooManyOperations(t) => {
                write!(f, "{t} has more than {} operations", u16::MAX)
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// Errors raised while validating a multiversion schedule against the
/// well-formedness requirements of Definition 2.2.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ScheduleError {
    /// The operation order does not list every operation of every
    /// transaction exactly once (or lists an unknown operation).
    OrderMismatch(String),
    /// Operations of a transaction appear out of program order.
    ProgramOrderViolated {
        txn: TxnId,
        earlier: OpId,
        later: OpId,
    },
    /// The version order for an object does not list exactly the writes on
    /// that object.
    VersionOrderMismatch(Object),
    /// A read has no version-function entry, or a non-read has one.
    VersionFunctionDomain(OpAddr),
    /// `v_s(a)` must precede `a` in the schedule.
    VersionNotBeforeRead { read: OpAddr, version: OpId },
    /// `v_s(a)` must be `op₀` or a write on the same object as `a`.
    VersionWrongObject { read: OpAddr, version: OpId },
    /// The requested serial order does not enumerate the transactions of
    /// the set exactly once.
    BadSerialOrder,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::OrderMismatch(msg) => write!(f, "operation order mismatch: {msg}"),
            ScheduleError::ProgramOrderViolated {
                txn,
                earlier,
                later,
            } => write!(
                f,
                "operations of {txn} appear out of program order: {later} before {earlier}"
            ),
            ScheduleError::VersionOrderMismatch(o) => {
                write!(f, "version order for object {o} does not match its writes")
            }
            ScheduleError::VersionFunctionDomain(a) => {
                write!(f, "version function domain error at {a}")
            }
            ScheduleError::VersionNotBeforeRead { read, version } => {
                write!(f, "version {version} read by {read} does not precede it")
            }
            ScheduleError::VersionWrongObject { read, version } => {
                write!(
                    f,
                    "version {version} read by {read} is on a different object"
                )
            }
            ScheduleError::BadSerialOrder => write!(
                f,
                "serial order must enumerate each transaction of the set exactly once"
            ),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Errors raised by the workload text parser.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl ParseError {
    pub fn new(line: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            // Set-level errors (duplicate ids, duplicate operations) have
            // no single offending line.
            write!(f, "parse error: {}", self.message)
        } else {
            write!(f, "parse error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseError {}
