//! Transactions: ordered sequences of read/write operations plus a commit.

use crate::error::ModelError;
use crate::ids::{Object, OpAddr, OpId, OpKind, TxnId};

/// A single read or write operation (without its position).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Op {
    pub kind: OpKind,
    pub object: Object,
}

impl Op {
    pub fn read(object: Object) -> Self {
        Op {
            kind: OpKind::Read,
            object,
        }
    }

    pub fn write(object: Object) -> Self {
        Op {
            kind: OpKind::Write,
            object,
        }
    }

    pub fn is_read(self) -> bool {
        self.kind == OpKind::Read
    }

    pub fn is_write(self) -> bool {
        self.kind == OpKind::Write
    }
}

/// A transaction `(T, ≤_T)`: a sequence of read/write operations followed by
/// an implicit commit.
///
/// Invariant (checked at construction): at most one read and at most one
/// write per object, matching the paper's §2.1 convention. The commit is not
/// stored explicitly; it is addressed as [`OpId::Commit`] and ordered after
/// every operation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Transaction {
    id: TxnId,
    ops: Vec<Op>,
}

impl Transaction {
    /// Builds a transaction, enforcing the one-read/one-write-per-object
    /// invariant and the `u16` operation-index bound.
    ///
    /// The length guard is what makes every `index as u16` cast on
    /// operation positions (here, in [`crate::conflict`], in
    /// [`crate::Schedule`], and in downstream crates) lossless: a
    /// constructed transaction never has an operation whose index
    /// exceeds `u16::MAX`.
    pub fn new(id: TxnId, ops: Vec<Op>) -> Result<Self, ModelError> {
        if ops.len() > u16::MAX as usize {
            return Err(ModelError::TooManyOperations(id));
        }
        let mut seen = std::collections::HashSet::with_capacity(ops.len());
        for op in &ops {
            if !seen.insert(*op) {
                return Err(ModelError::DuplicateOperation {
                    txn: id,
                    kind: op.kind,
                    object: op.object,
                });
            }
        }
        Ok(Transaction { id, ops })
    }

    pub fn id(&self) -> TxnId {
        self.id
    }

    /// The read/write operations in program order (commit excluded).
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of read/write operations (commit excluded).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operation at the given index. Panics if out of range.
    pub fn op(&self, idx: u16) -> Op {
        self.ops[idx as usize]
    }

    /// The address of the `idx`-th operation.
    pub fn addr(&self, idx: u16) -> OpAddr {
        debug_assert!((idx as usize) < self.ops.len());
        OpAddr::new(self.id, idx)
    }

    /// `first(T)`: the first operation of the transaction — the first
    /// read/write, or the commit when the transaction is empty.
    pub fn first(&self) -> OpId {
        if self.ops.is_empty() {
            OpId::Commit(self.id)
        } else {
            OpId::op(self.id, 0)
        }
    }

    /// The commit operation id.
    pub fn commit(&self) -> OpId {
        OpId::Commit(self.id)
    }

    /// All operation ids in program order: reads/writes, then commit.
    pub fn op_ids(&self) -> impl Iterator<Item = OpId> + '_ {
        (0..self.ops.len() as u16)
            .map(move |i| OpId::op(self.id, i))
            .chain(std::iter::once(OpId::Commit(self.id)))
    }

    /// The index of this transaction's read on `object`, if any.
    pub fn read_of(&self, object: Object) -> Option<u16> {
        self.ops
            .iter()
            .position(|op| op.is_read() && op.object == object)
            .map(|i| i as u16)
    }

    /// The index of this transaction's write on `object`, if any.
    pub fn write_of(&self, object: Object) -> Option<u16> {
        self.ops
            .iter()
            .position(|op| op.is_write() && op.object == object)
            .map(|i| i as u16)
    }

    /// Addresses and objects of all read operations, in program order.
    pub fn reads(&self) -> impl Iterator<Item = (OpAddr, Object)> + '_ {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, op)| op.is_read())
            .map(|(i, op)| (OpAddr::new(self.id, i as u16), op.object))
    }

    /// Addresses and objects of all write operations, in program order.
    pub fn writes(&self) -> impl Iterator<Item = (OpAddr, Object)> + '_ {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, op)| op.is_write())
            .map(|(i, op)| (OpAddr::new(self.id, i as u16), op.object))
    }

    /// The set of objects the transaction touches, deduplicated, in first-use
    /// order.
    pub fn objects(&self) -> Vec<Object> {
        let mut seen = Vec::new();
        for op in &self.ops {
            if !seen.contains(&op.object) {
                seen.push(op.object);
            }
        }
        seen
    }

    /// Whether operation `a` strictly precedes operation `b` in program
    /// order (`a <_T b`). Commit follows every read/write.
    pub fn before(&self, a: OpId, b: OpId) -> bool {
        let rank = |op: OpId| -> Option<usize> {
            match op {
                OpId::Op(addr) if addr.txn == self.id => Some(addr.idx as usize),
                OpId::Commit(t) if t == self.id => Some(self.ops.len()),
                _ => None,
            }
        };
        match (rank(a), rank(b)) {
            (Some(ra), Some(rb)) => ra < rb,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(n: u32) -> Object {
        Object(n)
    }

    #[test]
    fn rejects_duplicate_reads_and_writes() {
        let err = Transaction::new(TxnId(1), vec![Op::read(obj(0)), Op::read(obj(0))]);
        assert_eq!(
            err,
            Err(ModelError::DuplicateOperation {
                txn: TxnId(1),
                kind: OpKind::Read,
                object: obj(0)
            })
        );
        assert!(Transaction::new(TxnId(1), vec![Op::write(obj(0)), Op::write(obj(0))]).is_err());
    }

    #[test]
    fn allows_read_and_write_on_same_object() {
        let t = Transaction::new(TxnId(1), vec![Op::read(obj(0)), Op::write(obj(0))]).unwrap();
        assert_eq!(t.read_of(obj(0)), Some(0));
        assert_eq!(t.write_of(obj(0)), Some(1));
    }

    #[test]
    fn first_of_empty_txn_is_commit() {
        let t = Transaction::new(TxnId(9), vec![]).unwrap();
        assert_eq!(t.first(), OpId::Commit(TxnId(9)));
        assert!(t.is_empty());
    }

    #[test]
    fn op_ids_end_with_commit() {
        let t = Transaction::new(TxnId(2), vec![Op::read(obj(0)), Op::write(obj(1))]).unwrap();
        let ids: Vec<_> = t.op_ids().collect();
        assert_eq!(
            ids,
            vec![
                OpId::op(TxnId(2), 0),
                OpId::op(TxnId(2), 1),
                OpId::Commit(TxnId(2))
            ]
        );
        assert_eq!(t.first(), OpId::op(TxnId(2), 0));
    }

    #[test]
    fn program_order() {
        let t = Transaction::new(TxnId(1), vec![Op::read(obj(0)), Op::write(obj(1))]).unwrap();
        let r = OpId::op(TxnId(1), 0);
        let w = OpId::op(TxnId(1), 1);
        let c = OpId::Commit(TxnId(1));
        assert!(t.before(r, w));
        assert!(t.before(w, c));
        assert!(t.before(r, c));
        assert!(!t.before(w, r));
        assert!(!t.before(c, c));
        // Operations of other transactions are unrelated.
        assert!(!t.before(OpId::op(TxnId(2), 0), w));
    }

    #[test]
    fn reads_writes_objects() {
        let t = Transaction::new(
            TxnId(1),
            vec![Op::read(obj(0)), Op::write(obj(1)), Op::write(obj(0))],
        )
        .unwrap();
        assert_eq!(t.reads().count(), 1);
        assert_eq!(t.writes().count(), 2);
        assert_eq!(t.objects(), vec![obj(0), obj(1)]);
    }
}
