//! Serialization graphs `SeG(s)` and the graph algorithms used throughout
//! the crate family (cycle detection, topological sort, strongly connected
//! components). No external graph library is used.

use crate::dependency::{dependencies, DepKind};
use crate::ids::{OpAddr, TxnId};
use crate::schedule::Schedule;
use std::collections::HashMap;

/// A labelled edge of the serialization graph: the paper's quadruple
/// `(T_i, b_i, a_j, T_j)` with `b_i →_s a_j`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SegEdge {
    pub from: TxnId,
    pub b: OpAddr,
    pub a: OpAddr,
    pub to: TxnId,
    pub kind: DepKind,
}

/// The serialization graph of a schedule: one node per transaction, an edge
/// `T_i → T_j` whenever some operation of `T_j` depends on an operation of
/// `T_i`, labelled with all witnessing operation pairs.
#[derive(Clone, Debug)]
pub struct SerializationGraph {
    nodes: Vec<TxnId>,
    node_index: HashMap<TxnId, usize>,
    /// Adjacency by dense node index.
    adj: Vec<Vec<usize>>,
    edges: Vec<SegEdge>,
}

impl SerializationGraph {
    /// Builds `SeG(s)` from a schedule's dependencies.
    pub fn of(s: &Schedule) -> Self {
        let nodes: Vec<TxnId> = s.txns().ids().collect();
        let node_index: HashMap<TxnId, usize> =
            nodes.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        let mut adj = vec![Vec::new(); nodes.len()];
        let mut edges = Vec::new();
        for d in dependencies(s) {
            let (fi, ti) = (node_index[&d.from.txn], node_index[&d.to.txn]);
            if !adj[fi].contains(&ti) {
                adj[fi].push(ti);
            }
            edges.push(SegEdge {
                from: d.from.txn,
                b: d.from,
                a: d.to,
                to: d.to.txn,
                kind: d.kind,
            });
        }
        for a in &mut adj {
            a.sort_unstable();
        }
        SerializationGraph {
            nodes,
            node_index,
            adj,
            edges,
        }
    }

    /// The transactions (nodes), ascending.
    pub fn nodes(&self) -> &[TxnId] {
        &self.nodes
    }

    /// All labelled edges (quadruples).
    pub fn edges(&self) -> &[SegEdge] {
        &self.edges
    }

    /// Whether there is any dependency edge from `from` to `to`.
    pub fn has_edge(&self, from: TxnId, to: TxnId) -> bool {
        match (self.node_index.get(&from), self.node_index.get(&to)) {
            (Some(&f), Some(&t)) => self.adj[f].contains(&t),
            _ => false,
        }
    }

    /// The labels on the edge `from → to`.
    pub fn edge_labels(&self, from: TxnId, to: TxnId) -> Vec<SegEdge> {
        self.edges
            .iter()
            .filter(|e| e.from == from && e.to == to)
            .copied()
            .collect()
    }

    /// Whether the graph has no directed cycle (Theorem 2.2's criterion).
    pub fn is_acyclic(&self) -> bool {
        self.topological_order().is_some()
    }

    /// A topological order of the transactions, or `None` if cyclic.
    ///
    /// Kahn's algorithm; ties are broken by ascending transaction id so the
    /// result is deterministic.
    pub fn topological_order(&self) -> Option<Vec<TxnId>> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        for u in 0..n {
            for &v in &self.adj[u] {
                indeg[v] += 1;
            }
        }
        // Min-heap by node index (== ascending TxnId since nodes are sorted).
        let mut ready: Vec<usize> = (0..n).filter(|&u| indeg[u] == 0).collect();
        ready.sort_unstable_by(|a, b| b.cmp(a));
        let mut out = Vec::with_capacity(n);
        while let Some(u) = ready.pop() {
            out.push(self.nodes[u]);
            for &v in &self.adj[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    let ins = ready.partition_point(|&w| w > v);
                    ready.insert(ins, v);
                }
            }
        }
        (out.len() == n).then_some(out)
    }

    /// Finds a simple directed cycle, returned as the sequence of
    /// transactions along it (without repeating the first), or `None` when
    /// acyclic.
    pub fn find_cycle(&self) -> Option<Vec<TxnId>> {
        let n = self.nodes.len();
        // 0 = unvisited, 1 = on stack, 2 = done.
        let mut state = vec![0u8; n];
        let mut parent = vec![usize::MAX; n];
        for start in 0..n {
            if state[start] != 0 {
                continue;
            }
            // Iterative DFS keeping an explicit stack of (node, next child).
            let mut stack = vec![(start, 0usize)];
            state[start] = 1;
            while let Some(&mut (u, ref mut ci)) = stack.last_mut() {
                if *ci < self.adj[u].len() {
                    let v = self.adj[u][*ci];
                    *ci += 1;
                    match state[v] {
                        0 => {
                            state[v] = 1;
                            parent[v] = u;
                            stack.push((v, 0));
                        }
                        1 => {
                            // Found a back edge u → v: walk parents from u
                            // back to v.
                            let mut cyc = vec![self.nodes[u]];
                            let mut w = u;
                            while w != v {
                                w = parent[w];
                                cyc.push(self.nodes[w]);
                            }
                            cyc.reverse();
                            return Some(cyc);
                        }
                        _ => {}
                    }
                } else {
                    state[u] = 2;
                    stack.pop();
                }
            }
        }
        None
    }

    /// Strongly connected components (Tarjan), each sorted ascending;
    /// components are returned in reverse topological order of the
    /// condensation.
    pub fn sccs(&self) -> Vec<Vec<TxnId>> {
        let n = self.nodes.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut out: Vec<Vec<TxnId>> = Vec::new();

        // Iterative Tarjan with explicit call frames.
        enum Frame {
            Enter(usize),
            Resume(usize, usize),
        }
        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            let mut frames = vec![Frame::Enter(root)];
            while let Some(frame) = frames.pop() {
                match frame {
                    Frame::Enter(u) => {
                        index[u] = next_index;
                        low[u] = next_index;
                        next_index += 1;
                        stack.push(u);
                        on_stack[u] = true;
                        frames.push(Frame::Resume(u, 0));
                    }
                    Frame::Resume(u, ci) => {
                        if ci < self.adj[u].len() {
                            let v = self.adj[u][ci];
                            frames.push(Frame::Resume(u, ci + 1));
                            if index[v] == usize::MAX {
                                frames.push(Frame::Enter(v));
                            } else if on_stack[v] {
                                low[u] = low[u].min(index[v]);
                            }
                        } else {
                            if low[u] == index[u] {
                                let mut comp = Vec::new();
                                loop {
                                    let w = stack.pop().expect("tarjan stack underflow");
                                    on_stack[w] = false;
                                    comp.push(self.nodes[w]);
                                    if w == u {
                                        break;
                                    }
                                }
                                comp.sort_unstable();
                                out.push(comp);
                            }
                            // Propagate lowlink to parent frame.
                            if let Some(Frame::Resume(p, _)) = frames.last() {
                                let p = *p;
                                low[p] = low[p].min(low[u]);
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure_2;
    use crate::txnset::TxnSetBuilder;
    use std::sync::Arc;

    #[test]
    fn figure_3_edge_set() {
        // Figure 3 shows SeG(s) for Figure 2's schedule. Derive the expected
        // transaction-level edges from the dependencies:
        //   T2 → T4 (ww on t), T3 → T4 (wr on v), T4 → T2 (rw on t),
        //   T1 → T2 (rw on t: R1[t] → W2[t]), T2 → T3 (rw on v: R2[v] → W3[v]),
        //   T4 → T2?? (R4[t] → W2[t] rw).
        let s = figure_2();
        let g = SerializationGraph::of(&s);
        assert!(g.has_edge(TxnId(2), TxnId(4)), "ww t");
        assert!(g.has_edge(TxnId(3), TxnId(4)), "wr v");
        assert!(g.has_edge(TxnId(4), TxnId(2)), "rw t");
        assert!(g.has_edge(TxnId(1), TxnId(2)), "rw t from T1");
        assert!(g.has_edge(TxnId(2), TxnId(3)), "rw v from T2");
        // R1[t] also read op0, which precedes W4[t]: rw-antidependency.
        assert!(g.has_edge(TxnId(1), TxnId(4)), "rw t from T1 to T4");
        // And no reverse edges that shouldn't exist (T1 has no writes, and
        // nothing depends on it).
        assert!(!g.has_edge(TxnId(2), TxnId(1)));
        assert!(!g.has_edge(TxnId(3), TxnId(2)));
        assert!(!g.has_edge(TxnId(4), TxnId(3)));
        assert!(!g.has_edge(TxnId(4), TxnId(1)));
        assert!(!g.has_edge(TxnId(1), TxnId(3)));
        assert!(!g.has_edge(TxnId(3), TxnId(1)));
    }

    #[test]
    fn figure_2_is_not_serializable() {
        let s = figure_2();
        let g = SerializationGraph::of(&s);
        assert!(!g.is_acyclic());
        let cyc = g.find_cycle().expect("cycle expected");
        assert!(cyc.len() >= 2);
        // Every consecutive pair of the cycle is an edge, and it closes.
        for w in cyc.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
        assert!(g.has_edge(*cyc.last().unwrap(), cyc[0]));
        assert_eq!(g.topological_order(), None);
    }

    #[test]
    fn acyclic_graph_topological_order() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).write(x).finish();
        b.txn(2).read(x).write(y).finish();
        b.txn(3).read(y).finish();
        let txns = Arc::new(b.build().unwrap());
        let s =
            crate::schedule::Schedule::single_version_serial(txns, &[TxnId(1), TxnId(2), TxnId(3)])
                .unwrap();
        let g = SerializationGraph::of(&s);
        assert!(g.is_acyclic());
        assert_eq!(
            g.topological_order().unwrap(),
            vec![TxnId(1), TxnId(2), TxnId(3)]
        );
        assert_eq!(g.find_cycle(), None);
        // Each node is its own SCC.
        let sccs = g.sccs();
        assert_eq!(sccs.len(), 3);
        assert!(sccs.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn sccs_group_cycles() {
        let s = figure_2();
        let g = SerializationGraph::of(&s);
        let sccs = g.sccs();
        // T2 and T4 form a 2-cycle (ww/rw on t); T2—T3 also cycle via
        // T2→T3→T4→T2? T3→T4 and T4→T2 and T2→T3: so {T2,T3,T4} is one SCC.
        let big = sccs.iter().find(|c| c.len() > 1).expect("non-trivial SCC");
        assert_eq!(big, &vec![TxnId(2), TxnId(3), TxnId(4)]);
        // T1 is acyclic on its own.
        assert!(sccs.contains(&vec![TxnId(1)]));
    }

    #[test]
    fn edge_labels_expose_quadruples() {
        let s = figure_2();
        let g = SerializationGraph::of(&s);
        let labels = g.edge_labels(TxnId(2), TxnId(4));
        assert!(!labels.is_empty());
        for e in labels {
            assert_eq!(e.from, TxnId(2));
            assert_eq!(e.to, TxnId(4));
            assert_eq!(e.b.txn, TxnId(2));
            assert_eq!(e.a.txn, TxnId(4));
        }
    }

    #[test]
    fn graph_of_independent_txns_is_empty() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).write(x).finish();
        b.txn(2).write(y).finish();
        let txns = Arc::new(b.build().unwrap());
        let s =
            crate::schedule::Schedule::single_version_serial(txns, &[TxnId(1), TxnId(2)]).unwrap();
        let g = SerializationGraph::of(&s);
        assert!(g.edges().is_empty());
        assert!(g.is_acyclic());
        assert_eq!(g.nodes(), &[TxnId(1), TxnId(2)]);
    }
}
