//! Test fixtures shared across the crate's unit tests.

use crate::ids::{OpAddr, OpId, TxnId};
use crate::schedule::Schedule;
use crate::txnset::TxnSetBuilder;
use std::collections::HashMap;
use std::sync::Arc;

/// Builds the paper's Figure 2 schedule, reconstructed from every fact
/// the paper states about it (§2.1, §2.2, Example 2.5):
///
/// ```text
/// R2[t] W2[t] R4[t] R3[v] W3[v] C3 R1[t] R2[v] C2 R4[v] W4[t] C4 C1
/// ```
///
/// with T1 = R[t]; T2 = R[t] W[t] R[v]; T3 = R[v] W[v];
/// T4 = R[t] R[v] W[t]. Version functions: every read observes `op₀`
/// except `R4[v] → W3[v]`. Version order: `t: W2[t] ≪ W4[t]`;
/// `v: W3[v]`.
///
/// This order satisfies all of the paper's claims: the reads on `t` in
/// T1 and T4 happen while T2's write is uncommitted; `C3 <_s R2[v]`;
/// `W4[t]` follows `C2` (concurrent but not dirty); T1 is concurrent
/// with T2 and T4 but not with T3 (so `first(T1)` follows `C3`); all
/// other pairs are concurrent; and T1 → T2 → T3 forms a dangerous
/// structure (`C3 <_s C1`, `C3 <_s C2`).
pub(crate) fn figure_2() -> Schedule {
    let mut b = TxnSetBuilder::new();
    let t = b.object("t");
    let v = b.object("v");
    b.txn(1).read(t).finish();
    b.txn(2).read(t).write(t).read(v).finish();
    b.txn(3).read(v).write(v).finish();
    b.txn(4).read(t).read(v).write(t).finish();
    let txns = Arc::new(b.build().unwrap());

    let r1t = OpAddr {
        txn: TxnId(1),
        idx: 0,
    };
    let r2t = OpAddr {
        txn: TxnId(2),
        idx: 0,
    };
    let w2t = OpAddr {
        txn: TxnId(2),
        idx: 1,
    };
    let r2v = OpAddr {
        txn: TxnId(2),
        idx: 2,
    };
    let r3v = OpAddr {
        txn: TxnId(3),
        idx: 0,
    };
    let w3v = OpAddr {
        txn: TxnId(3),
        idx: 1,
    };
    let r4t = OpAddr {
        txn: TxnId(4),
        idx: 0,
    };
    let r4v = OpAddr {
        txn: TxnId(4),
        idx: 1,
    };
    let w4t = OpAddr {
        txn: TxnId(4),
        idx: 2,
    };

    let order = vec![
        OpId::Op(r2t),
        OpId::Op(w2t),
        OpId::Op(r4t),
        OpId::Op(r3v),
        OpId::Op(w3v),
        OpId::Commit(TxnId(3)),
        OpId::Op(r1t),
        OpId::Op(r2v),
        OpId::Commit(TxnId(2)),
        OpId::Op(r4v),
        OpId::Op(w4t),
        OpId::Commit(TxnId(4)),
        OpId::Commit(TxnId(1)),
    ];
    let mut versions = HashMap::new();
    versions.insert(t, vec![w2t, w4t]);
    versions.insert(v, vec![w3v]);
    let mut rf = HashMap::new();
    rf.insert(r1t, OpId::Init);
    rf.insert(r2t, OpId::Init);
    rf.insert(r2v, OpId::Init);
    rf.insert(r3v, OpId::Init);
    rf.insert(r4t, OpId::Init);
    rf.insert(r4v, OpId::Op(w3v));
    Schedule::new(txns, order, versions, rf).unwrap()
}
