//! Identifier newtypes for transactions, objects and operations.

use std::fmt;

/// Identifier of a transaction within a [`crate::TransactionSet`].
///
/// Ids need not be dense; the set keeps a separate dense index for
/// algorithmic use ([`crate::TransactionSet::index_of`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TxnId(pub u32);

impl From<u32> for TxnId {
    fn from(v: u32) -> Self {
        TxnId(v)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// An abstract database object (the paper's `t ∈ Obj`).
///
/// Objects are interned integers; [`crate::TransactionSet`] optionally maps
/// them back to human-readable names for display.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Object(pub u32);

impl From<u32> for Object {
    fn from(v: u32) -> Self {
        Object(v)
    }
}

impl fmt::Display for Object {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// Whether an operation reads or writes its object.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum OpKind {
    Read,
    Write,
}

impl OpKind {
    /// Single-letter operation tag used in schedule notation (`R`/`W`).
    pub fn letter(self) -> char {
        match self {
            OpKind::Read => 'R',
            OpKind::Write => 'W',
        }
    }
}

/// Address of a read or write operation: the owning transaction plus the
/// operation's index in that transaction's operation sequence.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct OpAddr {
    pub txn: TxnId,
    pub idx: u16,
}

impl OpAddr {
    pub fn new(txn: TxnId, idx: u16) -> Self {
        OpAddr { txn, idx }
    }
}

impl fmt::Display for OpAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.txn, self.idx)
    }
}

/// Identity of any operation occurring in a schedule.
///
/// `Init` is the paper's special operation `op₀` that conceptually writes
/// the initial version of every object and precedes every other operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum OpId {
    /// The virtual initial write `op₀`.
    Init,
    /// A read or write operation.
    Op(OpAddr),
    /// The commit operation of a transaction.
    Commit(TxnId),
}

impl OpId {
    /// Constructs the id of the `idx`-th operation of transaction `txn`.
    pub fn op(txn: TxnId, idx: u16) -> Self {
        OpId::Op(OpAddr::new(txn, idx))
    }

    /// The transaction owning this operation, if any (`None` for `op₀`).
    pub fn txn(self) -> Option<TxnId> {
        match self {
            OpId::Init => None,
            OpId::Op(a) => Some(a.txn),
            OpId::Commit(t) => Some(t),
        }
    }

    /// The operation address if this is a read/write operation.
    pub fn addr(self) -> Option<OpAddr> {
        match self {
            OpId::Op(a) => Some(a),
            _ => None,
        }
    }

    pub fn is_commit(self) -> bool {
        matches!(self, OpId::Commit(_))
    }

    pub fn is_init(self) -> bool {
        matches!(self, OpId::Init)
    }
}

impl From<OpAddr> for OpId {
    fn from(a: OpAddr) -> Self {
        OpId::Op(a)
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpId::Init => write!(f, "op0"),
            OpId::Op(a) => write!(f, "{a}"),
            OpId::Commit(t) => write!(f, "C{}", t.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(TxnId(3).to_string(), "T3");
        assert_eq!(Object(7).to_string(), "o7");
        assert_eq!(OpId::Init.to_string(), "op0");
        assert_eq!(OpId::op(TxnId(1), 2).to_string(), "T1#2");
        assert_eq!(OpId::Commit(TxnId(4)).to_string(), "C4");
    }

    #[test]
    fn opid_accessors() {
        let a = OpAddr::new(TxnId(1), 0);
        assert_eq!(OpId::Op(a).txn(), Some(TxnId(1)));
        assert_eq!(OpId::Op(a).addr(), Some(a));
        assert_eq!(OpId::Init.txn(), None);
        assert_eq!(OpId::Commit(TxnId(2)).txn(), Some(TxnId(2)));
        assert!(OpId::Commit(TxnId(2)).is_commit());
        assert!(OpId::Init.is_init());
        assert_eq!(OpId::Commit(TxnId(2)).addr(), None);
    }

    #[test]
    fn op_kind_letters() {
        assert_eq!(OpKind::Read.letter(), 'R');
        assert_eq!(OpKind::Write.letter(), 'W');
    }
}
