//! The multiversion store: committed versions per object, ordered by
//! commit timestamp.

use mvmodel::Object;
use std::collections::HashMap;

/// Identifier of one execution attempt of a job (retries get fresh ids).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct AttemptId(pub u64);

/// A committed version of an object.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Version {
    /// Commit timestamp of the writing transaction (logical clock).
    pub commit_ts: u64,
    /// The attempt that wrote it.
    pub writer: AttemptId,
}

/// What a read observed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Observed {
    /// The initial version `op₀`.
    Initial,
    /// A committed version.
    Version(Version),
}

impl Observed {
    /// Commit timestamp of the observed version (0 for the initial one).
    pub fn ts(self) -> u64 {
        match self {
            Observed::Initial => 0,
            Observed::Version(v) => v.commit_ts,
        }
    }

    pub fn writer(self) -> Option<AttemptId> {
        match self {
            Observed::Initial => None,
            Observed::Version(v) => Some(v.writer),
        }
    }
}

/// Committed versions per object, each list ascending by commit
/// timestamp. The initial version `op₀` (timestamp 0) is implicit.
#[derive(Debug, Default)]
pub struct VersionStore {
    versions: HashMap<Object, Vec<Version>>,
}

impl VersionStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// The latest version with `commit_ts <= snapshot`, or the initial
    /// version.
    pub fn read(&self, object: Object, snapshot: u64) -> Observed {
        match self.versions.get(&object) {
            None => Observed::Initial,
            Some(vs) => {
                let idx = vs.partition_point(|v| v.commit_ts <= snapshot);
                if idx == 0 {
                    Observed::Initial
                } else {
                    Observed::Version(vs[idx - 1])
                }
            }
        }
    }

    /// The newest committed version regardless of snapshot.
    pub fn latest(&self, object: Object) -> Observed {
        self.read(object, u64::MAX)
    }

    /// Whether any version of `object` committed after `ts` — the
    /// first-committer-wins test for snapshot transactions.
    pub fn committed_after(&self, object: Object, ts: u64) -> bool {
        self.latest(object).ts() > ts
    }

    /// Installs a version. `commit_ts` must exceed all existing
    /// timestamps for the object (the engine's clock is monotone).
    pub fn install(&mut self, object: Object, version: Version) {
        let vs = self.versions.entry(object).or_default();
        debug_assert!(vs.last().is_none_or(|v| v.commit_ts < version.commit_ts));
        vs.push(version);
    }

    /// Number of committed versions of `object` (excluding `op₀`).
    pub fn version_count(&self, object: Object) -> usize {
        self.versions.get(&object).map_or(0, |v| v.len())
    }

    /// Total committed versions across all objects (excluding `op₀`).
    pub fn total_versions(&self) -> usize {
        self.versions.values().map(|v| v.len()).sum()
    }

    /// Prunes versions no snapshot at or above `watermark` can observe:
    /// per object, keeps the newest version with `commit_ts <=
    /// watermark` — the version a reader pinned exactly at the watermark
    /// observes — plus every newer one. Callers pass the minimum start
    /// timestamp of any active transaction (or the clock when idle), so
    /// `latest`/`committed_after` and all reachable reads are preserved.
    /// Returns the number of versions pruned.
    pub fn gc(&mut self, watermark: u64) -> u64 {
        let mut pruned = 0u64;
        for vs in self.versions.values_mut() {
            let cut = vs.partition_point(|v| v.commit_ts <= watermark);
            if cut > 1 {
                pruned += cut as u64 - 1;
                vs.drain(..cut - 1);
            }
        }
        pruned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(n: u32) -> Object {
        Object(n)
    }

    #[test]
    fn reads_initial_when_empty() {
        let store = VersionStore::new();
        assert_eq!(store.read(obj(1), 100), Observed::Initial);
        assert_eq!(store.read(obj(1), 100).ts(), 0);
        assert_eq!(store.read(obj(1), 100).writer(), None);
        assert_eq!(store.version_count(obj(1)), 0);
    }

    #[test]
    fn snapshot_reads_pick_correct_version() {
        let mut store = VersionStore::new();
        store.install(
            obj(1),
            Version {
                commit_ts: 5,
                writer: AttemptId(1),
            },
        );
        store.install(
            obj(1),
            Version {
                commit_ts: 9,
                writer: AttemptId(2),
            },
        );
        assert_eq!(store.read(obj(1), 4), Observed::Initial);
        assert_eq!(store.read(obj(1), 5).ts(), 5);
        assert_eq!(store.read(obj(1), 8).ts(), 5);
        assert_eq!(store.read(obj(1), 9).ts(), 9);
        assert_eq!(store.latest(obj(1)).writer(), Some(AttemptId(2)));
        assert_eq!(store.version_count(obj(1)), 2);
    }

    #[test]
    fn gc_keeps_the_reader_at_watermark_boundary_version() {
        let mut store = VersionStore::new();
        for (ct, w) in [(3, 1), (5, 2), (9, 3)] {
            store.install(
                obj(1),
                Version {
                    commit_ts: ct,
                    writer: AttemptId(w),
                },
            );
        }
        // A reader pinned at snapshot 7 observes ct=5; pruning must keep
        // it even though 5 < 7.
        assert_eq!(store.gc(7), 1, "only ct=3 is unreachable");
        assert_eq!(store.read(obj(1), 7).ts(), 5);
        assert_eq!(store.read(obj(1), 8).ts(), 5);
        assert_eq!(store.read(obj(1), 9).ts(), 9);
        assert_eq!(store.latest(obj(1)).ts(), 9);
        assert_eq!(store.version_count(obj(1)), 2);
        // Watermark exactly on a version: that version survives, older
        // ones go.
        assert_eq!(store.gc(9), 1);
        assert_eq!(store.read(obj(1), 9).ts(), 9);
        assert_eq!(store.read(obj(1), 1000).ts(), 9);
        assert_eq!(store.version_count(obj(1)), 1);
        // Watermark below every version prunes nothing.
        assert_eq!(store.gc(0), 0);
        assert_eq!(store.version_count(obj(1)), 1);
        assert_eq!(store.total_versions(), 1);
    }

    #[test]
    fn gc_preserves_committed_after_semantics() {
        let mut store = VersionStore::new();
        store.install(
            obj(2),
            Version {
                commit_ts: 4,
                writer: AttemptId(1),
            },
        );
        store.install(
            obj(2),
            Version {
                commit_ts: 10,
                writer: AttemptId(2),
            },
        );
        store.gc(10);
        // The first-committer-wins test only consults `latest`, which GC
        // never drops.
        assert!(store.committed_after(obj(2), 4));
        assert!(!store.committed_after(obj(2), 10));
    }

    #[test]
    fn committed_after_detects_concurrent_committers() {
        let mut store = VersionStore::new();
        assert!(!store.committed_after(obj(1), 3));
        store.install(
            obj(1),
            Version {
                commit_ts: 5,
                writer: AttemptId(1),
            },
        );
        assert!(store.committed_after(obj(1), 3));
        assert!(!store.committed_after(obj(1), 5));
    }
}
