//! Stripe-sharded shared version store for the parallel engine.
//!
//! Publication order is the correctness crux of the whole parallel
//! design, so it is pinned here, at the storage layer:
//!
//! - a **read** draws its tick *while holding the stripe's read lock*,
//!   so no commit to any object in the stripe can interleave between
//!   the tick and the chain lookup — if the read's tick precedes a
//!   version's commit tick, the read provably did not observe it, and
//!   vice versa;
//! - a **commit** draws its tick *while holding the write locks of
//!   every stripe it will install into* (acquired in stripe order, a
//!   deadlock-free total order), then installs before releasing — so a
//!   version with commit tick `c` is visible to exactly the reads
//!   ticked after `c`.
//!
//! Sorting the per-attempt event buffers by tick therefore yields a
//! linearization in which every read/commit pair is ordered the same
//! way the store actually served them — which is why the exported
//! trace passes the `allowed_under` oracle (see `crate::par`).

use crate::version::{Observed, Version};
use mvmodel::Object;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{RwLock, RwLockWriteGuard};

/// Number of version-store stripes. A power of two well above typical
/// worker counts so stripe collisions between disjoint partitions stay
/// rare.
const STRIPES: usize = 32;

type Chains = HashMap<Object, Vec<Version>>;

/// Fibonacci-hash the object id into a stripe (top bits, so consecutive
/// ids scatter).
fn stripe_of(object: Object) -> usize {
    ((object.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 59) as usize % STRIPES
}

/// Committed versions per object, sharded into independently locked
/// stripes. Shared by all workers of a [`crate::par`] run.
pub(crate) struct SharedVersionStore {
    stripes: Vec<RwLock<Chains>>,
}

impl SharedVersionStore {
    pub fn new() -> Self {
        SharedVersionStore {
            stripes: (0..STRIPES).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    /// Reads `object` under the stripe's read lock, drawing the read
    /// tick inside the critical section. `snapshot: None` means the
    /// freshly drawn tick is the snapshot (RC per-statement reads, and
    /// the first operation of a snapshot transaction); `Some(s)` reads
    /// at the established transaction snapshot. Returns `(tick,
    /// observed, latest)` — `latest` feeds the conservative SSI
    /// read-path check without a second lock round-trip.
    pub fn read(
        &self,
        object: Object,
        snapshot: Option<u64>,
        clock: &AtomicU64,
    ) -> (u64, Observed, Observed) {
        let guard = self.stripes[stripe_of(object)]
            .read()
            .expect("not poisoned");
        let ts = clock.fetch_add(1, Ordering::SeqCst) + 1;
        let snap = snapshot.unwrap_or(ts);
        match guard.get(&object) {
            None => (ts, Observed::Initial, Observed::Initial),
            Some(vs) => {
                let idx = vs.partition_point(|v| v.commit_ts <= snap);
                let observed = if idx == 0 {
                    Observed::Initial
                } else {
                    Observed::Version(vs[idx - 1])
                };
                let latest = vs
                    .last()
                    .map_or(Observed::Initial, |&v| Observed::Version(v));
                (ts, observed, latest)
            }
        }
    }

    /// Whether any version of `object` committed after `ts` — the
    /// first-committer-wins test. Advisory unless the caller holds the
    /// object's write lock in the [`crate::plock::SharedLockTable`]
    /// (installs require that lock, so holding it pins the chain).
    pub fn committed_after(&self, object: Object, ts: u64) -> bool {
        self.stripes[stripe_of(object)]
            .read()
            .expect("not poisoned")
            .get(&object)
            .and_then(|vs| vs.last())
            .is_some_and(|v| v.commit_ts > ts)
    }

    /// Write-locks the stripes covering `objects` — deduped, in stripe
    /// order (the deadlock-free total order) — for a commit. The commit
    /// tick must be drawn while the returned guards are held; that is
    /// what linearizes publication against concurrent readers.
    pub fn lock_for_commit(&self, objects: &[Object]) -> CommitGuards<'_> {
        let mut idxs: Vec<usize> = objects.iter().map(|&o| stripe_of(o)).collect();
        idxs.sort_unstable();
        idxs.dedup();
        CommitGuards {
            guards: idxs
                .into_iter()
                .map(|i| (i, self.stripes[i].write().expect("not poisoned")))
                .collect(),
        }
    }

    /// Prunes versions below the watermark, one stripe at a time —
    /// same keep rule as [`crate::version::VersionStore::gc`]. Returns
    /// the number pruned.
    pub fn gc(&self, watermark: u64) -> u64 {
        let mut pruned = 0u64;
        for stripe in &self.stripes {
            let mut chains = stripe.write().expect("not poisoned");
            for vs in chains.values_mut() {
                let cut = vs.partition_point(|v| v.commit_ts <= watermark);
                if cut > 1 {
                    pruned += cut as u64 - 1;
                    vs.drain(..cut - 1);
                }
            }
        }
        pruned
    }

    /// Number of retained committed versions of `object` (diagnostics).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn version_count(&self, object: Object) -> usize {
        self.stripes[stripe_of(object)]
            .read()
            .expect("not poisoned")
            .get(&object)
            .map_or(0, |v| v.len())
    }
}

/// Write guards over the stripes a commit installs into, held across
/// tick draw → SSI decision → install.
pub(crate) struct CommitGuards<'a> {
    guards: Vec<(usize, RwLockWriteGuard<'a, Chains>)>,
}

impl CommitGuards<'_> {
    /// Installs a version; the target stripe must be among the locked
    /// ones (it is, by construction from the same write set).
    pub fn install(&mut self, object: Object, version: Version) {
        let sid = stripe_of(object);
        let chains = &mut self
            .guards
            .iter_mut()
            .find(|(i, _)| *i == sid)
            .expect("stripe locked for commit")
            .1;
        let vs = chains.entry(object).or_default();
        debug_assert!(vs.last().is_none_or(|v| v.commit_ts < version.commit_ts));
        vs.push(version);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::version::AttemptId;

    fn obj(n: u32) -> Object {
        Object(n)
    }

    #[test]
    fn read_ticks_are_drawn_inside_the_critical_section() {
        let store = SharedVersionStore::new();
        let clock = AtomicU64::new(0);
        let (t1, obs, latest) = store.read(obj(1), None, &clock);
        assert_eq!(t1, 1);
        assert_eq!(obs, Observed::Initial);
        assert_eq!(latest, Observed::Initial);
        let (t2, _, _) = store.read(obj(1), None, &clock);
        assert_eq!(t2, 2, "ticks are unique and monotone");
    }

    #[test]
    fn commit_installs_under_guards_and_readers_see_it() {
        let store = SharedVersionStore::new();
        let clock = AtomicU64::new(0);
        let writes = [obj(1), obj(2)];
        let mut guards = store.lock_for_commit(&writes);
        let ct = clock.fetch_add(1, Ordering::SeqCst) + 1;
        for &o in &writes {
            guards.install(
                o,
                Version {
                    commit_ts: ct,
                    writer: AttemptId(9),
                },
            );
        }
        drop(guards);
        let (ts, obs, latest) = store.read(obj(1), None, &clock);
        assert!(ts > ct);
        assert_eq!(obs.writer(), Some(AttemptId(9)));
        assert_eq!(latest.ts(), ct);
        // A snapshot below the commit still reads the initial version.
        let (_, old, _) = store.read(obj(2), Some(ct - 1), &clock);
        assert_eq!(old, Observed::Initial);
        assert!(store.committed_after(obj(2), 0));
        assert!(!store.committed_after(obj(2), ct));
    }

    #[test]
    fn gc_matches_sequential_keep_rule() {
        let store = SharedVersionStore::new();
        let clock = AtomicU64::new(0);
        for ct in [3u64, 5, 9] {
            clock.store(ct - 1, Ordering::SeqCst);
            let mut g = store.lock_for_commit(&[obj(7)]);
            let drawn = clock.fetch_add(1, Ordering::SeqCst) + 1;
            assert_eq!(drawn, ct);
            g.install(
                obj(7),
                Version {
                    commit_ts: ct,
                    writer: AttemptId(ct),
                },
            );
        }
        assert_eq!(store.gc(7), 1, "ct=3 is below the boundary version");
        assert_eq!(store.version_count(obj(7)), 2);
        let (_, at_watermark, _) = store.read(obj(7), Some(7), &clock);
        assert_eq!(at_watermark.ts(), 5, "boundary version survives");
    }

    #[test]
    fn stripes_cover_all_objects() {
        for n in 0..1000u32 {
            assert!(stripe_of(Object(n)) < STRIPES);
        }
    }
}
