//! Dangerous-structure prevention for SSI transactions.
//!
//! Two detectors (selected by [`crate::SsiMode`]):
//!
//! - [`SsiTracker::exact_check`] decides, at commit time, whether the
//!   committing transaction would complete a dangerous structure
//!   `T₁ →rw T₂ →rw T₃` (pairwise concurrent, `C₃ ≤ C₁`, `C₃ < C₂`)
//!   among *committed SSI transactions*. Aborting exactly these commits
//!   keeps the committed history free of dangerous structures with zero
//!   false positives.
//! - [`SsiTracker::conservative_flags`] mimics Cahill-style
//!   `inConflict`/`outConflict` booleans: any SSI transaction observed
//!   with both an incoming and an outgoing rw-antidependency to a
//!   concurrent transaction is aborted at commit, which may abort
//!   histories that were in fact serializable.

use crate::version::AttemptId;
use mvmodel::Object;
use std::collections::HashMap;

/// What the tracker retains about a finished (committed) SSI-relevant
/// transaction.
#[derive(Clone, Debug)]
pub struct TxnFootprint {
    pub attempt: AttemptId,
    pub ssi: bool,
    pub start_ts: u64,
    pub commit_ts: u64,
    /// Objects read, with the commit timestamp of the observed version
    /// (0 = initial).
    pub reads: Vec<(Object, u64)>,
    /// Objects written, with the installed version's commit timestamp.
    pub writes: Vec<(Object, u64)>,
}

impl TxnFootprint {
    /// Whether two footprints are concurrent: each started before the
    /// other committed.
    pub fn concurrent(&self, other: &TxnFootprint) -> bool {
        self.attempt != other.attempt
            && self.start_ts < other.commit_ts
            && other.start_ts < self.commit_ts
    }

    /// Whether `self →rw other`: self read a version of some object that
    /// `other` overwrote (observed timestamp < other's installed
    /// timestamp).
    pub fn rw_antidep_to(&self, other: &TxnFootprint) -> bool {
        if self.attempt == other.attempt {
            return false;
        }
        self.reads.iter().any(|&(obj, seen_ts)| {
            other
                .writes
                .iter()
                .any(|&(wobj, wts)| wobj == obj && seen_ts < wts)
        })
    }
}

/// Core of the exact dangerous-structure test, shared by the sequential
/// [`SsiTracker`] and the parallel [`crate::pssi::SharedSsiTracker`]:
/// would admitting `cand` complete a structure among the committed SSI
/// footprints?
pub(crate) fn exact_check_against(committed: &[TxnFootprint], cand: &TxnFootprint) -> bool {
    if !cand.ssi {
        return false;
    }
    let pool: Vec<&TxnFootprint> = committed
        .iter()
        .filter(|f| f.ssi)
        .chain(std::iter::once(cand))
        .collect();
    // Enumerate pivots T₂ and endpoints; T₁ = T₃ allowed.
    for &t2 in &pool {
        for &t1 in &pool {
            if !(t1.rw_antidep_to(t2) && t1.concurrent(t2)) {
                continue;
            }
            for &t3 in &pool {
                let same_endpoints = t1.attempt == t3.attempt;
                if !(t2.rw_antidep_to(t3) && t2.concurrent(t3)) {
                    continue;
                }
                let c_ok = if same_endpoints {
                    t3.commit_ts < t2.commit_ts
                } else {
                    t3.commit_ts <= t1.commit_ts && t3.commit_ts < t2.commit_ts
                };
                if !c_ok {
                    continue;
                }
                // The structure must involve the candidate, otherwise
                // it would have been rejected at an earlier commit.
                if [t1.attempt, t2.attempt, t3.attempt].contains(&cand.attempt) {
                    return true;
                }
            }
        }
    }
    false
}

/// Tracks committed SSI transactions for the exact detector, plus
/// Cahill-style flags for the conservative one.
#[derive(Debug, Default)]
pub struct SsiTracker {
    committed: Vec<TxnFootprint>,
    /// Cahill flags per attempt: (has incoming rw, has outgoing rw).
    flags: HashMap<AttemptId, (bool, bool)>,
}

impl SsiTracker {
    pub fn new() -> Self {
        Self::default()
    }

    /// The exact dangerous-structure test: would admitting `cand`
    /// complete a structure among committed SSI transactions?
    ///
    /// Since `cand` commits last, it can only take the role of `T₁` or
    /// `T₂` (the structure requires `C₃` to be earliest and `C₃ < C₂`,
    /// `C₃ ≤ C₁`; `T₁ = T₃` is possible only when they are the same
    /// transaction, which cannot be `cand` and an earlier committer at
    /// once unless `cand = T₁ = T₃` with itself — excluded since
    /// `C₃ < C₂ ≤` would force another earlier transaction anyway, which
    /// the search below covers by treating `cand` in every role).
    pub fn exact_check(&self, cand: &TxnFootprint) -> bool {
        exact_check_against(&self.committed, cand)
    }

    /// Records a committed transaction's footprint (call after the exact
    /// check admitted it).
    pub fn admit(&mut self, footprint: TxnFootprint) {
        self.committed.push(footprint);
    }

    /// Conservative flag updates: called when a new rw-antidependency
    /// `from →rw to` between concurrent transactions is observed.
    pub fn record_rw_edge(&mut self, from: AttemptId, to: AttemptId) {
        self.flags.entry(from).or_default().1 = true;
        self.flags.entry(to).or_default().0 = true;
    }

    /// Conservative commit test: abort when both flags are set.
    pub fn conservative_flags(&self, who: AttemptId) -> bool {
        self.flags.get(&who).is_some_and(|&(i, o)| i && o)
    }

    /// Whether `who` has an incoming rw flag.
    pub fn has_in(&self, who: AttemptId) -> bool {
        self.flags.get(&who).is_some_and(|&(i, _)| i)
    }

    /// Whether `who` has an outgoing rw flag.
    pub fn has_out(&self, who: AttemptId) -> bool {
        self.flags.get(&who).is_some_and(|&(_, o)| o)
    }

    /// The retained footprint of a committed attempt, if any.
    pub fn footprint(&self, who: AttemptId) -> Option<&TxnFootprint> {
        self.committed.iter().find(|f| f.attempt == who)
    }

    /// Iterates retained committed footprints.
    pub fn committed_footprints(&self) -> impl Iterator<Item = &TxnFootprint> {
        self.committed.iter()
    }

    /// Drops state for an aborted attempt.
    pub fn forget(&mut self, who: AttemptId) {
        self.flags.remove(&who);
    }

    /// Garbage-collects committed footprints no future transaction can be
    /// concurrent with (`commit_ts < horizon`, where `horizon` is the
    /// minimum start timestamp of any active transaction, or the current
    /// clock when none is active).
    pub fn gc(&mut self, horizon: u64) {
        self.committed.retain(|f| f.commit_ts >= horizon);
    }

    /// Number of retained committed footprints (diagnostics).
    pub fn retained(&self) -> usize {
        self.committed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(
        attempt: u64,
        ssi: bool,
        start: u64,
        commit: u64,
        reads: &[(u32, u64)],
        writes: &[(u32, u64)],
    ) -> TxnFootprint {
        TxnFootprint {
            attempt: AttemptId(attempt),
            ssi,
            start_ts: start,
            commit_ts: commit,
            reads: reads.iter().map(|&(o, t)| (Object(o), t)).collect(),
            writes: writes.iter().map(|&(o, t)| (Object(o), t)).collect(),
        }
    }

    #[test]
    fn footprint_relations() {
        let a = fp(1, true, 0, 10, &[(1, 0)], &[]);
        let b = fp(2, true, 5, 8, &[], &[(1, 8)]);
        assert!(a.concurrent(&b));
        assert!(a.rw_antidep_to(&b), "a read ts 0, b wrote ts 8");
        assert!(!b.rw_antidep_to(&a));
        let c = fp(3, true, 20, 25, &[], &[(1, 25)]);
        assert!(!a.concurrent(&c));
        assert!(a.rw_antidep_to(&c), "antidependencies ignore concurrency");
    }

    /// Write skew: T1 reads x writes y, T2 reads y writes x, overlapping;
    /// T2 commits first. The structure is T2 →rw T1 →rw T2 (T₁ = T₃ = T2
    /// … pivot T1). Committing the second one must be rejected.
    #[test]
    fn exact_check_rejects_write_skew() {
        let mut tracker = SsiTracker::new();
        let t2 = fp(2, true, 1, 5, &[(2, 0)], &[(1, 5)]);
        assert!(!tracker.exact_check(&t2), "first committer is fine");
        tracker.admit(t2);
        let t1 = fp(1, true, 0, 8, &[(1, 0)], &[(2, 8)]);
        assert!(
            tracker.exact_check(&t1),
            "second committer completes the structure"
        );
    }

    #[test]
    fn exact_check_ignores_non_ssi() {
        let mut tracker = SsiTracker::new();
        tracker.admit(fp(2, false, 1, 5, &[(2, 0)], &[(1, 5)]));
        let t1 = fp(1, true, 0, 8, &[(1, 0)], &[(2, 8)]);
        assert!(!tracker.exact_check(&t1), "structure needs all three SSI");
        let t1_rc = fp(3, false, 0, 9, &[(1, 0)], &[(2, 9)]);
        assert!(!tracker.exact_check(&t1_rc));
    }

    #[test]
    fn exact_check_requires_t3_first() {
        // Three transactions, T1 →rw T2 →rw T3, but T3 commits last: safe.
        let mut tracker = SsiTracker::new();
        tracker.admit(fp(1, true, 0, 10, &[(1, 0)], &[]));
        tracker.admit(fp(2, true, 1, 12, &[(2, 0)], &[(1, 12)]));
        let t3 = fp(3, true, 2, 15, &[], &[(2, 15)]);
        assert!(
            !tracker.exact_check(&t3),
            "T3 committing last is not dangerous"
        );
    }

    #[test]
    fn three_txn_pivot_detected() {
        // T3 commits first, then T1, then T2 (the pivot completes it).
        let mut tracker = SsiTracker::new();
        tracker.admit(fp(3, true, 2, 6, &[], &[(2, 6)]));
        tracker.admit(fp(1, true, 0, 9, &[(1, 0)], &[]));
        let t2 = fp(2, true, 1, 12, &[(2, 0)], &[(1, 12)]);
        assert!(tracker.exact_check(&t2));
    }

    #[test]
    fn conservative_flags_behaviour() {
        let mut tracker = SsiTracker::new();
        let (a, b, c) = (AttemptId(1), AttemptId(2), AttemptId(3));
        tracker.record_rw_edge(a, b);
        assert!(!tracker.conservative_flags(a));
        assert!(!tracker.conservative_flags(b));
        tracker.record_rw_edge(b, c);
        assert!(tracker.conservative_flags(b), "b has in + out");
        tracker.forget(b);
        assert!(!tracker.conservative_flags(b));
    }

    #[test]
    fn gc_drops_old_footprints() {
        let mut tracker = SsiTracker::new();
        tracker.admit(fp(1, true, 0, 5, &[], &[]));
        tracker.admit(fp(2, true, 6, 9, &[], &[]));
        assert_eq!(tracker.retained(), 2);
        tracker.gc(6);
        assert_eq!(tracker.retained(), 1);
        tracker.gc(100);
        assert_eq!(tracker.retained(), 0);
    }
}
