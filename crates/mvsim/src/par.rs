//! The parallel MVCC engine: N OS worker threads drive partitions of a
//! job list to completion against shared state — a stripe-sharded
//! version store ([`crate::pstore`]), a sharded lock table with global
//! waits-for deadlock detection ([`crate::plock`]) and a concurrent SSI
//! tracker ([`crate::pssi`]) — with the same per-transaction semantics
//! as the sequential [`crate::engine::Engine`], which remains the
//! unchanged oracle.
//!
//! # Correctness protocol
//!
//! - The logical clock is one `AtomicU64`; every read, recorded write
//!   and commit draws a unique tick via `fetch_add`.
//! - Reads draw their tick inside the stripe read lock; commits draw
//!   theirs inside all written-stripe write locks and install before
//!   releasing (see `pstore`). Sorting the per-attempt event buffers by
//!   tick therefore reproduces the order the store actually served, and
//!   the replayed [`TraceRecorder`] export passes the conformance
//!   oracle — an *empirical race check on every run*, on top of Rust's
//!   static guarantees.
//! - First-committer-wins is pre-checked before locking (cheap early
//!   abort) and **re-checked after the lock grant while holding the
//!   object lock** — the authoritative test, since installs require
//!   that lock. The sequential engine gets this for free from `&mut
//!   self`; here the re-check closes the pre-check→grant window.
//! - The whole commit sequence (stripe locks → tick → SSI decision →
//!   install → admit) runs under one commit mutex, so the detectors see
//!   one-at-a-time commits exactly as the sequential engine presents
//!   them. The critical section is short (footprint comparison against
//!   the GC-bounded committed set).
//! - GC watermarks come from a registry of attempt begin ticks: workers
//!   register the clock value *before* drawing any operation tick (and
//!   the registry read and clock read are ordered through the registry
//!   mutex), so a concurrent GC can never prune a version a justs
//!   started attempt might still read.

use crate::config::{SimConfig, SsiMode};
use crate::driver::{jobs_from_workload, Job};
use crate::engine::AbortReason;
use crate::metrics::{level_index, LatencyStats, Metrics};
use crate::plock::{ParLockOutcome, SharedLockTable};
use crate::pssi::SharedSsiTracker;
use crate::pstore::SharedVersionStore;
use crate::ssi::TxnFootprint;
use crate::trace::TraceRecorder;
use crate::version::{AttemptId, Observed, Version};
use mvisolation::{Allocation, IsolationLevel};
use mvmodel::{Object, OpKind, TransactionSet};
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Knobs of the parallel driver that are not engine semantics.
#[derive(Clone, Copy, Debug)]
pub struct ParOptions {
    /// Seeded `yield_now` jitter between operations. On few-core hosts
    /// OS time slices are far coarser than transaction attempts, so
    /// without jitter most interleavings degenerate to serial; the
    /// conformance suites keep it on for interleaving diversity. Timed
    /// benchmark runs turn it off.
    pub jitter: bool,
}

impl Default for ParOptions {
    fn default() -> Self {
        ParOptions { jitter: true }
    }
}

/// A timestamped event buffered per attempt, replayed globally sorted
/// into the [`TraceRecorder`] after the run.
enum PEvent {
    Read { object: Object, observed: Observed },
    Write { object: Object },
    Commit,
}

struct AttemptLog {
    id: AttemptId,
    level: IsolationLevel,
    committed: bool,
    events: Vec<(u64, PEvent)>,
}

/// Worker-local state of one in-flight attempt (the parallel analogue
/// of the sequential engine's `Active`).
struct Attempt {
    id: AttemptId,
    level: IsolationLevel,
    start_ts: Option<u64>,
    reads: Vec<(Object, Observed)>,
    writes: Vec<Object>,
    held: Vec<Object>,
    doomed: bool,
    /// Program counter of a snapshot-level write already recorded at
    /// its first (blocked) attempt — cf. `Engine::write`.
    recorded_pc: Option<usize>,
    record: bool,
    events: Vec<(u64, PEvent)>,
}

impl Attempt {
    fn new(id: AttemptId, level: IsolationLevel, record: bool) -> Self {
        Attempt {
            id,
            level,
            start_ts: None,
            reads: Vec::new(),
            writes: Vec::new(),
            held: Vec::new(),
            doomed: false,
            recorded_pc: None,
            record,
            events: Vec::new(),
        }
    }

    fn push_event(&mut self, ts: u64, ev: PEvent) {
        if self.record {
            self.events.push((ts, ev));
        }
    }
}

/// Result of a parallel run: aggregated metrics and latencies, the
/// replayed trace, and the wall-clock measurement the logical-tick
/// goodput proxy cannot provide.
pub struct ParRun {
    pub metrics: Metrics,
    pub latency: LatencyStats,
    pub latency_by_level: [LatencyStats; 3],
    pub trace: TraceRecorder,
    pub elapsed: Duration,
    pub threads: usize,
}

impl ParRun {
    /// Committed transactions per wall-clock second.
    pub fn txns_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.metrics.commits as f64 / secs
        }
    }
}

struct WorkerOut {
    metrics: Metrics,
    latency: LatencyStats,
    latency_by_level: [LatencyStats; 3],
    logs: Vec<AttemptLog>,
}

struct ParEngine {
    config: SimConfig,
    clock: AtomicU64,
    store: SharedVersionStore,
    locks: SharedLockTable,
    ssi: SharedSsiTracker,
    /// Serializes tick-draw → SSI decision → install → admit.
    commit_lock: Mutex<()>,
    next_attempt: AtomicU64,
    /// Begin-tick registry for the GC watermark: clock value at attempt
    /// begin → number of attempts begun there.
    snaps: Mutex<BTreeMap<u64, u32>>,
    commits: AtomicU64,
    versions_pruned: AtomicU64,
}

impl ParEngine {
    fn new(config: SimConfig) -> Self {
        ParEngine {
            config,
            clock: AtomicU64::new(0),
            store: SharedVersionStore::new(),
            locks: SharedLockTable::new(),
            ssi: SharedSsiTracker::new(),
            commit_lock: Mutex::new(()),
            next_attempt: AtomicU64::new(0),
            snaps: Mutex::new(BTreeMap::new()),
            commits: AtomicU64::new(0),
            versions_pruned: AtomicU64::new(0),
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Registers an attempt's begin tick so the GC watermark never
    /// overtakes a snapshot the attempt may still draw. The clock read
    /// happens under the registry mutex: either this registration is
    /// visible to the next GC, or the GC's watermark read preceded this
    /// clock read — and then every tick this attempt draws is at or
    /// above the watermark. Either way no reachable version is pruned.
    fn register_begin(&self) -> u64 {
        let mut snaps = self.snaps.lock().expect("not poisoned");
        let at = self.clock.load(Ordering::SeqCst);
        *snaps.entry(at).or_insert(0) += 1;
        at
    }

    fn unregister_begin(&self, at: u64) {
        let mut snaps = self.snaps.lock().expect("not poisoned");
        if let Some(n) = snaps.get_mut(&at) {
            *n -= 1;
            if *n == 0 {
                snaps.remove(&at);
            }
        }
    }

    fn execute(
        &self,
        a: &mut Attempt,
        ops: &[mvmodel::Op],
        metrics: &mut Metrics,
        jitter: &mut Option<SmallRng>,
    ) -> Result<u64, AbortReason> {
        for (pc, op) in ops.iter().enumerate() {
            if a.doomed {
                return Err(AbortReason::SsiDangerous);
            }
            maybe_yield(jitter);
            match op.kind {
                OpKind::Read => self.read(a, op.object, metrics),
                OpKind::Write => self.write(a, pc, op.object, metrics)?,
            }
        }
        if a.doomed {
            return Err(AbortReason::SsiDangerous);
        }
        maybe_yield(jitter);
        self.commit(a, metrics)
    }

    fn read(&self, a: &mut Attempt, object: Object, metrics: &mut Metrics) {
        let snapshot = match a.level {
            IsolationLevel::ReadCommitted => None, // latest committed, now
            _ => a.start_ts,                       // None on the first op: the
                                                    // fresh tick becomes the snapshot
        };
        let (ts, observed, latest) = self.store.read(object, snapshot, &self.clock);
        let start = *a.start_ts.get_or_insert(ts);
        // Conservative SSI read-path rule, as in `Engine::read`: the
        // observed-over committed SSI writer gains an incoming edge; if
        // it already has an outgoing one the structure is complete and
        // the reader is doomed.
        if self.config.ssi_mode == SsiMode::Conservative
            && a.level == IsolationLevel::SerializableSnapshotIsolation
        {
            if let Observed::Version(latest) = latest {
                if latest.commit_ts > observed.ts()
                    && latest.commit_ts > start
                    && self.ssi.is_committed_ssi(latest.writer)
                {
                    self.ssi.record_rw_edge(a.id, latest.writer);
                    if self.ssi.has_out(latest.writer) {
                        a.doomed = true;
                    }
                }
            }
        }
        a.reads.push((object, observed));
        metrics.reads += 1;
        a.push_event(ts, PEvent::Read { object, observed });
    }

    fn write(
        &self,
        a: &mut Attempt,
        pc: usize,
        object: Object,
        metrics: &mut Metrics,
    ) -> Result<(), AbortReason> {
        let start = *a
            .start_ts
            .get_or_insert_with(|| self.clock.load(Ordering::SeqCst));
        let snapshot_level = a.level.snapshot_at_start();
        // Advisory first-committer-wins pre-check: abort before paying
        // for the lock when a newer version is already visible.
        if snapshot_level && self.store.committed_after(object, start) {
            return Err(AbortReason::FirstCommitterWins);
        }
        match self.locks.acquire(a.id, object) {
            ParLockOutcome::Deadlock => return Err(AbortReason::Deadlock),
            ParLockOutcome::Granted => {}
            ParLockOutcome::Enqueued => {
                metrics.blocked_events += 1;
                // Snapshot transactions record blocked writes at their
                // first attempt — the faithful formal position; see the
                // dirty-write argument in `Engine::write`.
                if snapshot_level && a.recorded_pc != Some(pc) {
                    a.recorded_pc = Some(pc);
                    let ts = self.tick();
                    a.push_event(ts, PEvent::Write { object });
                }
                self.locks.await_grant(a.id, object);
            }
        }
        if !a.held.contains(&object) {
            a.held.push(object);
        }
        // Authoritative first-committer-wins re-check *under the held
        // lock*: a competitor can commit between the pre-check and the
        // grant, but not while we hold the object lock (installs
        // require it). Parallel-only requirement.
        if snapshot_level && self.store.committed_after(object, start) {
            return Err(AbortReason::FirstCommitterWins);
        }
        if a.recorded_pc == Some(pc) {
            a.recorded_pc = None;
        } else {
            let ts = self.tick();
            a.push_event(ts, PEvent::Write { object });
        }
        if !a.writes.contains(&object) {
            a.writes.push(object);
        }
        metrics.writes += 1;
        Ok(())
    }

    fn commit(&self, a: &mut Attempt, metrics: &mut Metrics) -> Result<u64, AbortReason> {
        let commit_guard = self.commit_lock.lock().expect("not poisoned");
        let mut guards = self.store.lock_for_commit(&a.writes);
        let commit_ts = self.tick();
        let start_ts = a.start_ts.unwrap_or(commit_ts - 1);
        let footprint = TxnFootprint {
            attempt: a.id,
            ssi: a.level == IsolationLevel::SerializableSnapshotIsolation,
            start_ts,
            commit_ts,
            reads: a.reads.iter().map(|&(o, obs)| (o, obs.ts())).collect(),
            writes: a.writes.iter().map(|&o| (o, commit_ts)).collect(),
        };
        let dangerous = match self.config.ssi_mode {
            SsiMode::Exact => self.ssi.exact_check(&footprint),
            SsiMode::Conservative => footprint.ssi && self.conservative_commit_check(&footprint),
        };
        if dangerous {
            drop(guards);
            drop(commit_guard);
            return Err(AbortReason::SsiDangerous);
        }
        for &object in &a.writes {
            #[cfg(debug_assertions)]
            debug_assert!(self.locks.holds(a.id, object));
            guards.install(
                object,
                Version {
                    commit_ts,
                    writer: a.id,
                },
            );
        }
        drop(guards);
        self.ssi.admit(footprint);
        self.locks.release_all(a.id, &a.held);
        metrics.record_commit(a.level);
        a.push_event(commit_ts, PEvent::Commit);
        self.maybe_gc();
        drop(commit_guard);
        Ok(commit_ts)
    }

    /// Steps (1) and (3) of the sequential conservative protocol (see
    /// `Engine::conservative_commit_check` and the safety argument in
    /// `crate::pssi`): edges with committed concurrent SSI footprints,
    /// doom on a flagged pivot, then the own-flags test. Flag reads for
    /// the doom decision happen before this commit's edges are applied,
    /// matching the sequential order exactly.
    fn conservative_commit_check(&self, t: &TxnFootprint) -> bool {
        let who = t.attempt;
        let mut edges: Vec<(AttemptId, AttemptId)> = Vec::new();
        let mut doom_self = false;
        self.ssi.with_committed(|committed| {
            for f in committed {
                if !f.ssi || !f.concurrent(t) {
                    continue;
                }
                if t.rw_antidep_to(f) {
                    edges.push((who, f.attempt));
                    if self.ssi.has_out(f.attempt) {
                        doom_self = true;
                    }
                }
                if f.rw_antidep_to(t) {
                    edges.push((f.attempt, who));
                    if self.ssi.has_in(f.attempt) {
                        doom_self = true;
                    }
                }
            }
        });
        for (from, to) in edges {
            self.ssi.record_rw_edge(from, to);
        }
        doom_self || self.ssi.conservative_flags(who)
    }

    fn maybe_gc(&self) {
        let commits = self.commits.fetch_add(1, Ordering::SeqCst) + 1;
        if !commits.is_multiple_of(64) {
            return;
        }
        let horizon = {
            let snaps = self.snaps.lock().expect("not poisoned");
            snaps
                .keys()
                .next()
                .copied()
                .unwrap_or_else(|| self.clock.load(Ordering::SeqCst))
        };
        self.ssi.gc(horizon);
        self.versions_pruned
            .fetch_add(self.store.gc(horizon), Ordering::SeqCst);
    }

    fn abort_attempt(&self, a: &Attempt) {
        self.ssi.forget(a.id);
        self.locks.release_all(a.id, &a.held);
    }

    /// One worker: drives jobs `w, w+stride, w+2·stride, …` to
    /// completion, retrying aborted attempts with fresh attempt ids.
    fn worker(&self, jobs: &[Job], w: usize, stride: usize, opts: ParOptions) -> WorkerOut {
        let mut out = WorkerOut {
            metrics: Metrics::default(),
            latency: LatencyStats::default(),
            latency_by_level: Default::default(),
            logs: Vec::new(),
        };
        let mut jitter = opts.jitter.then(|| {
            SmallRng::seed_from_u64(
                self.config
                    .seed
                    .wrapping_add((w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            )
        });
        let mut job_idx = w;
        while job_idx < jobs.len() {
            let job = &jobs[job_idx];
            let first_begin = self.clock.load(Ordering::SeqCst);
            let mut retries = 0u32;
            loop {
                let id = AttemptId(self.next_attempt.fetch_add(1, Ordering::SeqCst) + 1);
                let begin = self.register_begin();
                let mut a = Attempt::new(id, job.level, self.config.record_trace);
                let result = self.execute(&mut a, &job.ops, &mut out.metrics, &mut jitter);
                match result {
                    Ok(ct) => {
                        self.unregister_begin(begin);
                        let ticks = ct.saturating_sub(first_begin);
                        out.latency.record(ticks);
                        out.latency_by_level[level_index(job.level)].record(ticks);
                        if self.config.record_trace {
                            out.logs.push(AttemptLog {
                                id,
                                level: job.level,
                                committed: true,
                                events: a.events,
                            });
                        }
                        break;
                    }
                    Err(reason) => {
                        self.abort_attempt(&a);
                        self.unregister_begin(begin);
                        out.metrics.record_abort(reason, job.level);
                        if self.config.record_trace {
                            out.logs.push(AttemptLog {
                                id,
                                level: job.level,
                                committed: false,
                                events: a.events,
                            });
                        }
                        if self.config.max_retries.is_some_and(|m| retries >= m) {
                            out.metrics.gave_up += 1;
                            break;
                        }
                        retries += 1;
                        // Back off a beat so the competitor that killed
                        // us can finish.
                        std::thread::yield_now();
                    }
                }
            }
            job_idx += stride;
        }
        out
    }
}

fn maybe_yield(jitter: &mut Option<SmallRng>) {
    if let Some(rng) = jitter {
        if rng.next_u64() % 2 == 0 {
            std::thread::yield_now();
        }
    }
}

/// Runs `jobs` on `config.threads` worker threads and returns the
/// aggregated [`ParRun`]. Parallel runs are wall-clock nondeterministic
/// by nature; what is guaranteed — and what the test suites assert — is
/// that every exported trace passes the conformance oracle and the
/// abort/commit sets stay within the sequential envelope.
pub fn run_parallel_jobs(jobs: &[Job], config: SimConfig) -> ParRun {
    run_parallel_jobs_with(jobs, config, ParOptions::default())
}

/// [`run_parallel_jobs`] with explicit [`ParOptions`].
pub fn run_parallel_jobs_with(jobs: &[Job], config: SimConfig, opts: ParOptions) -> ParRun {
    let threads = config.threads;
    assert!(threads > 0, "need at least one worker thread");
    let engine = ParEngine::new(config.clone());
    let start = Instant::now();
    let mut outs: Vec<WorkerOut> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let engine = &engine;
                scope.spawn(move || engine.worker(jobs, w, threads, opts))
            })
            .collect();
        for h in handles {
            outs.push(h.join().expect("worker panicked"));
        }
    });
    let elapsed = start.elapsed();

    let mut metrics = Metrics::default();
    let mut latency = LatencyStats::default();
    let mut latency_by_level: [LatencyStats; 3] = Default::default();
    for out in &outs {
        metrics.absorb(&out.metrics);
        latency.merge(&out.latency);
        for (mine, theirs) in latency_by_level.iter_mut().zip(out.latency_by_level.iter()) {
            mine.merge(theirs);
        }
    }
    metrics.ticks = engine.clock.load(Ordering::SeqCst);
    metrics.versions_pruned = engine.versions_pruned.load(Ordering::SeqCst);

    // Replay the per-attempt event buffers, globally sorted by tick,
    // into a TraceRecorder — the tick order is the publication order
    // (see `pstore`), so this is the linearization the store served.
    let mut trace = TraceRecorder::new(config.record_trace);
    if config.record_trace {
        let mut all: Vec<(u64, AttemptId, PEvent)> = Vec::new();
        for out in &mut outs {
            for log in out.logs.drain(..) {
                trace.record_level(log.id, log.level);
                if !log.committed {
                    trace.record_abort(log.id);
                }
                for (ts, ev) in log.events {
                    all.push((ts, log.id, ev));
                }
            }
        }
        all.sort_by_key(|&(ts, _, _)| ts);
        for (ts, who, ev) in all {
            match ev {
                PEvent::Read { object, observed } => trace.record_read(who, object, observed, ts),
                PEvent::Write { object } => trace.record_write(who, object, ts),
                PEvent::Commit => trace.record_commit(who, ts),
            }
        }
    }

    ParRun {
        metrics,
        latency,
        latency_by_level,
        trace,
        elapsed,
        threads,
    }
}

/// Runs a transaction set under an allocation on the parallel engine
/// (one job per transaction, in id order).
pub fn run_parallel_workload(
    txns: &TransactionSet,
    alloc: &Allocation,
    config: SimConfig,
) -> ParRun {
    run_parallel_workload_with(txns, alloc, config, ParOptions::default())
}

/// [`run_parallel_workload`] with explicit [`ParOptions`].
pub fn run_parallel_workload_with(
    txns: &TransactionSet,
    alloc: &Allocation,
    config: SimConfig,
    opts: ParOptions,
) -> ParRun {
    let jobs = jobs_from_workload(txns, alloc);
    let mut run = run_parallel_jobs_with(&jobs, config, opts);
    run.trace.set_object_names(txns.object_names().to_vec());
    run
}
