//! The MVCC engine: executes individual operations of concurrent
//! transaction attempts under per-transaction isolation levels.

use crate::config::{SimConfig, SsiMode};
use crate::locks::{LockOutcome, LockTable};
use crate::metrics::{LatencyStats, Metrics};
use crate::ssi::{SsiTracker, TxnFootprint};
use crate::trace::TraceRecorder;
use crate::version::{AttemptId, Observed, Version, VersionStore};
use mvisolation::IsolationLevel;
use mvmodel::{Object, Op, OpKind};
use std::collections::{HashMap, HashSet};

/// Why an attempt was aborted.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AbortReason {
    /// Snapshot transaction attempted to overwrite a version committed
    /// after its snapshot (first-committer-wins).
    FirstCommitterWins,
    /// The lock request would have closed a waits-for cycle.
    Deadlock,
    /// Committing would have completed (exact mode) or risked
    /// (conservative mode) a dangerous structure.
    SsiDangerous,
}

impl std::fmt::Display for AbortReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AbortReason::FirstCommitterWins => "first-committer-wins",
            AbortReason::Deadlock => "deadlock",
            AbortReason::SsiDangerous => "ssi-dangerous-structure",
        })
    }
}

/// Result of executing one step of an attempt.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepOutcome {
    /// The operation executed; the attempt has more operations.
    Progress,
    /// The attempt blocked on a write lock; the engine will wake it.
    Blocked,
    /// The attempt committed (all operations done).
    Committed,
    /// The attempt aborted; its effects are rolled back.
    Aborted(AbortReason),
}

/// An in-flight transaction attempt.
#[derive(Debug)]
struct Active {
    level: IsolationLevel,
    ops: Vec<Op>,
    pc: usize,
    /// Snapshot/start timestamp; assigned lazily at the first operation so
    /// `first(T)` semantics match the formal model.
    start_ts: Option<u64>,
    /// Observed version per read, in program order.
    reads: Vec<(Object, Observed)>,
    /// Buffered writes (installed at commit).
    writes: Vec<Object>,
    /// Program counter of a write already recorded in the trace at its
    /// first (blocked) attempt — see `Engine::write`.
    trace_recorded_pc: Option<usize>,
}

impl Active {
    fn has_written(&self, object: Object) -> bool {
        self.writes.contains(&object)
    }
}

/// The multiversion engine.
///
/// The driver owns the scheduling policy; the engine exposes
/// [`Engine::begin`], [`Engine::step`] and bookkeeping accessors.
pub struct Engine {
    config: SimConfig,
    clock: u64,
    store: VersionStore,
    locks: LockTable,
    ssi: SsiTracker,
    active: HashMap<AttemptId, Active>,
    next_attempt: u64,
    pending_wakes: Vec<AttemptId>,
    /// SSI transactions marked for abort by conservative-mode pivot rules.
    doomed: HashSet<AttemptId>,
    pub metrics: Metrics,
    /// Per-job commit latencies, filled by the driver.
    pub latency: LatencyStats,
    /// Commit latencies split by the job's isolation level (indexed by
    /// [`crate::metrics::level_index`]), filled by the driver.
    pub latency_by_level: [LatencyStats; 3],
    pub trace: TraceRecorder,
}

impl Engine {
    pub fn new(config: SimConfig) -> Self {
        let record = config.record_trace;
        Engine {
            config,
            clock: 0,
            store: VersionStore::new(),
            locks: LockTable::new(),
            ssi: SsiTracker::new(),
            active: HashMap::new(),
            next_attempt: 0,
            pending_wakes: Vec::new(),
            doomed: HashSet::new(),
            metrics: Metrics::default(),
            latency: LatencyStats::default(),
            latency_by_level: Default::default(),
            trace: TraceRecorder::new(record),
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Current logical time.
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Starts a new attempt executing `ops` at `level`.
    pub fn begin(&mut self, ops: Vec<Op>, level: IsolationLevel) -> AttemptId {
        self.next_attempt += 1;
        let id = AttemptId(self.next_attempt);
        self.trace.record_level(id, level);
        self.active.insert(
            id,
            Active {
                level,
                ops,
                pc: 0,
                start_ts: None,
                reads: Vec::new(),
                writes: Vec::new(),
                trace_recorded_pc: None,
            },
        );
        id
    }

    /// Executes the next operation of `who` (or retries the operation it
    /// blocked on). Must not be called for attempts currently blocked —
    /// the driver waits for the wake notification from the lock release.
    pub fn step(&mut self, who: AttemptId) -> (StepOutcome, Vec<AttemptId>) {
        debug_assert!(
            self.locks.waiting(who).is_none(),
            "stepping a blocked attempt"
        );
        if self.doomed.remove(&who) {
            return (self.abort(who, AbortReason::SsiDangerous), Vec::new());
        }
        let a = self.active.get(&who).expect("unknown attempt");
        if a.pc >= a.ops.len() {
            return self.commit(who);
        }
        let op = a.ops[a.pc];
        match op.kind {
            OpKind::Read => {
                self.read(who, op.object);
                (StepOutcome::Progress, Vec::new())
            }
            OpKind::Write => self.write(who, op.object),
        }
    }

    fn ensure_started(&mut self, who: AttemptId) -> u64 {
        let now = self.clock;
        let a = self.active.get_mut(&who).expect("unknown attempt");
        *a.start_ts.get_or_insert(now)
    }

    fn read(&mut self, who: AttemptId, object: Object) {
        let start = self.ensure_started(who);
        let ts = self.tick();
        let a = &self.active[&who];
        let snapshot = match a.level {
            IsolationLevel::ReadCommitted => ts, // latest committed, now
            _ => start,                          // transaction snapshot
        };
        debug_assert!(
            !a.has_written(object),
            "workloads must read an object before writing it (own-write reads \
             are outside the paper's formal model)"
        );
        let observed = self.store.read(object, snapshot);
        // Conservative SSI: observing an old version of an object a
        // concurrent SSI transaction overwrote forms the edge
        // `who →rw writer`; since the writer is already committed, the
        // Postgres pivot rule applies — if the writer also has an
        // outgoing edge, the structure is complete and the reader must
        // abort.
        if self.config.ssi_mode == SsiMode::Conservative
            && a.level == IsolationLevel::SerializableSnapshotIsolation
        {
            if let Observed::Version(latest) = self.store.latest(object) {
                let writer_ssi = self.ssi.footprint(latest.writer).is_some_and(|f| f.ssi);
                if writer_ssi && latest.commit_ts > observed.ts() && latest.commit_ts > start {
                    self.ssi.record_rw_edge(who, latest.writer);
                    if self.ssi.has_out(latest.writer) {
                        self.doomed.insert(who);
                    }
                }
            }
        }
        let a = self.active.get_mut(&who).expect("unknown attempt");
        a.reads.push((object, observed));
        a.pc += 1;
        self.metrics.reads += 1;
        self.trace.record_read(who, object, observed, ts);
    }

    fn write(&mut self, who: AttemptId, object: Object) -> (StepOutcome, Vec<AttemptId>) {
        let start = self.ensure_started(who);
        let a = &self.active[&who];
        let level = a.level;
        // First-committer-wins for snapshot transactions: a version
        // committed after our snapshot dooms us (checked both before and
        // after blocking).
        if level.snapshot_at_start() && self.store.committed_after(object, start) {
            return (self.abort(who, AbortReason::FirstCommitterWins), Vec::new());
        }
        match self.locks.acquire(who, object) {
            LockOutcome::Granted => {
                let ts = self.tick();
                let a = self.active.get_mut(&who).expect("unknown attempt");
                if !a.has_written(object) {
                    a.writes.push(object);
                }
                let already_recorded = a.trace_recorded_pc == Some(a.pc);
                a.trace_recorded_pc = None;
                a.pc += 1;
                self.metrics.writes += 1;
                if !already_recorded {
                    self.trace.record_write(who, object, ts);
                }
                (StepOutcome::Progress, Vec::new())
            }
            LockOutcome::Blocked { .. } => {
                self.metrics.blocked_events += 1;
                // Snapshot transactions take their snapshot at the first
                // *attempt* of their first operation; the faithful formal
                // position of a blocked write is therefore the attempt,
                // not the resume. (Safe: first-committer-wins guarantees
                // no version of `object` commits between attempt and
                // resume, else this transaction aborts — so no dirty
                // write can appear in the exported schedule.) RC
                // transactions anchor per statement and are recorded at
                // the resume instead.
                if level.snapshot_at_start() {
                    let a = self.active.get_mut(&who).expect("unknown attempt");
                    if a.trace_recorded_pc != Some(a.pc) {
                        a.trace_recorded_pc = Some(a.pc);
                        let ts = self.tick();
                        self.trace.record_write(who, object, ts);
                    }
                }
                (StepOutcome::Blocked, Vec::new())
            }
            LockOutcome::Deadlock => (self.abort(who, AbortReason::Deadlock), Vec::new()),
        }
    }

    fn commit(&mut self, who: AttemptId) -> (StepOutcome, Vec<AttemptId>) {
        let commit_ts = self.tick();
        let a = self.active.get(&who).expect("unknown attempt");
        let start_ts = a.start_ts.unwrap_or(commit_ts - 1);
        let footprint = TxnFootprint {
            attempt: who,
            ssi: a.level == IsolationLevel::SerializableSnapshotIsolation,
            start_ts,
            commit_ts,
            reads: a.reads.iter().map(|&(o, obs)| (o, obs.ts())).collect(),
            writes: a.writes.iter().map(|&o| (o, commit_ts)).collect(),
        };
        let dangerous = match self.config.ssi_mode {
            SsiMode::Exact => self.ssi.exact_check(&footprint),
            SsiMode::Conservative => footprint.ssi && self.conservative_commit_check(&footprint),
        };
        if dangerous {
            return (self.abort(who, AbortReason::SsiDangerous), Vec::new());
        }
        // Install versions and release locks.
        let a = self.active.remove(&who).expect("unknown attempt");
        for &object in &a.writes {
            debug_assert!(self.locks.holds(who, object));
            self.store.install(
                object,
                Version {
                    commit_ts,
                    writer: who,
                },
            );
        }
        self.ssi.admit(footprint);
        let woken = self.locks.release_all(who);
        self.metrics.record_commit(a.level);
        self.trace.record_commit(who, commit_ts);
        self.maybe_gc();
        (StepOutcome::Committed, woken)
    }

    /// The Cahill/Postgres-style conservative commit protocol for an SSI
    /// transaction `t`:
    ///
    /// 1. form all rw edges between `t` and *committed* concurrent SSI
    ///    transactions (both directions), applying the pivot rules — an
    ///    edge to a committed transaction that already has the matching
    ///    second flag completes a potential structure and dooms `t`;
    /// 2. form edges from *active* SSI readers that observed versions `t`
    ///    is about to overwrite (their SIREADs), dooming any active reader
    ///    that thereby acquires both flags;
    /// 3. finally, abort `t` when it holds both an incoming and an
    ///    outgoing flag.
    fn conservative_commit_check(&mut self, t: &TxnFootprint) -> bool {
        let who = t.attempt;
        // (1) Edges with committed footprints.
        let mut edges: Vec<(AttemptId, AttemptId)> = Vec::new();
        let mut doom_self = false;
        for f in self.ssi.committed_footprints() {
            if !f.ssi || !f.concurrent(t) {
                continue;
            }
            if t.rw_antidep_to(f) {
                edges.push((who, f.attempt));
                if self.ssi.has_out(f.attempt) {
                    doom_self = true; // t → committed pivot with out-edge
                }
            }
            if f.rw_antidep_to(t) {
                edges.push((f.attempt, who));
                if self.ssi.has_in(f.attempt) {
                    doom_self = true; // committed pivot with in-edge → t
                }
            }
        }
        // (2) Active SSI readers whose snapshots miss our writes.
        let mut doom_others: Vec<AttemptId> = Vec::new();
        for (&other, a) in &self.active {
            if other == who || a.level != IsolationLevel::SerializableSnapshotIsolation {
                continue;
            }
            let overlaps = a.start_ts.is_none_or(|s| s < t.commit_ts);
            if !overlaps {
                continue;
            }
            let reads_stale = a
                .reads
                .iter()
                .any(|&(o, obs)| t.writes.iter().any(|&(wo, wts)| wo == o && obs.ts() < wts));
            if reads_stale {
                edges.push((other, who));
            }
        }
        for (from, to) in edges {
            self.ssi.record_rw_edge(from, to);
        }
        for (&other, a) in &self.active {
            if a.level == IsolationLevel::SerializableSnapshotIsolation
                && self.ssi.conservative_flags(other)
            {
                doom_others.push(other);
            }
        }
        self.doomed.extend(doom_others);
        doom_self || self.ssi.conservative_flags(who)
    }

    fn abort(&mut self, who: AttemptId, reason: AbortReason) -> StepOutcome {
        let a = self.active.remove(&who).expect("unknown attempt");
        self.doomed.remove(&who);
        self.ssi.forget(who);
        let woken = self.locks.release_all(who);
        debug_assert!(woken.is_empty() || !woken.contains(&who));
        self.pending_wakes.extend(woken);
        self.metrics.record_abort(reason, a.level);
        self.trace.record_abort(who);
        StepOutcome::Aborted(reason)
    }

    fn maybe_gc(&mut self) {
        if self.metrics.commits.is_multiple_of(64) {
            let horizon = self
                .active
                .values()
                .filter_map(|a| a.start_ts)
                .min()
                .unwrap_or(self.clock);
            self.ssi.gc(horizon);
            // Version chains are safe to prune at the same watermark: no
            // active snapshot sits below the minimum active start, and
            // every future snapshot is drawn at or after the current
            // clock. Traces are unaffected — reads already happened.
            self.metrics.versions_pruned += self.store.gc(horizon);
        }
    }

    /// Number of retained committed versions of `object` (diagnostics).
    pub fn version_count(&self, object: Object) -> usize {
        self.store.version_count(object)
    }

    /// Total retained committed versions across all objects.
    pub fn total_versions(&self) -> usize {
        self.store.total_versions()
    }

    /// Attempts woken by lock releases during aborts, drained by the
    /// driver.
    pub fn drain_wakes(&mut self) -> Vec<AttemptId> {
        std::mem::take(&mut self.pending_wakes)
    }

    /// Whether `who` is currently blocked on a lock.
    pub fn is_blocked(&self, who: AttemptId) -> bool {
        self.locks.waiting(who).is_some()
    }

    /// Number of in-flight attempts (diagnostics).
    pub fn active_count(&self) -> usize {
        self.active.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvmodel::Op;

    fn obj(n: u32) -> Object {
        Object(n)
    }

    #[test]
    fn rc_reads_see_latest_committed() {
        let mut e = Engine::new(SimConfig::default());
        let w = e.begin(vec![Op::write(obj(1))], IsolationLevel::RC);
        assert_eq!(e.step(w).0, StepOutcome::Progress);
        assert_eq!(e.step(w).0, StepOutcome::Committed);
        let r = e.begin(vec![Op::read(obj(1))], IsolationLevel::RC);
        assert_eq!(e.step(r).0, StepOutcome::Progress);
        let observed = e.trace.last_read_observed().expect("read recorded");
        assert_eq!(observed.writer(), Some(w));
    }

    #[test]
    fn si_reads_use_transaction_snapshot() {
        let mut e = Engine::new(SimConfig::default());
        // T1 (SI) starts by reading object 2; then T2 writes object 1 and
        // commits; T1's later read of object 1 must still see op0.
        let t1 = e.begin(vec![Op::read(obj(2)), Op::read(obj(1))], IsolationLevel::SI);
        assert_eq!(e.step(t1).0, StepOutcome::Progress);
        let t2 = e.begin(vec![Op::write(obj(1))], IsolationLevel::RC);
        e.step(t2);
        assert_eq!(e.step(t2).0, StepOutcome::Committed);
        assert_eq!(e.step(t1).0, StepOutcome::Progress);
        let observed = e.trace.last_read_observed().unwrap();
        assert_eq!(
            observed,
            Observed::Initial,
            "SI read must ignore later commits"
        );
    }

    #[test]
    fn rc_read_after_commit_sees_new_version() {
        let mut e = Engine::new(SimConfig::default());
        let t1 = e.begin(vec![Op::read(obj(2)), Op::read(obj(1))], IsolationLevel::RC);
        e.step(t1);
        let t2 = e.begin(vec![Op::write(obj(1))], IsolationLevel::RC);
        e.step(t2);
        e.step(t2);
        e.step(t1);
        let observed = e.trace.last_read_observed().unwrap();
        assert_eq!(
            observed.writer(),
            Some(t2),
            "RC reads per-statement snapshots"
        );
    }

    #[test]
    fn first_committer_wins_aborts_si_writer() {
        let mut e = Engine::new(SimConfig::default());
        let t1 = e.begin(
            vec![Op::read(obj(1)), Op::write(obj(1))],
            IsolationLevel::SI,
        );
        e.step(t1); // read: snapshot taken
        let t2 = e.begin(vec![Op::write(obj(1))], IsolationLevel::RC);
        e.step(t2);
        e.step(t2); // committed a newer version of obj 1
        let (out, _) = e.step(t1);
        assert_eq!(out, StepOutcome::Aborted(AbortReason::FirstCommitterWins));
        assert_eq!(e.metrics.aborts_fcw, 1);
    }

    #[test]
    fn rc_writer_survives_concurrent_committed_write() {
        let mut e = Engine::new(SimConfig::default());
        let t1 = e.begin(
            vec![Op::read(obj(1)), Op::write(obj(1))],
            IsolationLevel::RC,
        );
        e.step(t1);
        let t2 = e.begin(vec![Op::write(obj(1))], IsolationLevel::RC);
        e.step(t2);
        e.step(t2);
        assert_eq!(e.step(t1).0, StepOutcome::Progress, "RC writes through");
        assert_eq!(e.step(t1).0, StepOutcome::Committed);
        assert_eq!(e.metrics.commits, 2);
    }

    #[test]
    fn write_lock_blocks_until_commit() {
        let mut e = Engine::new(SimConfig::default());
        let t1 = e.begin(vec![Op::write(obj(1))], IsolationLevel::RC);
        e.step(t1); // holds lock
        let t2 = e.begin(vec![Op::write(obj(1))], IsolationLevel::RC);
        let (out, _) = e.step(t2);
        assert_eq!(out, StepOutcome::Blocked);
        assert!(e.is_blocked(t2));
        let (out, woken) = e.step(t1); // commit releases the lock
        assert_eq!(out, StepOutcome::Committed);
        assert_eq!(woken, vec![t2]);
        assert!(!e.is_blocked(t2));
        // T2 (RC) retries its write and proceeds.
        assert_eq!(e.step(t2).0, StepOutcome::Progress);
        assert_eq!(e.step(t2).0, StepOutcome::Committed);
    }

    #[test]
    fn unblocked_si_writer_hits_fcw() {
        let mut e = Engine::new(SimConfig::default());
        let t1 = e.begin(vec![Op::write(obj(1))], IsolationLevel::RC);
        e.step(t1);
        let t2 = e.begin(
            vec![Op::read(obj(2)), Op::write(obj(1))],
            IsolationLevel::SI,
        );
        e.step(t2); // snapshot
        assert_eq!(e.step(t2).0, StepOutcome::Blocked);
        let (_, woken) = e.step(t1);
        assert_eq!(woken, vec![t2]);
        // On retry, the freshly committed version dooms T2.
        let (out, _) = e.step(t2);
        assert_eq!(out, StepOutcome::Aborted(AbortReason::FirstCommitterWins));
    }

    #[test]
    fn deadlock_aborts_requester() {
        let mut e = Engine::new(SimConfig::default());
        let t1 = e.begin(
            vec![Op::write(obj(1)), Op::write(obj(2))],
            IsolationLevel::RC,
        );
        let t2 = e.begin(
            vec![Op::write(obj(2)), Op::write(obj(1))],
            IsolationLevel::RC,
        );
        e.step(t1); // t1 holds 1
        e.step(t2); // t2 holds 2
        assert_eq!(e.step(t1).0, StepOutcome::Blocked); // t1 wants 2
        let (out, _) = e.step(t2); // t2 wants 1: cycle
        assert_eq!(out, StepOutcome::Aborted(AbortReason::Deadlock));
        // T2's abort released object 2 and woke T1.
        let wakes = e.drain_wakes();
        assert_eq!(wakes, vec![t1]);
        assert_eq!(e.step(t1).0, StepOutcome::Progress);
        assert_eq!(e.step(t1).0, StepOutcome::Committed);
    }

    #[test]
    fn exact_ssi_aborts_write_skew_second_committer() {
        let mut e = Engine::new(SimConfig::default());
        let t1 = e.begin(
            vec![Op::read(obj(1)), Op::write(obj(2))],
            IsolationLevel::SSI,
        );
        let t2 = e.begin(
            vec![Op::read(obj(2)), Op::write(obj(1))],
            IsolationLevel::SSI,
        );
        e.step(t1); // R1[x]
        e.step(t2); // R2[y]
        e.step(t1); // W1[y]
        e.step(t2); // W2[x]
        assert_eq!(
            e.step(t2).0,
            StepOutcome::Committed,
            "first committer passes"
        );
        let (out, _) = e.step(t1);
        assert_eq!(out, StepOutcome::Aborted(AbortReason::SsiDangerous));
        assert_eq!(e.metrics.aborts_ssi, 1);
    }

    #[test]
    fn si_write_skew_commits_both() {
        // The same interleaving under plain SI commits both — the anomaly
        // SSI exists to prevent.
        let mut e = Engine::new(SimConfig::default());
        let t1 = e.begin(
            vec![Op::read(obj(1)), Op::write(obj(2))],
            IsolationLevel::SI,
        );
        let t2 = e.begin(
            vec![Op::read(obj(2)), Op::write(obj(1))],
            IsolationLevel::SI,
        );
        e.step(t1);
        e.step(t2);
        e.step(t1);
        e.step(t2);
        assert_eq!(e.step(t2).0, StepOutcome::Committed);
        assert_eq!(e.step(t1).0, StepOutcome::Committed);
        assert_eq!(e.metrics.commits, 2);
    }

    #[test]
    fn conservative_ssi_also_stops_write_skew() {
        let mut e = Engine::new(SimConfig::default().with_ssi_mode(SsiMode::Conservative));
        let t1 = e.begin(
            vec![Op::read(obj(1)), Op::write(obj(2))],
            IsolationLevel::SSI,
        );
        let t2 = e.begin(
            vec![Op::read(obj(2)), Op::write(obj(1))],
            IsolationLevel::SSI,
        );
        e.step(t1);
        e.step(t2);
        e.step(t1);
        e.step(t2);
        let first = e.step(t2).0;
        let second = e.step(t1).0;
        // At least one of the two must abort.
        let aborted =
            matches!(first, StepOutcome::Aborted(_)) || matches!(second, StepOutcome::Aborted(_));
        assert!(
            aborted,
            "conservative SSI must break the skew: {first:?} {second:?}"
        );
    }

    #[test]
    fn gc_bounds_version_chains_over_long_runs() {
        use crate::driver::{run_jobs, Job};
        // 300 RC read-modify-writes of one object, serially: without GC
        // the chain would hold 300 versions; with the 64-commit cadence
        // it stays near the horizon.
        let jobs: Vec<Job> = (0..300)
            .map(|_| {
                Job::new(
                    vec![Op::read(obj(0)), Op::write(obj(0))],
                    IsolationLevel::RC,
                )
            })
            .collect();
        let engine = run_jobs(&jobs, SimConfig::default().with_concurrency(2));
        assert_eq!(engine.metrics.commits, 300);
        assert!(
            engine.metrics.versions_pruned > 0,
            "GC must have fired on a 300-commit run"
        );
        assert!(
            engine.version_count(obj(0)) < 128,
            "chain kept {} versions despite GC",
            engine.version_count(obj(0))
        );
        assert_eq!(
            engine.version_count(obj(0)) as u64 + engine.metrics.versions_pruned,
            300,
            "pruned + retained must account for every installed version"
        );
    }

    #[test]
    fn gc_never_prunes_below_an_active_snapshot() {
        // T1 (SI) pins a snapshot at the very beginning; 70 writers then
        // commit, crossing the 64-commit GC cadence. T1's late read must
        // still observe its snapshot version (the initial one), and the
        // version its snapshot sits just below must survive GC.
        let mut e = Engine::new(SimConfig::default());
        let t1 = e.begin(vec![Op::read(obj(1)), Op::read(obj(0))], IsolationLevel::SI);
        assert_eq!(e.step(t1).0, StepOutcome::Progress); // snapshot pinned
        for _ in 0..70 {
            let w = e.begin(vec![Op::write(obj(0))], IsolationLevel::RC);
            assert_eq!(e.step(w).0, StepOutcome::Progress);
            assert_eq!(e.step(w).0, StepOutcome::Committed);
        }
        // GC ran (commit 64), but the watermark was T1's start.
        assert!(e.metrics.versions_pruned == 0 || e.version_count(obj(0)) <= 70);
        assert_eq!(e.step(t1).0, StepOutcome::Progress);
        assert_eq!(
            e.trace.last_read_observed().unwrap(),
            Observed::Initial,
            "active snapshot must stay readable across GC"
        );
        assert_eq!(e.step(t1).0, StepOutcome::Committed);
    }

    #[test]
    fn empty_transaction_commits() {
        let mut e = Engine::new(SimConfig::default());
        let t = e.begin(vec![], IsolationLevel::SSI);
        assert_eq!(e.step(t).0, StepOutcome::Committed);
        assert_eq!(e.active_count(), 0);
    }
}
