//! Execution counters and derived statistics.

use crate::engine::AbortReason;
use mvisolation::IsolationLevel;

/// Index of an isolation level into per-level counter arrays (`RC` = 0,
/// `SI` = 1, `SSI` = 2).
pub fn level_index(level: IsolationLevel) -> usize {
    match level {
        IsolationLevel::ReadCommitted => 0,
        IsolationLevel::SnapshotIsolation => 1,
        IsolationLevel::SerializableSnapshotIsolation => 2,
    }
}

/// Commit/abort counters for one isolation level — the per-level view of
/// the same events the global [`Metrics`] counters record.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LevelCounters {
    pub commits: u64,
    pub aborts_fcw: u64,
    pub aborts_deadlock: u64,
    pub aborts_ssi: u64,
}

impl LevelCounters {
    pub fn total_aborts(&self) -> u64 {
        self.aborts_fcw + self.aborts_deadlock + self.aborts_ssi
    }

    /// Fraction of this level's attempts that aborted.
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.commits + self.total_aborts();
        if attempts == 0 {
            0.0
        } else {
            self.total_aborts() as f64 / attempts as f64
        }
    }
}

/// Counters collected by the engine and driver.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Metrics {
    pub commits: u64,
    pub aborts_fcw: u64,
    pub aborts_deadlock: u64,
    pub aborts_ssi: u64,
    pub reads: u64,
    pub writes: u64,
    pub blocked_events: u64,
    /// Jobs abandoned after exhausting their retry budget.
    pub gave_up: u64,
    /// Final logical clock — every read/write/commit advances it by one,
    /// so it measures total work including wasted (aborted) operations.
    pub ticks: u64,
    /// Committed versions pruned by version-chain GC (below the oldest
    /// active snapshot watermark).
    pub versions_pruned: u64,
    /// Commits/aborts split by the attempt's isolation level (indexed by
    /// [`level_index`]): the data behind the mixed-vs-SSI comparison.
    pub per_level: [LevelCounters; 3],
}

impl Metrics {
    /// The per-level counters for `level`.
    pub fn level(&self, level: IsolationLevel) -> &LevelCounters {
        &self.per_level[level_index(level)]
    }

    pub fn record_commit(&mut self, level: IsolationLevel) {
        self.commits += 1;
        self.per_level[level_index(level)].commits += 1;
    }

    pub fn record_abort(&mut self, reason: AbortReason, level: IsolationLevel) {
        let per = &mut self.per_level[level_index(level)];
        match reason {
            AbortReason::FirstCommitterWins => {
                self.aborts_fcw += 1;
                per.aborts_fcw += 1;
            }
            AbortReason::Deadlock => {
                self.aborts_deadlock += 1;
                per.aborts_deadlock += 1;
            }
            AbortReason::SsiDangerous => {
                self.aborts_ssi += 1;
                per.aborts_ssi += 1;
            }
        }
    }

    pub fn total_aborts(&self) -> u64 {
        self.aborts_fcw + self.aborts_deadlock + self.aborts_ssi
    }

    /// Committed transactions per logical tick — the throughput proxy:
    /// ticks spent on aborted attempts and retries lower it.
    pub fn goodput(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.commits as f64 / self.ticks as f64
        }
    }

    /// Fraction of attempts that aborted.
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.commits + self.total_aborts();
        if attempts == 0 {
            0.0
        } else {
            self.total_aborts() as f64 / attempts as f64
        }
    }

    /// Merges another metrics object's counters into this one — used to
    /// aggregate per-worker metrics from the parallel engine and
    /// per-run metrics in repeat loops. `ticks` takes the maximum: it is
    /// a shared clock reading, not a per-worker counter.
    pub fn absorb(&mut self, other: &Metrics) {
        self.commits += other.commits;
        self.aborts_fcw += other.aborts_fcw;
        self.aborts_deadlock += other.aborts_deadlock;
        self.aborts_ssi += other.aborts_ssi;
        self.reads += other.reads;
        self.writes += other.writes;
        self.blocked_events += other.blocked_events;
        self.gave_up += other.gave_up;
        self.ticks = self.ticks.max(other.ticks);
        self.versions_pruned += other.versions_pruned;
        for (mine, theirs) in self.per_level.iter_mut().zip(other.per_level.iter()) {
            mine.commits += theirs.commits;
            mine.aborts_fcw += theirs.aborts_fcw;
            mine.aborts_deadlock += theirs.aborts_deadlock;
            mine.aborts_ssi += theirs.aborts_ssi;
        }
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "commits={} aborts(fcw={}, deadlock={}, ssi={}) gave_up={} ticks={} goodput={:.4} abort_rate={:.3}",
            self.commits,
            self.aborts_fcw,
            self.aborts_deadlock,
            self.aborts_ssi,
            self.gave_up,
            self.ticks,
            self.goodput(),
            self.abort_rate(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_recording_and_rates() {
        let mut m = Metrics::default();
        m.record_abort(AbortReason::FirstCommitterWins, IsolationLevel::SI);
        m.record_abort(AbortReason::Deadlock, IsolationLevel::RC);
        m.record_abort(AbortReason::SsiDangerous, IsolationLevel::SSI);
        m.record_abort(AbortReason::SsiDangerous, IsolationLevel::SSI);
        assert_eq!(m.total_aborts(), 4);
        assert_eq!(m.aborts_ssi, 2);
        for _ in 0..6 {
            m.record_commit(IsolationLevel::RC);
        }
        assert!((m.abort_rate() - 0.4).abs() < 1e-9);
        m.ticks = 60;
        assert!((m.goodput() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn per_level_counters_split_the_global_ones() {
        let mut m = Metrics::default();
        m.record_commit(IsolationLevel::RC);
        m.record_commit(IsolationLevel::SSI);
        m.record_abort(AbortReason::FirstCommitterWins, IsolationLevel::SI);
        m.record_abort(AbortReason::SsiDangerous, IsolationLevel::SSI);
        let sum_commits: u64 = m.per_level.iter().map(|l| l.commits).sum();
        let sum_aborts: u64 = m.per_level.iter().map(|l| l.total_aborts()).sum();
        assert_eq!(sum_commits, m.commits);
        assert_eq!(sum_aborts, m.total_aborts());
        assert_eq!(m.level(IsolationLevel::SI).aborts_fcw, 1);
        assert_eq!(m.level(IsolationLevel::SSI).commits, 1);
        assert_eq!(m.level(IsolationLevel::SSI).aborts_ssi, 1);
        assert!((m.level(IsolationLevel::SSI).abort_rate() - 0.5).abs() < 1e-9);
        assert_eq!(m.level(IsolationLevel::RC).abort_rate(), 0.0);
        assert_eq!(
            [0, 1, 2],
            [
                level_index(IsolationLevel::RC),
                level_index(IsolationLevel::SI),
                level_index(IsolationLevel::SSI)
            ]
        );
    }

    #[test]
    fn absorb_sums_counters_and_maxes_ticks() {
        let mut a = Metrics::default();
        a.record_commit(IsolationLevel::RC);
        a.ticks = 10;
        a.versions_pruned = 3;
        let mut b = Metrics::default();
        b.record_commit(IsolationLevel::SSI);
        b.record_abort(AbortReason::Deadlock, IsolationLevel::SSI);
        b.ticks = 25;
        b.reads = 7;
        a.absorb(&b);
        assert_eq!(a.commits, 2);
        assert_eq!(a.aborts_deadlock, 1);
        assert_eq!(a.ticks, 25, "ticks is a clock reading, not a counter");
        assert_eq!(a.versions_pruned, 3);
        assert_eq!(a.reads, 7);
        assert_eq!(a.level(IsolationLevel::RC).commits, 1);
        assert_eq!(a.level(IsolationLevel::SSI).commits, 1);
        assert_eq!(a.level(IsolationLevel::SSI).aborts_deadlock, 1);
    }

    #[test]
    fn zero_division_guards() {
        let m = Metrics::default();
        assert_eq!(m.goodput(), 0.0);
        assert_eq!(m.abort_rate(), 0.0);
        assert!(m.to_string().contains("commits=0"));
    }
}

/// Per-job commit latencies in logical ticks (first attempt begin →
/// commit), including time lost to retries.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencyStats {
    samples: Vec<u64>,
}

impl LatencyStats {
    pub fn record(&mut self, ticks: u64) {
        self.samples.push(ticks);
    }

    pub fn count(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64
    }

    /// The q-quantile (0.0 ..= 1.0) by nearest-rank.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((q.clamp(0.0, 1.0)) * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank]
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.5)
    }

    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    pub fn max(&self) -> u64 {
        self.samples.iter().copied().max().unwrap_or(0)
    }

    /// The raw samples (unsorted, in completion order).
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// Absorbs another stats object's samples.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.samples.extend_from_slice(&other.samples);
    }
}

impl std::fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "latency ticks: mean={:.1} p50={} p95={} max={} (n={})",
            self.mean(),
            self.p50(),
            self.p95(),
            self.max(),
            self.count()
        )
    }
}

#[cfg(test)]
mod latency_tests {
    use super::*;

    #[test]
    fn quantiles_and_mean() {
        let mut l = LatencyStats::default();
        assert!(l.is_empty());
        assert_eq!(l.p50(), 0);
        assert_eq!(l.mean(), 0.0);
        for v in [10u64, 20, 30, 40, 100] {
            l.record(v);
        }
        assert_eq!(l.count(), 5);
        assert_eq!(l.mean(), 40.0);
        assert_eq!(l.p50(), 30);
        assert_eq!(l.max(), 100);
        assert_eq!(l.quantile(0.0), 10);
        assert_eq!(l.quantile(1.0), 100);
        assert!(l.to_string().contains("p50=30"));
        let mut m = LatencyStats::default();
        m.record(1);
        m.merge(&l);
        assert_eq!(m.count(), 6);
        assert_eq!(m.samples().len(), 6);
    }
}
