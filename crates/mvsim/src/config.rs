//! Simulator configuration.

/// How the engine prevents dangerous structures among SSI transactions.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SsiMode {
    /// Abort a committing SSI transaction iff its commit would complete a
    /// dangerous structure among committed SSI transactions (Definition
    /// 2.4's condition, checked exactly). Zero false positives; the
    /// committed history never contains a dangerous structure.
    #[default]
    Exact,
    /// Cahill-style `inConflict`/`outConflict` flag tracking: abort any
    /// SSI transaction observed with both an incoming and an outgoing
    /// rw-antidependency to concurrent transactions. Matches deployed
    /// implementations more closely and admits false-positive aborts.
    Conservative,
}

/// Engine/driver configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Seed for the driver's interleaving choices.
    pub seed: u64,
    /// Number of concurrent sessions executing jobs.
    pub concurrency: usize,
    /// Maximum retries per job after aborts (`None` = retry forever).
    pub max_retries: Option<u32>,
    /// Dangerous-structure detector.
    pub ssi_mode: SsiMode,
    /// Record the committed execution for export as a formal schedule.
    /// Disable for long throughput runs.
    pub record_trace: bool,
    /// OS worker threads for the parallel engine ([`crate::par`]). The
    /// sequential driver ignores it — logical concurrency there is
    /// `concurrency`; this is hardware parallelism.
    pub threads: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            concurrency: 4,
            max_retries: None,
            ssi_mode: SsiMode::Exact,
            record_trace: true,
            threads: 1,
        }
    }
}

impl SimConfig {
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_concurrency(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one session");
        self.concurrency = n;
        self
    }

    pub fn with_ssi_mode(mut self, mode: SsiMode) -> Self {
        self.ssi_mode = mode;
        self
    }

    pub fn with_trace(mut self, record: bool) -> Self {
        self.record_trace = record;
        self
    }

    pub fn with_max_retries(mut self, n: u32) -> Self {
        self.max_retries = Some(n);
        self
    }

    pub fn with_threads(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one worker thread");
        self.threads = n;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods() {
        let c = SimConfig::default()
            .with_seed(7)
            .with_concurrency(2)
            .with_ssi_mode(SsiMode::Conservative)
            .with_trace(false)
            .with_max_retries(3)
            .with_threads(4);
        assert_eq!(c.seed, 7);
        assert_eq!(c.concurrency, 2);
        assert_eq!(c.ssi_mode, SsiMode::Conservative);
        assert!(!c.record_trace);
        assert_eq!(c.max_retries, Some(3));
        assert_eq!(c.threads, 4);
    }

    #[test]
    #[should_panic(expected = "at least one worker thread")]
    fn zero_threads_rejected() {
        let _ = SimConfig::default().with_threads(0);
    }

    #[test]
    #[should_panic(expected = "at least one session")]
    fn zero_concurrency_rejected() {
        let _ = SimConfig::default().with_concurrency(0);
    }
}
