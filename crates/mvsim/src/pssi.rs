//! Concurrent SSI tracker for the parallel engine.
//!
//! Committed footprints live behind one mutex — the commit path is
//! already serialized by the engine's commit lock, so that mutex is
//! uncontended in practice. The Cahill `inConflict`/`outConflict` flags
//! are atomics behind a read-mostly map, so the *read path* can record
//! rw-antidependency edges (reader observed a version a committed SSI
//! transaction overwrote) without blocking committers.
//!
//! The parallel conservative commit check runs steps (1) and (3) of the
//! sequential protocol (edges with committed footprints + own flags)
//! but not step (2), dooming of *active* readers — a worker cannot
//! safely reach into another worker's in-flight attempt. That step is
//! an early-abort optimization, not a safety requirement: for any real
//! dangerous structure `T₁ →rw T₂ →rw T₃` (C₃ earliest), whichever of
//! the three commits **last** sees the other two in the committed set
//! and the persistent flags their edges raised, and steps (1)+(3) abort
//! it — in every commit order. The reader that step (2) would have
//! doomed early instead runs to its own commit and aborts there (or at
//! its next read, via the read-path rule). Fewer early aborts, same
//! committed-history guarantee; the conformance suite checks the
//! resulting traces end to end.

use crate::ssi::{exact_check_against, TxnFootprint};
use crate::version::AttemptId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};

#[derive(Default)]
struct Flags {
    incoming: AtomicBool,
    outgoing: AtomicBool,
}

/// Shared dangerous-structure state for one parallel run.
pub(crate) struct SharedSsiTracker {
    committed: Mutex<Vec<TxnFootprint>>,
    flags: RwLock<HashMap<AttemptId, Arc<Flags>>>,
}

impl SharedSsiTracker {
    pub fn new() -> Self {
        SharedSsiTracker {
            committed: Mutex::new(Vec::new()),
            flags: RwLock::new(HashMap::new()),
        }
    }

    fn cell(&self, who: AttemptId) -> Arc<Flags> {
        if let Some(f) = self.flags.read().expect("not poisoned").get(&who) {
            return f.clone();
        }
        self.flags
            .write()
            .expect("not poisoned")
            .entry(who)
            .or_default()
            .clone()
    }

    /// Records the rw-antidependency `from →rw to` between concurrent
    /// transactions. Lock-free once both flag cells exist.
    pub fn record_rw_edge(&self, from: AttemptId, to: AttemptId) {
        self.cell(from).outgoing.store(true, Ordering::SeqCst);
        self.cell(to).incoming.store(true, Ordering::SeqCst);
    }

    pub fn has_in(&self, who: AttemptId) -> bool {
        self.flags
            .read()
            .expect("not poisoned")
            .get(&who)
            .is_some_and(|f| f.incoming.load(Ordering::SeqCst))
    }

    pub fn has_out(&self, who: AttemptId) -> bool {
        self.flags
            .read()
            .expect("not poisoned")
            .get(&who)
            .is_some_and(|f| f.outgoing.load(Ordering::SeqCst))
    }

    /// Conservative commit test: both flags set.
    pub fn conservative_flags(&self, who: AttemptId) -> bool {
        self.flags
            .read()
            .expect("not poisoned")
            .get(&who)
            .is_some_and(|f| f.incoming.load(Ordering::SeqCst) && f.outgoing.load(Ordering::SeqCst))
    }

    /// Drops flag state for an aborted attempt. Edges other attempts
    /// already recorded *to* it keep their own flags — same as the
    /// sequential tracker.
    pub fn forget(&self, who: AttemptId) {
        self.flags.write().expect("not poisoned").remove(&who);
    }

    /// The exact detector against the committed set (called under the
    /// engine's commit lock, so the set is stable for the check).
    pub fn exact_check(&self, cand: &TxnFootprint) -> bool {
        exact_check_against(&self.committed.lock().expect("not poisoned"), cand)
    }

    /// Runs `f` over the committed footprints (conservative step (1)).
    pub fn with_committed<R>(&self, f: impl FnOnce(&[TxnFootprint]) -> R) -> R {
        f(&self.committed.lock().expect("not poisoned"))
    }

    /// Whether `who` committed as an SSI transaction — the read-path
    /// check needs to know the observed-over writer's level.
    pub fn is_committed_ssi(&self, who: AttemptId) -> bool {
        self.committed
            .lock()
            .expect("not poisoned")
            .iter()
            .any(|f| f.attempt == who && f.ssi)
    }

    /// Records a committed footprint (after the detector admitted it).
    pub fn admit(&self, footprint: TxnFootprint) {
        self.committed.lock().expect("not poisoned").push(footprint);
    }

    /// Drops footprints no future transaction can be concurrent with.
    pub fn gc(&self, horizon: u64) {
        self.committed
            .lock()
            .expect("not poisoned")
            .retain(|f| f.commit_ts >= horizon);
    }

    /// Number of retained committed footprints (diagnostics).
    #[cfg(test)]
    pub fn retained(&self) -> usize {
        self.committed.lock().expect("not poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvmodel::Object;

    fn fp(attempt: u64, start: u64, commit: u64, reads: &[u32], writes: &[u32]) -> TxnFootprint {
        TxnFootprint {
            attempt: AttemptId(attempt),
            ssi: true,
            start_ts: start,
            commit_ts: commit,
            reads: reads.iter().map(|&o| (Object(o), 0)).collect(),
            writes: writes.iter().map(|&o| (Object(o), commit)).collect(),
        }
    }

    #[test]
    fn flags_are_shared_across_threads() {
        let t = SharedSsiTracker::new();
        let (a, b, c) = (AttemptId(1), AttemptId(2), AttemptId(3));
        std::thread::scope(|sc| {
            sc.spawn(|| t.record_rw_edge(a, b));
            sc.spawn(|| t.record_rw_edge(b, c));
        });
        assert!(t.conservative_flags(b), "b has in + out");
        assert!(!t.conservative_flags(a));
        assert!(t.has_out(a) && t.has_in(c));
        t.forget(b);
        assert!(!t.conservative_flags(b));
    }

    #[test]
    fn exact_check_matches_sequential_tracker() {
        // The same write-skew the sequential unit test pins.
        let shared = SharedSsiTracker::new();
        let mut seq = crate::ssi::SsiTracker::new();
        let t2 = fp(2, 1, 5, &[2], &[1]);
        assert_eq!(shared.exact_check(&t2), seq.exact_check(&t2));
        shared.admit(t2.clone());
        seq.admit(t2);
        let t1 = fp(1, 0, 8, &[1], &[2]);
        assert!(shared.exact_check(&t1));
        assert_eq!(shared.exact_check(&t1), seq.exact_check(&t1));
    }

    #[test]
    fn gc_and_committed_queries() {
        let t = SharedSsiTracker::new();
        t.admit(fp(1, 0, 5, &[], &[]));
        t.admit(fp(2, 6, 9, &[], &[]));
        assert!(t.is_committed_ssi(AttemptId(1)));
        assert!(!t.is_committed_ssi(AttemptId(99)));
        assert_eq!(t.with_committed(|c| c.len()), 2);
        t.gc(6);
        assert_eq!(t.retained(), 1);
    }
}
