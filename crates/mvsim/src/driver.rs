//! The session driver: executes a job list over concurrent sessions with
//! seeded random interleaving and automatic retry.

use crate::config::SimConfig;
use crate::engine::{Engine, StepOutcome};
use crate::metrics::{level_index, LatencyStats, Metrics};
use crate::version::AttemptId;
use mvisolation::{Allocation, IsolationLevel};
use mvmodel::{Op, TransactionSet};
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use std::collections::HashMap;

/// One transaction to execute: its program and isolation level.
#[derive(Clone, Debug)]
pub struct Job {
    pub ops: Vec<Op>,
    pub level: IsolationLevel,
}

impl Job {
    pub fn new(ops: Vec<Op>, level: IsolationLevel) -> Self {
        Job { ops, level }
    }
}

/// Builds the job list for a transaction set under an allocation (one job
/// per transaction, in id order).
pub fn jobs_from_workload(txns: &TransactionSet, alloc: &Allocation) -> Vec<Job> {
    txns.iter()
        .map(|t| Job::new(t.ops().to_vec(), alloc.level(t.id())))
        .collect()
}

/// The driver's scheduling policy: at each step, picks which runnable
/// session executes next.
///
/// The replay contract: a scheduler must be a deterministic function of
/// its own state and its inputs, so a run is replayable bit-for-bit from
/// `(jobs, config, scheduler construction)` alone. The conformance
/// harness leans on this — same seed, same trace — to make every red run
/// reproducible from one `SIM_SEED`.
pub trait Scheduler {
    /// Returns an index **into `runnable`** (the sorted session ids with a
    /// runnable attempt; never empty). `now` is the engine's logical
    /// clock, for policies that want phase-dependent behavior.
    fn pick(&mut self, runnable: &[usize], now: u64) -> usize;
}

/// The default scheduler: uniformly random among runnable sessions,
/// replayable from the seed. [`run_jobs`] constructs one from
/// `config.seed`, so existing call sites keep their exact interleavings.
pub struct SeededScheduler {
    rng: SmallRng,
}

impl SeededScheduler {
    pub fn new(seed: u64) -> Self {
        SeededScheduler {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for SeededScheduler {
    fn pick(&mut self, runnable: &[usize], _now: u64) -> usize {
        // Exactly `IndexedRandom::choose` on the runnable slice: one
        // `next_u64` per decision, so the interleavings (and therefore the
        // traces) are bit-identical to the pre-hook driver.
        (self.rng.next_u64() % runnable.len() as u64) as usize
    }
}

/// Deterministic round-robin over session ids: the lowest runnable
/// session at or after the cursor steps next. No randomness at all — the
/// adversarial-fairness counterpart to [`SeededScheduler`] used by the
/// conformance harness to diversify interleavings.
#[derive(Default)]
pub struct RoundRobinScheduler {
    cursor: usize,
}

impl RoundRobinScheduler {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobinScheduler {
    fn pick(&mut self, runnable: &[usize], _now: u64) -> usize {
        let ix = runnable.iter().position(|&s| s >= self.cursor).unwrap_or(0);
        self.cursor = runnable[ix] + 1;
        ix
    }
}

#[derive(Debug)]
enum SessionState {
    Idle,
    Running {
        attempt: AttemptId,
        job: usize,
        retries: u32,
    },
    Blocked {
        attempt: AttemptId,
        job: usize,
        retries: u32,
    },
}

/// Runs `jobs` to completion on `config.concurrency` sessions and returns
/// the engine (metrics + trace).
///
/// Scheduling: at each step a uniformly random runnable session executes
/// one operation (a [`SeededScheduler`] from `config.seed`). Blocked
/// sessions resume when the engine wakes them. Aborted jobs retry (up to
/// `config.max_retries`) as fresh attempts.
pub fn run_jobs(jobs: &[Job], config: SimConfig) -> Engine {
    let mut scheduler = SeededScheduler::new(config.seed);
    run_jobs_with(jobs, config, &mut scheduler)
}

/// [`run_jobs`] with an explicit scheduling policy.
pub fn run_jobs_with(jobs: &[Job], config: SimConfig, scheduler: &mut dyn Scheduler) -> Engine {
    let mut engine = Engine::new(config.clone());
    let mut next_job = 0usize;
    let mut sessions: Vec<SessionState> = (0..config.concurrency)
        .map(|_| SessionState::Idle)
        .collect();
    let mut attempt_session: HashMap<AttemptId, usize> = HashMap::new();
    let mut done = 0usize;
    // Per-job first-begin tick, for latency accounting.
    let mut job_start: HashMap<usize, u64> = HashMap::new();
    let mut latency = LatencyStats::default();
    let mut latency_by_level: [LatencyStats; 3] = Default::default();

    while done < jobs.len() {
        // Refill idle sessions.
        for (si, s) in sessions.iter_mut().enumerate() {
            if matches!(s, SessionState::Idle) && next_job < jobs.len() {
                let job = next_job;
                next_job += 1;
                let attempt = engine.begin(jobs[job].ops.clone(), jobs[job].level);
                attempt_session.insert(attempt, si);
                job_start.insert(job, engine.now());
                *s = SessionState::Running {
                    attempt,
                    job,
                    retries: 0,
                };
            }
        }
        let runnable: Vec<usize> = sessions
            .iter()
            .enumerate()
            .filter_map(|(i, s)| matches!(s, SessionState::Running { .. }).then_some(i))
            .collect();
        if runnable.is_empty() {
            debug_assert!(
                done == jobs.len(),
                "all sessions blocked or idle with work left"
            );
            break;
        }
        let choice = scheduler.pick(&runnable, engine.now());
        assert!(
            choice < runnable.len(),
            "scheduler picked index {choice} with only {} runnable sessions",
            runnable.len()
        );
        let si = runnable[choice];
        let SessionState::Running {
            attempt,
            job,
            retries,
        } = sessions[si]
        else {
            unreachable!()
        };
        let (outcome, woken) = engine.step(attempt);
        match outcome {
            StepOutcome::Progress => {}
            StepOutcome::Blocked => {
                sessions[si] = SessionState::Blocked {
                    attempt,
                    job,
                    retries,
                };
            }
            StepOutcome::Committed => {
                attempt_session.remove(&attempt);
                sessions[si] = SessionState::Idle;
                let ticks = engine.now() - job_start[&job];
                latency.record(ticks);
                latency_by_level[level_index(jobs[job].level)].record(ticks);
                done += 1;
            }
            StepOutcome::Aborted(_) => {
                attempt_session.remove(&attempt);
                let give_up = config.max_retries.is_some_and(|m| retries >= m);
                if give_up {
                    engine.metrics.gave_up += 1;
                    sessions[si] = SessionState::Idle;
                    done += 1;
                } else {
                    let next = engine.begin(jobs[job].ops.clone(), jobs[job].level);
                    attempt_session.insert(next, si);
                    sessions[si] = SessionState::Running {
                        attempt: next,
                        job,
                        retries: retries + 1,
                    };
                }
            }
        }
        // Wake sessions granted locks by this step (commit) or by aborts.
        let mut all_woken = woken;
        all_woken.extend(engine.drain_wakes());
        for w in all_woken {
            if let Some(&wsi) = attempt_session.get(&w) {
                if let SessionState::Blocked {
                    attempt,
                    job,
                    retries,
                } = sessions[wsi]
                {
                    debug_assert_eq!(attempt, w);
                    sessions[wsi] = SessionState::Running {
                        attempt,
                        job,
                        retries,
                    };
                }
            }
        }
    }
    engine.metrics.ticks = engine.now();
    engine.latency = latency;
    engine.latency_by_level = latency_by_level;
    engine
}

/// Convenience: run a transaction set under an allocation (one instance
/// per transaction) and return the metrics.
pub fn run_workload(txns: &TransactionSet, alloc: &Allocation, config: SimConfig) -> Engine {
    let mut scheduler = SeededScheduler::new(config.seed);
    run_workload_with(txns, alloc, config, &mut scheduler)
}

/// [`run_workload`] with an explicit scheduling policy.
pub fn run_workload_with(
    txns: &TransactionSet,
    alloc: &Allocation,
    config: SimConfig,
    scheduler: &mut dyn Scheduler,
) -> Engine {
    let mut engine = run_jobs_with(&jobs_from_workload(txns, alloc), config, scheduler);
    engine.trace.set_object_names(txns.object_names().to_vec());
    engine
}

/// Returns [`Metrics`] for a run, discarding the engine.
pub fn run_for_metrics(jobs: &[Job], config: SimConfig) -> Metrics {
    run_jobs(jobs, config).metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvmodel::Object;

    fn obj(n: u32) -> Object {
        Object(n)
    }

    fn rw_job(level: IsolationLevel, o: u32) -> Job {
        Job::new(vec![Op::read(obj(o)), Op::write(obj(o))], level)
    }

    #[test]
    fn completes_all_jobs() {
        let jobs: Vec<Job> = (0..20).map(|i| rw_job(IsolationLevel::RC, i % 3)).collect();
        let engine = run_jobs(&jobs, SimConfig::default().with_seed(1));
        assert_eq!(engine.metrics.commits, 20);
        assert_eq!(engine.metrics.gave_up, 0);
        assert!(engine.metrics.ticks > 0);
    }

    #[test]
    fn si_contention_causes_fcw_aborts_but_finishes() {
        // Many SI read-modify-writes on one object: heavy FCW retries.
        let jobs: Vec<Job> = (0..15).map(|_| rw_job(IsolationLevel::SI, 0)).collect();
        let engine = run_jobs(&jobs, SimConfig::default().with_seed(2).with_concurrency(8));
        assert_eq!(engine.metrics.commits, 15);
        assert!(
            engine.metrics.aborts_fcw > 0,
            "expected first-committer-wins aborts"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let jobs: Vec<Job> = (0..30).map(|i| rw_job(IsolationLevel::SI, i % 2)).collect();
        let a = run_jobs(&jobs, SimConfig::default().with_seed(7)).metrics;
        let b = run_jobs(&jobs, SimConfig::default().with_seed(7)).metrics;
        let c = run_jobs(&jobs, SimConfig::default().with_seed(8)).metrics;
        assert_eq!(a, b);
        // Different seed gives a different interleaving (ticks or aborts
        // differ with overwhelming probability on this contended load).
        assert!(a != c || a.commits == c.commits);
    }

    #[test]
    fn max_retries_gives_up() {
        // Two SSI write-skew partners replayed many times with retries
        // capped: some jobs may be abandoned; the driver must terminate
        // with commits + gave_up == jobs.
        let mut jobs = Vec::new();
        for _ in 0..10 {
            jobs.push(Job::new(
                vec![Op::read(obj(1)), Op::write(obj(2))],
                IsolationLevel::SSI,
            ));
            jobs.push(Job::new(
                vec![Op::read(obj(2)), Op::write(obj(1))],
                IsolationLevel::SSI,
            ));
        }
        let engine = run_jobs(
            &jobs,
            SimConfig::default()
                .with_seed(3)
                .with_concurrency(4)
                .with_max_retries(1),
        );
        assert_eq!(
            engine.metrics.commits + engine.metrics.gave_up,
            jobs.len() as u64
        );
    }

    #[test]
    fn workload_adapter_runs_under_allocation() {
        let txns = {
            let mut b = mvmodel::TxnSetBuilder::new();
            let x = b.object("x");
            let y = b.object("y");
            b.txn(1).read(x).write(y).finish();
            b.txn(2).read(y).write(x).finish();
            b.build().unwrap()
        };
        let alloc = Allocation::uniform_ssi(&txns);
        let engine = run_workload(&txns, &alloc, SimConfig::default().with_seed(4));
        assert_eq!(engine.metrics.commits, 2);
        let run_metrics = run_for_metrics(
            &jobs_from_workload(&txns, &alloc),
            SimConfig::default().with_seed(4),
        );
        assert_eq!(run_metrics, engine.metrics);
    }

    #[test]
    fn latency_recorded_per_commit() {
        let jobs: Vec<Job> = (0..8).map(|i| rw_job(IsolationLevel::RC, i % 2)).collect();
        let engine = run_jobs(&jobs, SimConfig::default().with_seed(5).with_concurrency(3));
        assert_eq!(engine.latency.count(), 8);
        assert!(
            engine.latency.mean() >= 3.0,
            "R + W + C is at least 3 ticks"
        );
        assert!(engine.latency.p95() >= engine.latency.p50());
    }

    #[test]
    fn explicit_seeded_scheduler_matches_run_jobs() {
        let jobs: Vec<Job> = (0..25).map(|i| rw_job(IsolationLevel::SI, i % 3)).collect();
        let config = SimConfig::default().with_seed(11).with_concurrency(6);
        let a = run_jobs(&jobs, config.clone());
        let mut sched = SeededScheduler::new(config.seed);
        let b = run_jobs_with(&jobs, config, &mut sched);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(
            mvmodel::fmt::schedule_full(&a.trace.export().unwrap().schedule),
            mvmodel::fmt::schedule_full(&b.trace.export().unwrap().schedule),
        );
    }

    #[test]
    fn round_robin_scheduler_is_deterministic_and_completes() {
        let jobs: Vec<Job> = (0..20).map(|i| rw_job(IsolationLevel::SI, i % 2)).collect();
        let run = || {
            let mut sched = RoundRobinScheduler::new();
            run_jobs_with(&jobs, SimConfig::default().with_concurrency(4), &mut sched)
        };
        let a = run();
        let b = run();
        assert_eq!(a.metrics.commits, 20);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(
            mvmodel::fmt::schedule_full(&a.trace.export().unwrap().schedule),
            mvmodel::fmt::schedule_full(&b.trace.export().unwrap().schedule),
        );
        // A genuinely different policy from the seeded default (on this
        // contended load the interleaving differs with overwhelming
        // probability — compare the recorded tick totals).
        let seeded = run_jobs(&jobs, SimConfig::default().with_concurrency(4));
        assert_eq!(seeded.metrics.commits, 20);
    }

    #[test]
    fn per_level_metrics_and_latency_split() {
        let mut jobs = Vec::new();
        for i in 0..8 {
            jobs.push(rw_job(IsolationLevel::RC, i % 2));
            jobs.push(rw_job(IsolationLevel::SI, i % 2));
            jobs.push(rw_job(IsolationLevel::SSI, i % 2));
        }
        let engine = run_jobs(&jobs, SimConfig::default().with_seed(9).with_concurrency(6));
        let m = engine.metrics;
        assert_eq!(
            m.per_level.iter().map(|l| l.commits).sum::<u64>(),
            m.commits
        );
        assert_eq!(
            m.per_level.iter().map(|l| l.total_aborts()).sum::<u64>(),
            m.total_aborts()
        );
        // RC read-modify-writes never first-committer-abort.
        assert_eq!(m.level(IsolationLevel::RC).aborts_fcw, 0);
        // Every committed job's latency landed in its level's bucket.
        let split: usize = engine.latency_by_level.iter().map(|l| l.count()).sum();
        assert_eq!(split, engine.latency.count());
        assert_eq!(
            engine.latency_by_level[level_index(IsolationLevel::RC)].count(),
            m.level(IsolationLevel::RC).commits as usize
        );
    }

    #[test]
    fn single_session_is_serial() {
        let jobs: Vec<Job> = (0..10).map(|_| rw_job(IsolationLevel::SI, 0)).collect();
        let engine = run_jobs(&jobs, SimConfig::default().with_concurrency(1));
        assert_eq!(engine.metrics.commits, 10);
        assert_eq!(
            engine.metrics.total_aborts(),
            0,
            "serial execution never conflicts"
        );
        assert_eq!(engine.metrics.blocked_events, 0);
    }
}
