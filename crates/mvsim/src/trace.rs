//! Recording executions and exporting them as formal multiversion
//! schedules.
//!
//! The recorder logs every operation of every attempt in global order.
//! [`TraceRecorder::export`] keeps only *committed* attempts, renumbers
//! them as `T1, T2, …` (in order of first appearance), and produces a
//! fully-validated [`mvmodel::Schedule`]: operation order = global event
//! order, version order = commit order, version function = the versions
//! the engine actually served. The companion [`Allocation`] maps each
//! exported transaction to the level it ran at, so callers can assert the
//! execution is allowed under it (Definition 2.4).

use crate::version::{AttemptId, Observed};
use mvisolation::{Allocation, IsolationLevel};
use mvmodel::{Object, OpAddr, OpId, Schedule, ScheduleError, TxnId, TxnSetBuilder};
use std::collections::HashMap;

#[derive(Clone, Copy, Debug)]
enum Event {
    Read {
        who: AttemptId,
        object: Object,
        observed: Observed,
    },
    Write {
        who: AttemptId,
        object: Object,
    },
    Commit {
        who: AttemptId,
    },
}

/// In-memory event log (enabled via `SimConfig::record_trace`).
#[derive(Debug)]
pub struct TraceRecorder {
    enabled: bool,
    events: Vec<Event>,
    levels: HashMap<AttemptId, IsolationLevel>,
    committed: Vec<AttemptId>,
    aborted: Vec<AttemptId>,
    last_read: Option<Observed>,
    /// Display names for objects (index = object id), forwarded from the
    /// source workload so exported schedules render readably.
    object_names: Vec<String>,
}

/// A committed execution exported to the formal model.
pub struct ExportedTrace {
    pub schedule: Schedule,
    pub allocation: Allocation,
    /// Exported id per committed attempt.
    pub attempt_ids: HashMap<AttemptId, TxnId>,
}

impl TraceRecorder {
    pub fn new(enabled: bool) -> Self {
        TraceRecorder {
            enabled,
            events: Vec::new(),
            levels: HashMap::new(),
            committed: Vec::new(),
            aborted: Vec::new(),
            last_read: None,
            object_names: Vec::new(),
        }
    }

    /// Registers display names for objects (index = object id); exported
    /// schedules then render `R1[stock]` instead of `R1[o3]`.
    pub fn set_object_names(&mut self, names: Vec<String>) {
        self.object_names = names;
    }

    pub(crate) fn record_level(&mut self, who: AttemptId, level: IsolationLevel) {
        if self.enabled {
            self.levels.insert(who, level);
        }
    }

    pub(crate) fn record_read(
        &mut self,
        who: AttemptId,
        object: Object,
        observed: Observed,
        _ts: u64,
    ) {
        self.last_read = Some(observed);
        if self.enabled {
            self.events.push(Event::Read {
                who,
                object,
                observed,
            });
        }
    }

    pub(crate) fn record_write(&mut self, who: AttemptId, object: Object, _ts: u64) {
        if self.enabled {
            self.events.push(Event::Write { who, object });
        }
    }

    pub(crate) fn record_commit(&mut self, who: AttemptId, _ts: u64) {
        if self.enabled {
            self.events.push(Event::Commit { who });
            self.committed.push(who);
        }
    }

    pub(crate) fn record_abort(&mut self, who: AttemptId) {
        if self.enabled {
            self.aborted.push(who);
        }
    }

    /// The version observed by the most recent read (test hook; works even
    /// with recording disabled).
    pub fn last_read_observed(&self) -> Option<Observed> {
        self.last_read
    }

    /// Number of committed attempts recorded.
    pub fn committed_count(&self) -> usize {
        self.committed.len()
    }

    /// Exports the committed execution as a validated schedule +
    /// allocation. Fails only if recording was disabled.
    ///
    /// Panics if the engine produced an ill-formed schedule — that would
    /// be a simulator bug, and the integration tests treat it as such.
    pub fn export(&self) -> Option<ExportedTrace> {
        if !self.enabled {
            return None;
        }
        Some(
            self.export_inner()
                .expect("simulator emitted an ill-formed schedule"),
        )
    }

    fn export_inner(&self) -> Result<ExportedTrace, ScheduleError> {
        // Renumber committed attempts in order of first appearance.
        let committed: std::collections::HashSet<AttemptId> =
            self.committed.iter().copied().collect();
        let mut ids: HashMap<AttemptId, TxnId> = HashMap::new();
        let mut next = 0u32;
        for ev in &self.events {
            let who = match ev {
                Event::Read { who, .. } | Event::Write { who, .. } | Event::Commit { who } => *who,
            };
            if committed.contains(&who) && !ids.contains_key(&who) {
                next += 1;
                ids.insert(who, TxnId(next));
            }
        }

        // Rebuild the committed transactions' programs and the operation
        // order, tracking per-attempt op indices.
        let mut b = TxnSetBuilder::new();
        let mut programs: HashMap<AttemptId, Vec<mvmodel::Op>> = HashMap::new();
        let mut order: Vec<OpId> = Vec::new();
        let mut op_index: HashMap<AttemptId, u16> = HashMap::new();
        // (writer attempt, object) → op index of the write.
        let mut write_addr: HashMap<(AttemptId, Object), u16> = HashMap::new();
        let mut reads_raw: Vec<(OpAddr, Observed, Object)> = Vec::new();
        let mut commit_order: Vec<AttemptId> = Vec::new();

        for ev in &self.events {
            match *ev {
                Event::Read {
                    who,
                    object,
                    observed,
                } => {
                    if let Some(&tid) = ids.get(&who) {
                        let idx = op_index.entry(who).or_insert(0);
                        programs
                            .entry(who)
                            .or_default()
                            .push(mvmodel::Op::read(object));
                        order.push(OpId::op(tid, *idx));
                        reads_raw.push((OpAddr::new(tid, *idx), observed, object));
                        *idx += 1;
                    }
                }
                Event::Write { who, object } => {
                    if let Some(&tid) = ids.get(&who) {
                        let idx = op_index.entry(who).or_insert(0);
                        programs
                            .entry(who)
                            .or_default()
                            .push(mvmodel::Op::write(object));
                        order.push(OpId::op(tid, *idx));
                        write_addr.insert((who, object), *idx);
                        *idx += 1;
                    }
                }
                Event::Commit { who } => {
                    if let Some(&tid) = ids.get(&who) {
                        order.push(OpId::Commit(tid));
                        commit_order.push(who);
                    }
                }
            }
        }
        for (&attempt, ops) in &programs {
            b.push(
                mvmodel::Transaction::new(ids[&attempt], ops.clone()).expect(
                    "engine enforces read-before-write, so programs satisfy the model invariant",
                ),
            );
        }
        // Committed attempts with no operations still need transactions.
        for &attempt in &self.committed {
            if !programs.contains_key(&attempt) {
                if let Some(&tid) = ids.get(&attempt) {
                    b.push(mvmodel::Transaction::new(tid, Vec::new()).expect("empty txn"));
                }
            }
        }
        let mut set = b.build().expect("attempt ids are unique");
        if !self.object_names.is_empty() {
            let txn_vec: Vec<mvmodel::Transaction> = set.iter().cloned().collect();
            set = mvmodel::TransactionSet::with_object_names(txn_vec, self.object_names.clone())
                .expect("ids unchanged");
        }
        let txns = std::sync::Arc::new(set);

        // Version order: per object, writers in commit order.
        let mut versions: HashMap<Object, Vec<OpAddr>> = HashMap::new();
        for &attempt in &commit_order {
            let tid = ids[&attempt];
            for (&(w, object), &idx) in &write_addr {
                if w == attempt {
                    versions
                        .entry(object)
                        .or_default()
                        .push(OpAddr::new(tid, idx));
                }
            }
        }
        // Version function from the observed versions.
        let mut reads_from: HashMap<OpAddr, OpId> = HashMap::new();
        for (addr, observed, object) in reads_raw {
            let v = match observed.writer() {
                None => OpId::Init,
                Some(w) => {
                    let widx = write_addr
                        .get(&(w, object))
                        .expect("observed writer recorded its write");
                    OpId::op(ids[&w], *widx)
                }
            };
            reads_from.insert(addr, v);
        }

        let schedule = Schedule::new(txns.clone(), order, versions, reads_from)?;
        let allocation = Allocation::from_pairs(
            ids.iter()
                .map(|(&attempt, &tid)| (tid, self.levels[&attempt])),
        );
        Ok(ExportedTrace {
            schedule,
            allocation,
            attempt_ids: ids,
        })
    }
}

/// Standalone export used by tests; see [`TraceRecorder::export`].
pub fn export_schedule(recorder: &TraceRecorder) -> Option<(Schedule, Allocation)> {
    recorder.export().map(|e| (e.schedule, e.allocation))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::engine::{Engine, StepOutcome};
    use mvmodel::Op;

    fn obj(n: u32) -> Object {
        Object(n)
    }

    #[test]
    fn export_simple_serial_run() {
        let mut e = Engine::new(SimConfig::default());
        let t1 = e.begin(vec![Op::write(obj(1))], IsolationLevel::RC);
        e.step(t1);
        assert_eq!(e.step(t1).0, StepOutcome::Committed);
        let t2 = e.begin(vec![Op::read(obj(1))], IsolationLevel::SI);
        e.step(t2);
        assert_eq!(e.step(t2).0, StepOutcome::Committed);

        let exported = e.trace.export().unwrap();
        let s = &exported.schedule;
        assert_eq!(s.txns().len(), 2);
        assert_eq!(mvmodel::fmt::schedule_order(s), "W1[o1] C1 R2[o1] C2");
        // T2 read T1's committed version.
        let r = OpAddr::new(TxnId(2), 0);
        assert_eq!(s.version_fn(r), OpId::op(TxnId(1), 0));
        assert_eq!(exported.allocation.level(TxnId(1)), IsolationLevel::RC);
        assert_eq!(exported.allocation.level(TxnId(2)), IsolationLevel::SI);
        assert!(mvisolation::allowed_under(s, &exported.allocation));
    }

    #[test]
    fn aborted_attempts_excluded_from_export() {
        let mut e = Engine::new(SimConfig::default());
        // T1 (SI) will abort on first-committer-wins; T2 commits.
        let t1 = e.begin(
            vec![Op::read(obj(1)), Op::write(obj(1))],
            IsolationLevel::SI,
        );
        e.step(t1);
        let t2 = e.begin(vec![Op::write(obj(1))], IsolationLevel::RC);
        e.step(t2);
        e.step(t2);
        assert!(matches!(e.step(t1).0, StepOutcome::Aborted(_)));
        let exported = e.trace.export().unwrap();
        assert_eq!(exported.schedule.txns().len(), 1, "only T2 committed");
        assert_eq!(exported.schedule.order().len(), 2);
    }

    #[test]
    fn export_disabled_returns_none() {
        let mut e = Engine::new(SimConfig::default().with_trace(false));
        let t = e.begin(vec![Op::write(obj(1))], IsolationLevel::RC);
        e.step(t);
        e.step(t);
        assert!(e.trace.export().is_none());
        assert!(export_schedule(&e.trace).is_none());
    }

    #[test]
    fn named_export_renders_object_names() {
        let mut e = Engine::new(SimConfig::default());
        let t = e.begin(vec![Op::write(obj(0))], IsolationLevel::RC);
        e.step(t);
        e.step(t);
        e.trace.set_object_names(vec!["stock".to_string()]);
        let exported = e.trace.export().unwrap();
        assert_eq!(
            mvmodel::fmt::schedule_order(&exported.schedule),
            "W1[stock] C1"
        );
    }

    #[test]
    fn committed_count_tracks() {
        let mut e = Engine::new(SimConfig::default());
        assert_eq!(e.trace.committed_count(), 0);
        let t = e.begin(vec![], IsolationLevel::SSI);
        e.step(t);
        assert_eq!(e.trace.committed_count(), 1);
        let exported = e.trace.export().unwrap();
        assert_eq!(exported.schedule.txns().len(), 1);
        assert!(exported.schedule.txns().txn(TxnId(1)).is_empty());
    }
}
