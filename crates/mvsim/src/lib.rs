//! A discrete MVCC execution simulator with per-transaction isolation
//! levels — the "database" the paper's definitions abstract.
//!
//! The engine implements the concurrency-control mechanisms of
//! Postgres-style multiversion systems, specialized per transaction the
//! way `SET TRANSACTION ISOLATION LEVEL` does:
//!
//! - **RC**: every read observes the latest committed version at the time
//!   of the read (per-statement snapshot);
//! - **SI / SSI**: every read observes the snapshot taken at the
//!   transaction's first operation; writes by concurrent transactions
//!   abort the writer at write or unblock time (*first-committer-wins*);
//! - **all levels**: writes take exclusive object locks held until commit
//!   (no dirty writes), with FIFO wakeup and waits-for deadlock detection;
//! - **SSI**: dangerous structures among SSI transactions are prevented at
//!   commit time. Two detectors are provided (see [`SsiMode`]): the
//!   *exact* detector aborts a committing transaction iff its commit would
//!   complete a dangerous structure (zero false positives — an idealized
//!   SSI), and the *conservative* detector reproduces Cahill-style
//!   `inConflict`/`outConflict` flag tracking with its false-positive
//!   aborts.
//!
//! The [`driver`] executes a job list over a configurable number of
//! concurrent sessions with seeded random interleaving and automatic
//! retry of aborted transactions. The [`trace`] module exports the
//! committed execution as a fully-validated [`mvmodel::Schedule`], closing
//! the loop with the formal model: the integration tests assert that
//! every schedule the simulator emits is *allowed under* the allocation
//! it ran (Definition 2.4) — and therefore, when the allocation is
//! robust, serializable.
//!
//! The [`par`] module is the multi-core sibling: the same semantics
//! driven by `SimConfig::threads` OS worker threads over sharded shared
//! state, with the sequential [`Engine`] retained unchanged as the
//! semantics oracle. Every parallel run can export a commit-ordered
//! trace through the same validation pipeline.

pub mod config;
pub mod driver;
pub mod engine;
pub mod locks;
pub mod metrics;
pub mod par;
mod plock;
mod pssi;
mod pstore;
pub mod ssi;
pub mod trace;
pub mod version;

pub use config::{SimConfig, SsiMode};
pub use driver::{
    run_jobs, run_jobs_with, run_workload, run_workload_with, Job, RoundRobinScheduler, Scheduler,
    SeededScheduler,
};
pub use engine::{AbortReason, Engine, StepOutcome};
pub use metrics::{level_index, LatencyStats, LevelCounters, Metrics};
pub use par::{
    run_parallel_jobs, run_parallel_jobs_with, run_parallel_workload, run_parallel_workload_with,
    ParOptions, ParRun,
};
pub use trace::ExportedTrace;
