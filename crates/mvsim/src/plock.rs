//! Sharded exclusive lock table with cross-shard waits-for deadlock
//! detection, for the parallel engine.
//!
//! Lock state lives in shards (mutex + condvar per shard) so disjoint
//! partitions never contend, but the waits-for graph is global: a cycle
//! can thread through objects in different shards, so the cycle test
//! must see one consistent picture. Every enqueue/grant/release updates
//! the graph atomically with the shard state (lock order is always
//! shard → graph, and no thread ever holds two shard locks), which rules
//! out the race where two attempts concurrently block on each other and
//! neither sees the half-formed cycle.
//!
//! Victim policy matches the sequential [`crate::locks::LockTable`]:
//! *die-self* — the requester whose enqueue would close a cycle is
//! denied and aborts itself. Waiting attempts are never aborted from
//! outside, so a parked worker only ever needs the condvar signal from
//! the handoff that grants it the lock.

use crate::version::AttemptId;
use mvmodel::Object;
use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};

/// Number of lock shards; like the store stripes, comfortably above
/// typical worker counts.
const SHARDS: usize = 16;

fn shard_of(object: Object) -> usize {
    ((object.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 60) as usize % SHARDS
}

/// Outcome of a parallel lock request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum ParLockOutcome {
    /// Lock acquired (or already held by the requester).
    Granted,
    /// Enqueued behind the holder; the caller must block in
    /// [`SharedLockTable::await_grant`] until the handoff.
    Enqueued,
    /// Enqueueing would close a waits-for cycle; the requester aborts.
    Deadlock,
}

#[derive(Default)]
struct LockState {
    holder: Option<AttemptId>,
    waiters: VecDeque<AttemptId>,
}

#[derive(Default)]
struct Shard {
    locks: HashMap<Object, LockState>,
}

/// The global waits-for graph: `waiting_on` edges plus a holder map, so
/// the cycle walk never touches shard state.
#[derive(Default)]
struct WaitGraph {
    waiting_on: HashMap<AttemptId, Object>,
    holder: HashMap<Object, AttemptId>,
}

impl WaitGraph {
    /// Whether a waits-for path leads from `from` to `to`. Chains only
    /// (each attempt waits on at most one object), so the walk is
    /// linear; the step bound guards against cycles not through `to`.
    fn path_to(&self, mut from: AttemptId, to: AttemptId) -> bool {
        let mut steps = 0;
        loop {
            if from == to {
                return true;
            }
            let Some(object) = self.waiting_on.get(&from) else {
                return false;
            };
            let Some(&holder) = self.holder.get(object) else {
                return false;
            };
            from = holder;
            steps += 1;
            if steps > self.waiting_on.len() + 1 {
                return false;
            }
        }
    }
}

/// The shared lock table. Writers take exclusive per-object locks held
/// until commit or abort; reads never lock (MVCC).
pub(crate) struct SharedLockTable {
    shards: Vec<(Mutex<Shard>, Condvar)>,
    graph: Mutex<WaitGraph>,
}

impl SharedLockTable {
    pub fn new() -> Self {
        SharedLockTable {
            shards: (0..SHARDS)
                .map(|_| (Mutex::new(Shard::default()), Condvar::new()))
                .collect(),
            graph: Mutex::new(WaitGraph::default()),
        }
    }

    /// Requests the exclusive lock on `object` for `who`. Never blocks:
    /// on [`ParLockOutcome::Enqueued`] the caller parks in
    /// [`SharedLockTable::await_grant`]. The cycle test and the enqueue
    /// are atomic under the graph mutex, so concurrent blockers cannot
    /// slip an undetected cycle past each other.
    pub fn acquire(&self, who: AttemptId, object: Object) -> ParLockOutcome {
        let (shard, _) = &self.shards[shard_of(object)];
        let mut s = shard.lock().expect("not poisoned");
        let state = s.locks.entry(object).or_default();
        match state.holder {
            None => {
                state.holder = Some(who);
                self.graph
                    .lock()
                    .expect("not poisoned")
                    .holder
                    .insert(object, who);
                ParLockOutcome::Granted
            }
            Some(h) if h == who => ParLockOutcome::Granted,
            Some(h) => {
                let mut g = self.graph.lock().expect("not poisoned");
                if g.path_to(h, who) {
                    return ParLockOutcome::Deadlock;
                }
                g.waiting_on.insert(who, object);
                drop(g);
                if !state.waiters.contains(&who) {
                    state.waiters.push_back(who);
                }
                ParLockOutcome::Enqueued
            }
        }
    }

    /// Parks until the FIFO handoff makes `who` the holder of `object`.
    /// Must only be called right after [`ParLockOutcome::Enqueued`].
    pub fn await_grant(&self, who: AttemptId, object: Object) {
        let (shard, cv) = &self.shards[shard_of(object)];
        let mut s = shard.lock().expect("not poisoned");
        while s.locks.get(&object).and_then(|st| st.holder) != Some(who) {
            s = cv.wait(s).expect("not poisoned");
        }
    }

    /// Releases every lock in `held` (commit or abort), handing each to
    /// its first waiter (FIFO) and signalling that shard. `held` is the
    /// caller's thread-local held list — the parallel analogue of the
    /// sequential table's `held` map.
    pub fn release_all(&self, who: AttemptId, held: &[Object]) {
        for &object in held {
            let (shard, cv) = &self.shards[shard_of(object)];
            let mut s = shard.lock().expect("not poisoned");
            let state = s.locks.get_mut(&object).expect("held lock exists");
            debug_assert_eq!(state.holder, Some(who));
            let mut g = self.graph.lock().expect("not poisoned");
            match state.waiters.pop_front() {
                Some(next) => {
                    state.holder = Some(next);
                    g.holder.insert(object, next);
                    g.waiting_on.remove(&next);
                }
                None => {
                    state.holder = None;
                    g.holder.remove(&object);
                }
            }
            drop(g);
            drop(s);
            cv.notify_all();
        }
    }

    /// Whether `who` currently holds the lock on `object` (debug
    /// assertions).
    #[cfg(debug_assertions)]
    pub fn holds(&self, who: AttemptId, object: Object) -> bool {
        self.shards[shard_of(object)]
            .0
            .lock()
            .expect("not poisoned")
            .locks
            .get(&object)
            .is_some_and(|s| s.holder == Some(who))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u64) -> AttemptId {
        AttemptId(n)
    }

    fn o(n: u32) -> Object {
        Object(n)
    }

    #[test]
    fn grant_enqueue_handoff() {
        let lt = SharedLockTable::new();
        assert_eq!(lt.acquire(a(1), o(9)), ParLockOutcome::Granted);
        assert_eq!(lt.acquire(a(1), o(9)), ParLockOutcome::Granted);
        assert_eq!(lt.acquire(a(2), o(9)), ParLockOutcome::Enqueued);
        // Handoff: releasing hands the lock to the first waiter, and a
        // parked thread observes the grant.
        std::thread::scope(|sc| {
            let waiter = sc.spawn(|| lt.await_grant(a(2), o(9)));
            lt.release_all(a(1), &[o(9)]);
            waiter.join().expect("waiter woke");
        });
        #[cfg(debug_assertions)]
        assert!(lt.holds(a(2), o(9)));
    }

    #[test]
    fn cross_shard_cycle_detected() {
        let lt = SharedLockTable::new();
        // Objects chosen so the chain spans multiple shards.
        let (x, y, z) = (o(0), o(1), o(2));
        assert!(shard_of(x) != shard_of(y) || shard_of(y) != shard_of(z));
        assert_eq!(lt.acquire(a(1), x), ParLockOutcome::Granted);
        assert_eq!(lt.acquire(a(2), y), ParLockOutcome::Granted);
        assert_eq!(lt.acquire(a(3), z), ParLockOutcome::Granted);
        assert_eq!(lt.acquire(a(1), y), ParLockOutcome::Enqueued);
        assert_eq!(lt.acquire(a(2), z), ParLockOutcome::Enqueued);
        // a3 requesting x closes the 3-cycle through three shards.
        assert_eq!(lt.acquire(a(3), x), ParLockOutcome::Deadlock);
        // The victim was never enqueued: releasing its own lock hands z
        // to a2, unwinding the chain.
        lt.release_all(a(3), &[z]);
        lt.release_all(a(2), &[y, z]);
        lt.release_all(a(1), &[x, y]);
    }

    #[test]
    fn victim_is_always_the_cycle_closer() {
        // Same structure, roles swapped: whoever requests last dies,
        // independent of attempt id order.
        for &(first, second) in &[(1u64, 2u64), (2, 1)] {
            let lt = SharedLockTable::new();
            assert_eq!(lt.acquire(a(first), o(1)), ParLockOutcome::Granted);
            assert_eq!(lt.acquire(a(second), o(2)), ParLockOutcome::Granted);
            assert_eq!(lt.acquire(a(first), o(2)), ParLockOutcome::Enqueued);
            assert_eq!(
                lt.acquire(a(second), o(1)),
                ParLockOutcome::Deadlock,
                "the closer dies, whichever id it has"
            );
        }
    }

    #[test]
    fn handoff_clears_wait_edge_before_requeue() {
        let lt = SharedLockTable::new();
        assert_eq!(lt.acquire(a(1), o(1)), ParLockOutcome::Granted);
        assert_eq!(lt.acquire(a(2), o(1)), ParLockOutcome::Enqueued);
        assert_eq!(lt.acquire(a(3), o(2)), ParLockOutcome::Granted);
        lt.release_all(a(1), &[o(1)]);
        // a2 now holds o(1); its old wait edge must be gone, so a fresh
        // enqueue on another object is not misread as a cycle.
        assert_eq!(lt.acquire(a(2), o(2)), ParLockOutcome::Enqueued);
        // And a3 → o(1) now waits on a2: a genuine 2-cycle, detected.
        assert_eq!(lt.acquire(a(3), o(1)), ParLockOutcome::Deadlock);
    }
}
