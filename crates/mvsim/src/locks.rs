//! Exclusive write locks with FIFO queues and waits-for deadlock
//! detection.

use crate::version::AttemptId;
use mvmodel::Object;
use std::collections::{HashMap, VecDeque};

/// Outcome of a lock request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LockOutcome {
    /// Lock acquired (or already held by the requester).
    Granted,
    /// The requester was enqueued behind the current holder.
    Blocked { holder: AttemptId },
    /// Granting would close a waits-for cycle; the requester must abort.
    Deadlock,
}

#[derive(Debug, Default)]
struct LockState {
    holder: Option<AttemptId>,
    waiters: VecDeque<AttemptId>,
}

/// The lock table. Writes take exclusive per-object locks held until
/// commit or abort; reads never lock (MVCC).
#[derive(Debug, Default)]
pub struct LockTable {
    locks: HashMap<Object, LockState>,
    /// `waits_for[t] = object` the attempt is currently queued on.
    waiting_on: HashMap<AttemptId, Object>,
    /// Objects held per attempt (for release-on-commit/abort).
    held: HashMap<AttemptId, Vec<Object>>,
}

impl LockTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests the exclusive lock on `object` for `who`.
    ///
    /// Deadlock policy: if enqueueing would close a cycle in the waits-for
    /// graph, the request is denied with [`LockOutcome::Deadlock`] and the
    /// requester is expected to abort (wound-nothing / die-self).
    pub fn acquire(&mut self, who: AttemptId, object: Object) -> LockOutcome {
        let holder = self.locks.entry(object).or_default().holder;
        match holder {
            None => {
                self.locks.get_mut(&object).expect("just inserted").holder = Some(who);
                self.held.entry(who).or_default().push(object);
                LockOutcome::Granted
            }
            Some(h) if h == who => LockOutcome::Granted,
            Some(h) => {
                // Cycle test: does a waits-for path lead from the holder
                // back to `who`?
                if self.path_to(h, who) {
                    return LockOutcome::Deadlock;
                }
                let state = self.locks.get_mut(&object).expect("just inserted");
                if !state.waiters.contains(&who) {
                    state.waiters.push_back(who);
                }
                self.waiting_on.insert(who, object);
                LockOutcome::Blocked { holder: h }
            }
        }
    }

    /// Whether a waits-for path leads from `from` to `to`.
    fn path_to(&self, mut from: AttemptId, to: AttemptId) -> bool {
        // Chains only (each attempt waits on at most one object), so the
        // walk is linear; guard against longer cycles not through `to`.
        let mut steps = 0;
        loop {
            if from == to {
                return true;
            }
            let Some(object) = self.waiting_on.get(&from) else {
                return false;
            };
            let Some(holder) = self.locks.get(object).and_then(|s| s.holder) else {
                return false;
            };
            from = holder;
            steps += 1;
            if steps > self.waiting_on.len() + 1 {
                return false; // cycle not involving `to`
            }
        }
    }

    /// Releases all locks of `who` (commit or abort), removing it from any
    /// wait queue. Returns the attempts granted a lock by the release, in
    /// FIFO order — the driver wakes them.
    pub fn release_all(&mut self, who: AttemptId) -> Vec<AttemptId> {
        // Cancel a pending wait.
        if let Some(object) = self.waiting_on.remove(&who) {
            if let Some(state) = self.locks.get_mut(&object) {
                state.waiters.retain(|&w| w != who);
            }
        }
        let mut woken = Vec::new();
        for object in self.held.remove(&who).unwrap_or_default() {
            let state = self.locks.get_mut(&object).expect("held lock exists");
            debug_assert_eq!(state.holder, Some(who));
            state.holder = None;
            if let Some(next) = state.waiters.pop_front() {
                state.holder = Some(next);
                self.waiting_on.remove(&next);
                self.held.entry(next).or_default().push(object);
                woken.push(next);
            }
        }
        woken
    }

    /// Whether `who` currently holds the lock on `object`.
    pub fn holds(&self, who: AttemptId, object: Object) -> bool {
        self.locks
            .get(&object)
            .is_some_and(|s| s.holder == Some(who))
    }

    /// The object `who` is blocked on, if any.
    pub fn waiting(&self, who: AttemptId) -> Option<Object> {
        self.waiting_on.get(&who).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u64) -> AttemptId {
        AttemptId(n)
    }

    fn o(n: u32) -> Object {
        Object(n)
    }

    #[test]
    fn grant_block_release_cycle() {
        let mut lt = LockTable::new();
        assert_eq!(lt.acquire(a(1), o(9)), LockOutcome::Granted);
        assert!(lt.holds(a(1), o(9)));
        // Reacquire is idempotent.
        assert_eq!(lt.acquire(a(1), o(9)), LockOutcome::Granted);
        assert_eq!(
            lt.acquire(a(2), o(9)),
            LockOutcome::Blocked { holder: a(1) }
        );
        assert_eq!(lt.waiting(a(2)), Some(o(9)));
        let woken = lt.release_all(a(1));
        assert_eq!(woken, vec![a(2)]);
        assert!(lt.holds(a(2), o(9)));
        assert_eq!(lt.waiting(a(2)), None);
    }

    #[test]
    fn fifo_wakeup() {
        let mut lt = LockTable::new();
        lt.acquire(a(1), o(1));
        lt.acquire(a(2), o(1));
        lt.acquire(a(3), o(1));
        let woken = lt.release_all(a(1));
        assert_eq!(woken, vec![a(2)]);
        let woken = lt.release_all(a(2));
        assert_eq!(woken, vec![a(3)]);
    }

    #[test]
    fn deadlock_detected() {
        let mut lt = LockTable::new();
        lt.acquire(a(1), o(1));
        lt.acquire(a(2), o(2));
        assert_eq!(
            lt.acquire(a(1), o(2)),
            LockOutcome::Blocked { holder: a(2) }
        );
        // T2 requesting o1 closes the cycle T2 → T1 → T2.
        assert_eq!(lt.acquire(a(2), o(1)), LockOutcome::Deadlock);
        // T2 was not enqueued; releasing T1's wait unblocks nothing odd.
        let woken = lt.release_all(a(2));
        assert_eq!(woken, vec![a(1)]);
        assert!(lt.holds(a(1), o(2)));
    }

    #[test]
    fn three_party_deadlock() {
        let mut lt = LockTable::new();
        lt.acquire(a(1), o(1));
        lt.acquire(a(2), o(2));
        lt.acquire(a(3), o(3));
        assert!(matches!(
            lt.acquire(a(1), o(2)),
            LockOutcome::Blocked { .. }
        ));
        assert!(matches!(
            lt.acquire(a(2), o(3)),
            LockOutcome::Blocked { .. }
        ));
        assert_eq!(lt.acquire(a(3), o(1)), LockOutcome::Deadlock);
    }

    #[test]
    fn release_cancels_pending_wait() {
        let mut lt = LockTable::new();
        lt.acquire(a(1), o(1));
        lt.acquire(a(2), o(1));
        // T2 aborts while waiting.
        let woken = lt.release_all(a(2));
        assert!(woken.is_empty());
        let woken = lt.release_all(a(1));
        assert!(woken.is_empty(), "no waiters left");
    }

    #[test]
    fn multiple_locks_released_together() {
        let mut lt = LockTable::new();
        lt.acquire(a(1), o(1));
        lt.acquire(a(1), o(2));
        lt.acquire(a(2), o(1));
        lt.acquire(a(3), o(2));
        let mut woken = lt.release_all(a(1));
        woken.sort_unstable();
        assert_eq!(woken, vec![a(2), a(3)]);
    }
}
