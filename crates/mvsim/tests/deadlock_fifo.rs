//! Deadlock-detector and FIFO-wakeup regressions at the engine and
//! driver layers, plus the degenerate trace exports: an execution with
//! zero commits must still export a valid (empty, trivially
//! serializable) schedule.

use mvisolation::IsolationLevel;
use mvmodel::serializability::is_conflict_serializable;
use mvmodel::{Object, Op, OpKind};
use mvsim::{AbortReason, Engine, Job, SimConfig, StepOutcome};

fn w(o: u32) -> Op {
    Op {
        kind: OpKind::Write,
        object: Object(o),
    }
}

fn r(o: u32) -> Op {
    Op {
        kind: OpKind::Read,
        object: Object(o),
    }
}

/// Two sessions close a waits-for cycle; the engine aborts exactly the
/// requester that would have closed it, the survivor commits.
#[test]
fn two_session_cycle_aborts_the_closer() {
    let mut e = Engine::new(SimConfig::default());
    let t1 = e.begin(vec![w(1), w(2)], IsolationLevel::RC);
    let t2 = e.begin(vec![w(2), w(1)], IsolationLevel::RC);
    assert_eq!(e.step(t1).0, StepOutcome::Progress); // t1 holds a
    assert_eq!(e.step(t2).0, StepOutcome::Progress); // t2 holds b
    assert_eq!(e.step(t1).0, StepOutcome::Blocked); // t1 waits on b
                                                    // t2 requesting a would close the cycle: deadlock, t2 dies.
    assert_eq!(
        e.step(t2).0,
        StepOutcome::Aborted(AbortReason::Deadlock),
        "the cycle-closing requester must be the victim"
    );
    // t2's release hands b to t1 (FIFO), which finishes and commits.
    assert_eq!(e.drain_wakes(), vec![t1]);
    assert_eq!(e.step(t1).0, StepOutcome::Progress);
    assert_eq!(e.step(t1).0, StepOutcome::Committed);
    assert_eq!(e.metrics.aborts_deadlock, 1);
    assert_eq!(e.metrics.commits, 1);
}

/// Three sessions queued on one object are woken strictly in FIFO order,
/// and the committed trace reflects the handoff order.
#[test]
fn lock_handoff_is_fifo_across_three_sessions() {
    let mut e = Engine::new(SimConfig::default());
    let t1 = e.begin(vec![w(7)], IsolationLevel::RC);
    let t2 = e.begin(vec![w(7)], IsolationLevel::RC);
    let t3 = e.begin(vec![w(7)], IsolationLevel::RC);
    assert_eq!(e.step(t1).0, StepOutcome::Progress);
    assert_eq!(e.step(t2).0, StepOutcome::Blocked);
    assert_eq!(e.step(t3).0, StepOutcome::Blocked);
    let (outcome, woken) = e.step(t1);
    assert_eq!(outcome, StepOutcome::Committed);
    assert_eq!(woken, vec![t2], "first waiter wakes first");
    assert_eq!(e.step(t2).0, StepOutcome::Progress);
    let (outcome, woken) = e.step(t2);
    assert_eq!(outcome, StepOutcome::Committed);
    assert_eq!(woken, vec![t3], "second waiter wakes second");
    assert_eq!(e.step(t3).0, StepOutcome::Progress);
    assert_eq!(e.step(t3).0, StepOutcome::Committed);

    let exported = e.trace.export().expect("trace on by default");
    assert!(is_conflict_serializable(&exported.schedule));
    // Commit order in the schedule is the FIFO handoff order.
    let rendered = mvmodel::fmt::schedule_full(&exported.schedule);
    let pos = |needle: &str| rendered.find(needle).expect(needle);
    assert!(pos("C1") < pos("C2") && pos("C2") < pos("C3"), "{rendered}");
}

/// Seeded driver regression: blind-write deadlock pairs retried to
/// completion. Every seed commits both jobs eventually, some seed
/// exercises the deadlock path, and every exported trace stays
/// serializable.
#[test]
fn driver_retries_deadlock_pairs_to_completion() {
    let jobs = vec![
        Job::new(vec![w(1), w(2)], IsolationLevel::RC),
        Job::new(vec![w(2), w(1)], IsolationLevel::RC),
    ];
    let mut deadlocks = 0u64;
    for seed in 0..20u64 {
        let config = SimConfig::default().with_seed(seed).with_concurrency(2);
        let engine = mvsim::run_jobs(&jobs, config);
        assert_eq!(engine.metrics.commits, 2, "seed {seed} lost a job");
        assert_eq!(engine.metrics.gave_up, 0);
        deadlocks += engine.metrics.aborts_deadlock;
        let exported = engine.trace.export().expect("trace on");
        assert!(
            is_conflict_serializable(&exported.schedule),
            "seed {seed}: {}",
            mvmodel::fmt::schedule_full(&exported.schedule)
        );
    }
    assert!(
        deadlocks > 0,
        "no seed drove the pair into a deadlock — scheduler drift?"
    );
}

/// An execution whose only finished attempt deadlock-aborted exports a
/// valid empty schedule (in-flight attempts are not part of the
/// committed trace).
#[test]
fn all_aborted_execution_exports_empty_schedule() {
    let mut e = Engine::new(SimConfig::default());
    let t1 = e.begin(vec![w(1), w(2)], IsolationLevel::RC);
    let t2 = e.begin(vec![w(2), w(1)], IsolationLevel::RC);
    e.step(t1);
    e.step(t2);
    e.step(t1); // blocked on b
    assert_eq!(e.step(t2).0, StepOutcome::Aborted(AbortReason::Deadlock));
    // Export before t1 finishes: no commits at all.
    let exported = e.trace.export().expect("trace on");
    assert!(exported.schedule.txns().is_empty());
    assert!(is_conflict_serializable(&exported.schedule));
    assert!(mvisolation::allowed_under(
        &exported.schedule,
        &exported.allocation
    ));
}

/// The empty job list runs, does nothing, and exports a valid empty
/// schedule with all-zero metrics.
#[test]
fn empty_job_list_exports_empty_schedule() {
    let engine = mvsim::run_jobs(&[], SimConfig::default().with_seed(3));
    assert_eq!(engine.metrics.commits, 0);
    assert_eq!(engine.metrics.total_aborts(), 0);
    let exported = engine.trace.export().expect("trace on");
    assert!(exported.schedule.txns().is_empty());
    assert!(is_conflict_serializable(&exported.schedule));
}

/// `max_retries(0)`: a first-committer-wins loser gives up instead of
/// retrying; the exported schedule covers exactly the committed side and
/// still validates.
#[test]
fn give_up_after_zero_retries_exports_committed_subset() {
    let jobs = vec![
        Job::new(vec![r(1), w(1)], IsolationLevel::SI),
        Job::new(vec![r(1), w(1)], IsolationLevel::SI),
    ];
    let mut saw_give_up = false;
    for seed in 0..10u64 {
        let config = SimConfig::default()
            .with_seed(seed)
            .with_concurrency(2)
            .with_max_retries(0);
        let engine = mvsim::run_jobs(&jobs, config);
        assert_eq!(
            engine.metrics.commits + engine.metrics.gave_up,
            2,
            "seed {seed}: every job either commits or gives up"
        );
        saw_give_up |= engine.metrics.gave_up > 0;
        let exported = engine.trace.export().expect("trace on");
        assert_eq!(
            exported.schedule.txns().len() as u64,
            engine.metrics.commits
        );
        assert!(is_conflict_serializable(&exported.schedule));
        assert!(mvisolation::allowed_under(
            &exported.schedule,
            &exported.allocation
        ));
    }
    assert!(
        saw_give_up,
        "no seed produced a first-committer-wins give-up"
    );
}

/// A three-party cycle threaded through three objects: only the attempt
/// whose request closes the cycle dies; the two earlier waiters drain
/// in handoff order and commit.
#[test]
fn three_session_cycle_kills_only_the_closer() {
    let mut e = Engine::new(SimConfig::default());
    let t1 = e.begin(vec![w(1), w(2)], IsolationLevel::RC);
    let t2 = e.begin(vec![w(2), w(3)], IsolationLevel::RC);
    let t3 = e.begin(vec![w(3), w(1)], IsolationLevel::RC);
    assert_eq!(e.step(t1).0, StepOutcome::Progress); // t1 holds o1
    assert_eq!(e.step(t2).0, StepOutcome::Progress); // t2 holds o2
    assert_eq!(e.step(t3).0, StepOutcome::Progress); // t3 holds o3
    assert_eq!(e.step(t1).0, StepOutcome::Blocked); // t1 → o2
    assert_eq!(e.step(t2).0, StepOutcome::Blocked); // t2 → o3
    assert_eq!(
        e.step(t3).0,
        StepOutcome::Aborted(AbortReason::Deadlock),
        "t3 requesting o1 closes the three-party cycle"
    );
    // t3's release hands o3 to t2, whose commit hands o2 to t1.
    assert_eq!(e.drain_wakes(), vec![t2]);
    assert_eq!(e.step(t2).0, StepOutcome::Progress);
    let (outcome, woken) = e.step(t2);
    assert_eq!(outcome, StepOutcome::Committed);
    assert_eq!(woken, vec![t1]);
    assert_eq!(e.step(t1).0, StepOutcome::Progress);
    assert_eq!(e.step(t1).0, StepOutcome::Committed);
    assert_eq!(e.metrics.aborts_deadlock, 1, "exactly one victim");
    assert_eq!(e.metrics.commits, 2);
}

/// An attempt woken by a lock handoff can block again on its *next*
/// object; the stale waits-for edge from the first wait must not be
/// misread as a cycle, and the genuine cycle formed afterwards must
/// still be caught.
#[test]
fn rewait_after_wakeup_neither_false_positive_nor_miss() {
    let mut e = Engine::new(SimConfig::default());
    let t1 = e.begin(vec![w(1)], IsolationLevel::RC);
    let t2 = e.begin(vec![w(1), w(2)], IsolationLevel::RC);
    let t3 = e.begin(vec![w(2), w(1)], IsolationLevel::RC);
    assert_eq!(e.step(t1).0, StepOutcome::Progress); // t1 holds o1
    assert_eq!(e.step(t2).0, StepOutcome::Blocked); // t2 → o1
    assert_eq!(e.step(t3).0, StepOutcome::Progress); // t3 holds o2
    let (outcome, woken) = e.step(t1);
    assert_eq!(outcome, StepOutcome::Committed);
    assert_eq!(woken, vec![t2], "t2 inherits o1");
    // t2 now blocks on o2 — a fresh wait, not a cycle (its o1 edge is
    // gone). The pre-fix failure mode was a spurious deadlock here.
    assert_eq!(e.step(t2).0, StepOutcome::Progress); // write o1 granted
    assert_eq!(e.step(t2).0, StepOutcome::Blocked); // t2 → o2
                                                    // t3 requesting o1 (held by t2, waiting on o2 held by t3): cycle.
    assert_eq!(e.step(t3).0, StepOutcome::Aborted(AbortReason::Deadlock));
    assert_eq!(e.drain_wakes(), vec![t2]);
    assert_eq!(e.step(t2).0, StepOutcome::Progress);
    assert_eq!(e.step(t2).0, StepOutcome::Committed);
    assert_eq!(e.metrics.commits, 2);
    assert_eq!(e.metrics.aborts_deadlock, 1);
}

/// Victim choice is deterministic under the sequential engine: for a
/// fixed step order the victim is always the cycle-closing requester,
/// regardless of which attempt id is larger — rerunning the same
/// interleaving with roles swapped swaps the victim with it.
#[test]
fn victim_choice_is_deterministic_and_role_based() {
    for swap in [false, true] {
        let mut e = Engine::new(SimConfig::default());
        let (ops_a, ops_b) = (vec![w(1), w(2)], vec![w(2), w(1)]);
        let (first, second) = if swap {
            (
                e.begin(ops_b.clone(), IsolationLevel::RC),
                e.begin(ops_a.clone(), IsolationLevel::RC),
            )
        } else {
            (
                e.begin(ops_a.clone(), IsolationLevel::RC),
                e.begin(ops_b.clone(), IsolationLevel::RC),
            )
        };
        assert_eq!(e.step(first).0, StepOutcome::Progress);
        assert_eq!(e.step(second).0, StepOutcome::Progress);
        assert_eq!(e.step(first).0, StepOutcome::Blocked);
        assert_eq!(
            e.step(second).0,
            StepOutcome::Aborted(AbortReason::Deadlock),
            "the closer dies whichever program it runs (swap={swap})"
        );
        assert_eq!(e.drain_wakes(), vec![first]);
        assert_eq!(e.step(first).0, StepOutcome::Progress);
        assert_eq!(e.step(first).0, StepOutcome::Committed);
    }
}
