//! The closed loop between the simulator and the formal model:
//!
//! 1. every schedule the engine emits must be *allowed under* the
//!    allocation it ran (Definition 2.4) — i.e. the engine correctly
//!    implements RC/SI/SSI;
//! 2. when the allocation is robust (per Algorithm 1), every emitted
//!    schedule must be conflict serializable — the punchline of the whole
//!    theory;
//! 3. in exact SSI mode, all-SSI executions are always serializable;
//! 4. non-robust allocations eventually emit a non-serializable schedule
//!    (the anomaly is real, not hypothetical).

use mvisolation::{allowed_under, violations, Allocation, IsolationLevel};
use mvmodel::serializability::is_conflict_serializable;
use mvsim::{run_jobs, Job, SimConfig, SsiMode};
use mvworkloads::RandomWorkload;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Builds jobs from a random workload plus a random allocation.
fn random_jobs(seed: u64, theta: f64) -> (Vec<Job>, Allocation) {
    let txns = RandomWorkload::builder()
        .txns(12)
        .ops(2, 4)
        .objects(6)
        .theta(theta)
        .write_ratio(0.45)
        .seed(seed)
        .generate();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xDEAD);
    let alloc: Allocation = txns
        .ids()
        .map(|t| {
            let lvl = match rng.random_range(0..3) {
                0 => IsolationLevel::RC,
                1 => IsolationLevel::SI,
                _ => IsolationLevel::SSI,
            };
            (t, lvl)
        })
        .collect();
    let jobs = txns
        .iter()
        .map(|t| Job::new(t.ops().to_vec(), alloc.level(t.id())))
        .collect();
    (jobs, alloc)
}

/// Core assertion: every exported schedule is allowed under the exported
/// allocation.
fn assert_run_allowed(jobs: &[Job], config: SimConfig) -> bool {
    let engine = run_jobs(jobs, config);
    let exported = engine.trace.export().expect("trace recording enabled");
    let vs = violations(&exported.schedule, &exported.allocation);
    assert!(
        vs.is_empty(),
        "engine emitted a schedule not allowed under its allocation:\n{}\nviolations: {:?}",
        mvmodel::fmt::schedule_full(&exported.schedule),
        vs
    );
    is_conflict_serializable(&exported.schedule)
}

#[test]
fn random_mixed_runs_are_allowed_exact_mode() {
    for seed in 0..40u64 {
        let (jobs, _) = random_jobs(seed, 0.8);
        for conc in [2, 4, 8] {
            assert_run_allowed(
                &jobs,
                SimConfig::default()
                    .with_seed(seed * 31 + conc as u64)
                    .with_concurrency(conc),
            );
        }
    }
}

#[test]
fn random_mixed_runs_are_allowed_conservative_mode() {
    for seed in 0..40u64 {
        let (jobs, _) = random_jobs(seed, 1.2);
        assert_run_allowed(
            &jobs,
            SimConfig::default()
                .with_seed(seed)
                .with_concurrency(6)
                .with_ssi_mode(SsiMode::Conservative),
        );
    }
}

/// Robust allocation ⇒ every emitted schedule is serializable. This is
/// the end-to-end validation of the paper's contract: compute the optimal
/// robust allocation with Algorithm 2, run the workload under it at high
/// contention, and observe only serializable executions.
#[test]
fn robust_allocations_yield_serializable_executions() {
    for seed in 0..25u64 {
        let txns = RandomWorkload::builder()
            .txns(10)
            .ops(2, 3)
            .objects(5)
            .theta(1.0)
            .seed(seed)
            .generate();
        let alloc = mvrobustness::optimal_allocation(&txns);
        assert!(mvrobustness::is_robust(&txns, &alloc).robust());
        let jobs: Vec<Job> = txns
            .iter()
            .map(|t| Job::new(t.ops().to_vec(), alloc.level(t.id())))
            .collect();
        for run in 0..4u64 {
            let engine = run_jobs(
                &jobs,
                SimConfig::default()
                    .with_seed(seed * 17 + run)
                    .with_concurrency(5),
            );
            let exported = engine.trace.export().unwrap();
            assert!(allowed_under(&exported.schedule, &exported.allocation));
            assert!(
                is_conflict_serializable(&exported.schedule),
                "robust allocation produced a non-serializable run (seed {seed}, run {run}):\n{}",
                mvmodel::fmt::schedule_full(&exported.schedule)
            );
        }
    }
}

/// All-SSI executions are serializable in exact mode, by construction.
#[test]
fn all_ssi_exact_always_serializable() {
    for seed in 0..20u64 {
        let txns = RandomWorkload::builder()
            .txns(12)
            .ops(2, 4)
            .objects(4)
            .theta(1.2)
            .seed(seed)
            .generate();
        let jobs: Vec<Job> = txns
            .iter()
            .map(|t| Job::new(t.ops().to_vec(), IsolationLevel::SSI))
            .collect();
        let engine = run_jobs(
            &jobs,
            SimConfig::default().with_seed(seed).with_concurrency(6),
        );
        let exported = engine.trace.export().unwrap();
        assert!(is_conflict_serializable(&exported.schedule));
    }
}

/// Conservative mode must also keep all-SSI runs serializable (it aborts
/// a superset of the exact mode's transactions)…
#[test]
fn all_ssi_conservative_always_serializable() {
    for seed in 0..20u64 {
        let txns = RandomWorkload::builder()
            .txns(12)
            .ops(2, 4)
            .objects(4)
            .theta(1.2)
            .seed(seed)
            .generate();
        let jobs: Vec<Job> = txns
            .iter()
            .map(|t| Job::new(t.ops().to_vec(), IsolationLevel::SSI))
            .collect();
        let engine = run_jobs(
            &jobs,
            SimConfig::default()
                .with_seed(seed)
                .with_concurrency(6)
                .with_ssi_mode(SsiMode::Conservative),
        );
        let exported = engine.trace.export().unwrap();
        assert!(is_conflict_serializable(&exported.schedule));
    }
}

/// The write-skew anomaly is *realized* under all-SI: across seeds, some
/// run must produce a non-serializable schedule (robustness violations
/// are not hypothetical).
#[test]
fn non_robust_si_workload_exhibits_anomaly() {
    let txns = mvworkloads::paper::write_skew_txns();
    let jobs: Vec<Job> = (0..6)
        .flat_map(|_| {
            txns.iter()
                .map(|t| Job::new(t.ops().to_vec(), IsolationLevel::SnapshotIsolation))
        })
        .collect();
    let mut saw_nonserializable = false;
    for seed in 0..50u64 {
        let engine = run_jobs(
            &jobs,
            SimConfig::default().with_seed(seed).with_concurrency(4),
        );
        let exported = engine.trace.export().unwrap();
        assert!(allowed_under(&exported.schedule, &exported.allocation));
        if !is_conflict_serializable(&exported.schedule) {
            saw_nonserializable = true;
            break;
        }
    }
    assert!(
        saw_nonserializable,
        "write skew under SI never materialized in 50 seeds"
    );
}

/// Likewise, an RC-only lost-update workload must eventually go wrong.
#[test]
fn non_robust_rc_workload_exhibits_anomaly() {
    let mut b = mvmodel::TxnSetBuilder::new();
    let x = b.object("x");
    b.txn(1).read(x).write(x).finish();
    b.txn(2).read(x).write(x).finish();
    let txns = b.build().unwrap();
    let jobs: Vec<Job> = (0..4)
        .flat_map(|_| {
            txns.iter()
                .map(|t| Job::new(t.ops().to_vec(), IsolationLevel::RC))
        })
        .collect();
    let mut saw_nonserializable = false;
    for seed in 0..50u64 {
        let engine = run_jobs(
            &jobs,
            SimConfig::default().with_seed(seed).with_concurrency(4),
        );
        let exported = engine.trace.export().unwrap();
        assert!(allowed_under(&exported.schedule, &exported.allocation));
        if !is_conflict_serializable(&exported.schedule) {
            saw_nonserializable = true;
            break;
        }
    }
    assert!(
        saw_nonserializable,
        "lost update under RC never materialized in 50 seeds"
    );
}

/// TPC-C under its optimal allocation, executed in the simulator: always
/// serializable (it had better be — the allocation is robust).
#[test]
fn tpcc_under_optimal_allocation_serializable() {
    let txns = mvworkloads::tpcc::Tpcc::canonical_mix();
    let alloc = mvrobustness::optimal_allocation(&txns);
    let jobs: Vec<Job> = txns
        .iter()
        .map(|t| Job::new(t.ops().to_vec(), alloc.level(t.id())))
        .collect();
    for seed in 0..15u64 {
        let engine = run_jobs(
            &jobs,
            SimConfig::default().with_seed(seed).with_concurrency(4),
        );
        let exported = engine.trace.export().unwrap();
        assert!(allowed_under(&exported.schedule, &exported.allocation));
        assert!(is_conflict_serializable(&exported.schedule));
    }
}

/// Regression for the blocked-write snapshot bug: an SI transaction whose
/// *first* operation is a write that blocks takes its snapshot at the
/// first attempt; the exported schedule must position the write there,
/// or later reads anchored at `first(T)` appear to miss commits.
///
/// Construction: tB holds the lock on `a` and is deadlock-aborted while
/// T1 (SI, program `W[a] R[b]`) waits behind it; meanwhile tD commits a
/// version of `b`. T1 resumes with its old snapshot and must read `op₀`
/// for `b` — allowed only because the write is recorded at attempt time.
#[test]
fn blocked_first_write_keeps_attempt_snapshot() {
    use mvmodel::{Object, Op};
    use mvsim::{Engine, StepOutcome};
    let a = Object(0);
    let b = Object(1);
    let c = Object(2);
    let mut e = Engine::new(SimConfig::default());
    // tB takes `a`, tC takes `c`; T1 blocks on `a`; tC blocks on `a` too;
    // tB requests `c` → deadlock → tB aborts, T1 (first waiter) gets `a`.
    let tb = e.begin(vec![Op::write(a), Op::write(c)], IsolationLevel::RC);
    let tc = e.begin(vec![Op::write(c), Op::write(a)], IsolationLevel::RC);
    let t1 = e.begin(vec![Op::write(a), Op::read(b)], IsolationLevel::SI);
    let td = e.begin(vec![Op::write(b)], IsolationLevel::RC);

    assert_eq!(e.step(tb).0, StepOutcome::Progress); // tB holds a
    assert_eq!(e.step(tc).0, StepOutcome::Progress); // tC holds c
    assert_eq!(e.step(t1).0, StepOutcome::Blocked); // T1 waits on a (snapshot taken)
    assert_eq!(e.step(tc).0, StepOutcome::Blocked); // tC waits on a, behind T1
                                                    // tB requests c held by tC (which waits on a held by tB): deadlock.
    assert!(matches!(e.step(tb).0, StepOutcome::Aborted(_)));
    let woken = e.drain_wakes();
    assert!(woken.contains(&t1), "first waiter inherits the lock");
    // tD commits a version of b *after* T1's snapshot.
    assert_eq!(e.step(td).0, StepOutcome::Progress);
    assert_eq!(e.step(td).0, StepOutcome::Committed);
    // T1 resumes: write granted, read of b sees op0 (old snapshot).
    assert_eq!(e.step(t1).0, StepOutcome::Progress);
    assert_eq!(e.step(t1).0, StepOutcome::Progress);
    assert_eq!(e.step(t1).0, StepOutcome::Committed);
    // Unblock and finish tC (its retry aborts by FCW? tC is RC: proceeds).
    let woken = e.drain_wakes();
    let _ = woken;
    assert_eq!(e.step(tc).0, StepOutcome::Progress);
    assert_eq!(e.step(tc).0, StepOutcome::Committed);

    let exported = e.trace.export().unwrap();
    let vs = mvisolation::violations(&exported.schedule, &exported.allocation);
    assert!(
        vs.is_empty(),
        "blocked-write export must stay allowed:\n{}\nviolations: {vs:?}",
        mvmodel::fmt::schedule_full(&exported.schedule)
    );
}
