//! Parallel-engine conformance: every trace a concurrent run exports
//! must pass the same formal validation as the sequential engine's, and
//! the abort/commit behaviour must stay inside the sequential envelope.
//!
//! Parallel runs are wall-clock nondeterministic (except at one
//! thread), so these tests assert *invariants*, not bit-identity:
//!
//! - every exported schedule is allowed under its allocation
//!   (Definition 2.4), whatever interleaving the OS produced;
//! - all-SSI exact runs are conflict serializable;
//! - write skew is prevented at 4 threads by both detectors;
//! - abort reasons respect the level semantics (RC never aborts on
//!   first-committer-wins or SSI; SI never aborts on SSI);
//! - every job is accounted for: commits + gave_up = jobs;
//! - version-chain GC under concurrency never breaks a trace.

use mvisolation::{violations, Allocation, IsolationLevel};
use mvmodel::serializability::is_conflict_serializable;
use mvsim::{
    run_jobs, run_parallel_jobs, run_parallel_jobs_with, Job, ParOptions, ParRun, SimConfig,
    SsiMode,
};
use mvworkloads::RandomWorkload;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

fn random_jobs(seed: u64, theta: f64) -> (Vec<Job>, Allocation) {
    let txns = RandomWorkload::builder()
        .txns(12)
        .ops(2, 4)
        .objects(6)
        .theta(theta)
        .write_ratio(0.45)
        .seed(seed)
        .generate();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xDEAD);
    let alloc: Allocation = txns
        .ids()
        .map(|t| {
            let lvl = match rng.random_range(0..3) {
                0 => IsolationLevel::RC,
                1 => IsolationLevel::SI,
                _ => IsolationLevel::SSI,
            };
            (t, lvl)
        })
        .collect();
    let jobs = txns
        .iter()
        .map(|t| Job::new(t.ops().to_vec(), alloc.level(t.id())))
        .collect();
    (jobs, alloc)
}

/// Exports the run's trace and asserts Definition 2.4 conformance;
/// returns whether the schedule is conflict serializable.
fn assert_allowed(run: &ParRun) -> bool {
    let exported = run.trace.export().expect("trace recording enabled");
    let vs = violations(&exported.schedule, &exported.allocation);
    assert!(
        vs.is_empty(),
        "parallel run emitted a schedule not allowed under its allocation \
         ({} threads):\n{}\nviolations: {:?}",
        run.threads,
        mvmodel::fmt::schedule_full(&exported.schedule),
        vs
    );
    is_conflict_serializable(&exported.schedule)
}

/// The abort-reason envelope: a level can only abort for reasons its
/// semantics admit, on any interleaving.
fn assert_abort_envelope(run: &ParRun) {
    let rc = run.metrics.level(IsolationLevel::RC);
    assert_eq!(rc.aborts_fcw, 0, "RC has no snapshot to defend");
    assert_eq!(rc.aborts_ssi, 0, "RC is never SSI-checked");
    let si = run.metrics.level(IsolationLevel::SI);
    assert_eq!(si.aborts_ssi, 0, "SI is never SSI-checked");
}

#[test]
fn single_thread_runs_are_deterministic_and_allowed() {
    for seed in 0..8u64 {
        let (jobs, _) = random_jobs(seed, 0.9);
        let config = SimConfig::default().with_seed(seed).with_threads(1);
        let a = run_parallel_jobs(&jobs, config.clone());
        let b = run_parallel_jobs(&jobs, config);
        assert_allowed(&a);
        let ea = a.trace.export().unwrap();
        let eb = b.trace.export().unwrap();
        assert_eq!(
            mvmodel::fmt::schedule_full(&ea.schedule),
            mvmodel::fmt::schedule_full(&eb.schedule),
            "one worker thread is deterministic (seed {seed})"
        );
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.metrics.commits, jobs.len() as u64);
    }
}

#[test]
fn multi_thread_random_mixed_runs_stay_allowed_exact() {
    for seed in 0..12u64 {
        let (jobs, _) = random_jobs(seed, 0.9);
        for threads in [2usize, 4] {
            let run = run_parallel_jobs(
                &jobs,
                SimConfig::default()
                    .with_seed(seed * 31 + threads as u64)
                    .with_threads(threads),
            );
            assert_allowed(&run);
            assert_abort_envelope(&run);
            assert_eq!(run.metrics.commits, jobs.len() as u64, "retry-forever");
            assert_eq!(run.metrics.gave_up, 0);
            assert_eq!(run.latency.count(), jobs.len());
        }
    }
}

#[test]
fn multi_thread_random_mixed_runs_stay_allowed_conservative() {
    for seed in 0..12u64 {
        let (jobs, _) = random_jobs(seed, 1.2);
        let run = run_parallel_jobs(
            &jobs,
            SimConfig::default()
                .with_seed(seed)
                .with_threads(4)
                .with_ssi_mode(SsiMode::Conservative),
        );
        assert_allowed(&run);
        assert_abort_envelope(&run);
        assert_eq!(run.metrics.commits, jobs.len() as u64);
    }
}

#[test]
fn all_ssi_exact_parallel_runs_are_serializable() {
    for seed in 0..10u64 {
        let txns = RandomWorkload::builder()
            .txns(12)
            .ops(2, 4)
            .objects(4)
            .theta(1.2)
            .seed(seed)
            .generate();
        let jobs: Vec<Job> = txns
            .iter()
            .map(|t| Job::new(t.ops().to_vec(), IsolationLevel::SSI))
            .collect();
        let run = run_parallel_jobs(&jobs, SimConfig::default().with_seed(seed).with_threads(4));
        assert!(
            assert_allowed(&run),
            "all-SSI exact must be conflict serializable (seed {seed})"
        );
    }
}

/// The canonical anomaly, hammered concurrently: 6 copies of the
/// write-skew pair at 4 threads must never commit a non-serializable
/// history under either detector.
#[test]
fn write_skew_is_prevented_at_four_threads_by_both_detectors() {
    let txns = mvworkloads::paper::write_skew_txns();
    let jobs: Vec<Job> = (0..6)
        .flat_map(|_| {
            txns.iter()
                .map(|t| Job::new(t.ops().to_vec(), IsolationLevel::SSI))
        })
        .collect();
    for mode in [SsiMode::Exact, SsiMode::Conservative] {
        for seed in 0..10u64 {
            let run = run_parallel_jobs(
                &jobs,
                SimConfig::default()
                    .with_seed(seed)
                    .with_threads(4)
                    .with_ssi_mode(mode),
            );
            assert!(
                assert_allowed(&run),
                "write skew slipped through ({mode:?}, seed {seed})"
            );
            assert_eq!(run.metrics.commits, jobs.len() as u64);
        }
    }
}

/// GC under concurrency: a long run over a tiny object set must prune
/// version chains while never invalidating a trace — the watermark
/// registration protocol at work.
#[test]
fn gc_under_concurrency_prunes_without_breaking_traces() {
    let mut b = mvmodel::TxnSetBuilder::new();
    let x = b.object("x");
    let y = b.object("y");
    b.txn(1).read(x).write(x).finish();
    b.txn(2).read(y).write(y).finish();
    let txns = b.build().unwrap();
    let jobs: Vec<Job> = (0..160)
        .flat_map(|_| {
            txns.iter()
                .map(|t| Job::new(t.ops().to_vec(), IsolationLevel::RC))
        })
        .collect();
    let run = run_parallel_jobs(&jobs, SimConfig::default().with_seed(5).with_threads(4));
    assert_eq!(run.metrics.commits, 320);
    assert!(
        run.metrics.versions_pruned > 0,
        "320 commits over 2 objects must trigger the 64-commit GC cadence"
    );
    assert_allowed(&run);
}

/// Bounded retries: every job is accounted for, commits + gave_up = jobs,
/// and giving up leaves the exported trace valid.
#[test]
fn limited_retries_account_for_every_job() {
    let mut b = mvmodel::TxnSetBuilder::new();
    let x = b.object("x");
    b.txn(1).read(x).write(x).finish();
    let txns = b.build().unwrap();
    let jobs: Vec<Job> = (0..24)
        .flat_map(|_| {
            txns.iter()
                .map(|t| Job::new(t.ops().to_vec(), IsolationLevel::SI))
        })
        .collect();
    for seed in 0..6u64 {
        let run = run_parallel_jobs(
            &jobs,
            SimConfig::default()
                .with_seed(seed)
                .with_threads(4)
                .with_max_retries(0),
        );
        assert_eq!(
            run.metrics.commits + run.metrics.gave_up,
            jobs.len() as u64,
            "every job commits or gives up (seed {seed})"
        );
        assert_allowed(&run);
    }
}

/// Cross-check against the sequential oracle: the same jobs, run
/// sequentially and at 4 threads with retry-forever, both complete all
/// jobs; the parallel run's abort reasons stay inside the per-level
/// envelope the sequential semantics define.
#[test]
fn parallel_runs_stay_in_the_sequential_envelope() {
    for seed in 0..8u64 {
        let (jobs, _) = random_jobs(seed, 1.0);
        let seq = run_jobs(
            &jobs,
            SimConfig::default().with_seed(seed).with_concurrency(4),
        );
        let par = run_parallel_jobs(&jobs, SimConfig::default().with_seed(seed).with_threads(4));
        assert_eq!(seq.metrics.commits, jobs.len() as u64);
        assert_eq!(par.metrics.commits, jobs.len() as u64);
        assert_abort_envelope(&par);
        // Both exports validate through the identical pipeline.
        let es = seq.trace.export().unwrap();
        assert!(violations(&es.schedule, &es.allocation).is_empty());
        assert_allowed(&par);
    }
}

/// Jitter is a diversity knob, not a semantics knob: disabling it must
/// not affect any invariant.
#[test]
fn jitter_off_preserves_all_invariants() {
    for seed in 0..6u64 {
        let (jobs, _) = random_jobs(seed, 0.9);
        let run = run_parallel_jobs_with(
            &jobs,
            SimConfig::default().with_seed(seed).with_threads(4),
            ParOptions { jitter: false },
        );
        assert_allowed(&run);
        assert_abort_envelope(&run);
        assert_eq!(run.metrics.commits, jobs.len() as u64);
    }
}
