//! Randomized cross-validation of Algorithm 1 against the simulator:
//! any allocation Algorithm 1 certifies as robust — not just the
//! Algorithm 2 optimum — must only ever produce conflict-serializable
//! executions.
//!
//! Two generators feed the check:
//!
//! 1. uniformly random allocations, filtered through `is_robust` (the
//!    survivors are genuinely mixed, not all-SSI ceilings);
//! 2. the optimal allocation with random transactions *raised* — by
//!    upward monotonicity (Proposition 4.1) every such raise stays
//!    robust, and the simulator must agree.
//!
//! Together with `trace_validation.rs` this closes the loop from both
//! sides: robust ⇒ serializable here, and non-robust ⇒ an eventual
//! anomaly there.

use mvisolation::{allowed_under, Allocation, IsolationLevel};
use mvmodel::serializability::is_conflict_serializable;
use mvrobustness::{is_robust, optimal_allocation};
use mvsim::{run_jobs, Job, SimConfig};
use mvworkloads::RandomWorkload;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

fn jobs_for(txns: &mvmodel::TransactionSet, alloc: &Allocation) -> Vec<Job> {
    txns.iter()
        .map(|t| Job::new(t.ops().to_vec(), alloc.level(t.id())))
        .collect()
}

/// Runs the workload under `alloc` and asserts the exported schedule is
/// allowed and conflict-serializable.
fn assert_serializable(
    txns: &mvmodel::TransactionSet,
    alloc: &Allocation,
    sim_seed: u64,
    what: &str,
) {
    let jobs = jobs_for(txns, alloc);
    let engine = run_jobs(
        &jobs,
        SimConfig::default().with_seed(sim_seed).with_concurrency(5),
    );
    let exported = engine.trace.export().expect("trace recording enabled");
    assert!(
        allowed_under(&exported.schedule, &exported.allocation),
        "{what} (sim seed {sim_seed}): engine violated its own allocation"
    );
    assert!(
        is_conflict_serializable(&exported.schedule),
        "{what} (sim seed {sim_seed}): robust allocation {alloc} produced a \
         non-serializable schedule:\n{}",
        mvmodel::fmt::schedule_full(&exported.schedule)
    );
}

/// Is the allocation genuinely mixed (at least two distinct levels)?
fn is_mixed(alloc: &Allocation) -> bool {
    let mut levels: Vec<IsolationLevel> = alloc.iter().map(|(_, l)| l).collect();
    levels.sort();
    levels.dedup();
    levels.len() >= 2
}

#[test]
fn random_allocations_certified_robust_run_serializably() {
    let mut robust_mixed_tested = 0u32;
    for seed in 0..200u64 {
        // Moderate contention: uniform random allocations are almost
        // never robust over a dense conflict graph, so give the draw a
        // real chance while keeping genuine conflicts in play.
        let txns = RandomWorkload::builder()
            .txns(6)
            .ops(1, 3)
            .objects(10)
            .theta(0.6)
            .write_ratio(0.35)
            .seed(seed)
            .generate();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xA110C);
        let alloc: Allocation = txns
            .ids()
            .map(|t| {
                let lvl = match rng.random_range(0..3) {
                    0 => IsolationLevel::RC,
                    1 => IsolationLevel::SI,
                    _ => IsolationLevel::SSI,
                };
                (t, lvl)
            })
            .collect();
        // Algorithm 1 is the gatekeeper: only certified-robust
        // allocations must behave; the rest are skipped (their
        // anomalies are trace_validation's business).
        if !is_robust(&txns, &alloc).robust() {
            continue;
        }
        if is_mixed(&alloc) {
            robust_mixed_tested += 1;
        }
        for run in 0..3u64 {
            assert_serializable(&txns, &alloc, seed * 13 + run, "random robust allocation");
        }
    }
    // The filter must not be vacuous: enough genuinely mixed robust
    // allocations survived to make the sweep meaningful.
    assert!(
        robust_mixed_tested >= 10,
        "only {robust_mixed_tested} mixed robust allocations in the sweep — \
         generator drifted, tighten theta/write_ratio"
    );
}

#[test]
fn raised_optimal_allocations_stay_robust_and_serializable() {
    let mut raised_tested = 0u32;
    for seed in 0..40u64 {
        let txns = RandomWorkload::builder()
            .txns(9)
            .ops(2, 4)
            .objects(5)
            .theta(1.0)
            .write_ratio(0.4)
            .seed(seed * 7 + 1)
            .generate();
        let base = optimal_allocation(&txns);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x12A15E);
        // Raise a random subset one level (RC→SI, SI→SSI).
        let raised: Allocation = base
            .iter()
            .map(|(t, lvl)| {
                let lvl = if rng.random_range(0..100) < 40 {
                    match lvl {
                        IsolationLevel::RC => IsolationLevel::SI,
                        _ => IsolationLevel::SSI,
                    }
                } else {
                    lvl
                };
                (t, lvl)
            })
            .collect();
        // Upward monotonicity (Prop 4.1): raising levels preserves
        // robustness — re-verified through Algorithm 1, not assumed.
        assert!(
            is_robust(&txns, &raised).robust(),
            "raise broke robustness (seed {seed}): {base} -> {raised}"
        );
        if raised != base && is_mixed(&raised) {
            raised_tested += 1;
        }
        for run in 0..2u64 {
            assert_serializable(&txns, &raised, seed * 11 + run, "raised optimal allocation");
        }
    }
    assert!(
        raised_tested >= 10,
        "only {raised_tested} genuinely raised mixed allocations — raise \
         probability too low for the sweep to mean anything"
    );
}
