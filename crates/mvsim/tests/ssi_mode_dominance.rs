//! The conservative SSI detector dominates the exact one: on lockstep
//! executions (identical begin order, identical scheduling picks) the two
//! detectors behave identically up to the first divergence, and the
//! divergence — when it happens — is always the conservative detector
//! aborting an attempt the exact detector would have let through. The
//! exact detector has zero false positives; Cahill-style flag tracking
//! over-approximates it, never the reverse.
//!
//! Both engines are then drained to completion independently and their
//! committed traces must be serializable: the workloads run all-SSI,
//! which is always a robust allocation.

use mvmodel::serializability::is_conflict_serializable;
use mvsim::version::AttemptId;
use mvsim::{AbortReason, Engine, SimConfig, SsiMode, StepOutcome};
use mvworkloads::SmallBank;
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// What happened at the first point the two engines disagreed.
#[derive(Debug)]
struct Divergence {
    exact: StepOutcome,
    conservative: StepOutcome,
}

/// Applies one step's outcome to a ready list: finished or blocked
/// attempts leave, woken attempts join (in wake order — the engine's
/// FIFO lock handoff).
fn apply(outcome: StepOutcome, idx: usize, wakes: Vec<AttemptId>, ready: &mut Vec<AttemptId>) {
    match outcome {
        StepOutcome::Progress => {}
        StepOutcome::Blocked | StepOutcome::Committed | StepOutcome::Aborted(_) => {
            ready.remove(idx);
        }
    }
    ready.extend(wakes);
}

/// Steps `engine` until no attempt is runnable, picking uniformly from
/// the ready list with a seeded rng.
fn drain(engine: &mut Engine, mut ready: Vec<AttemptId>, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    while !ready.is_empty() {
        let idx = (rng.next_u64() % ready.len() as u64) as usize;
        let who = ready[idx];
        let (outcome, mut wakes) = engine.step(who);
        wakes.extend(engine.drain_wakes());
        apply(outcome, idx, wakes, &mut ready);
    }
    assert_eq!(engine.active_count(), 0, "attempts stranded blocked");
}

/// Runs one all-SSI workload in lockstep under both detectors. Returns
/// the divergence, if any; panics if the divergence is anything other
/// than a conservative-only SSI abort.
fn lockstep(seed: u64) -> Divergence {
    let txns = SmallBank::random_mix(10, 3, 0.9, seed);
    let mode_config = |mode| SimConfig::default().with_ssi_mode(mode);
    let mut exact = Engine::new(mode_config(SsiMode::Exact));
    let mut cons = Engine::new(mode_config(SsiMode::Conservative));
    let mut ready: Vec<AttemptId> = txns
        .iter()
        .map(|t| {
            let a = exact.begin(t.ops().to_vec(), mvisolation::IsolationLevel::SSI);
            let b = cons.begin(t.ops().to_vec(), mvisolation::IsolationLevel::SSI);
            assert_eq!(a, b, "begin order must assign identical attempt ids");
            a
        })
        .collect();

    let mut rng = SmallRng::seed_from_u64(seed ^ 0xD04E);
    let mut divergence = Divergence {
        exact: StepOutcome::Progress,
        conservative: StepOutcome::Progress,
    };
    let mut diverged = false;
    while !ready.is_empty() {
        let idx = (rng.next_u64() % ready.len() as u64) as usize;
        let who = ready[idx];
        let (oe, mut we) = exact.step(who);
        we.extend(exact.drain_wakes());
        let (oc, mut wc) = cons.step(who);
        wc.extend(cons.drain_wakes());
        if oe != oc {
            // The one permitted divergence: a conservative false-positive
            // abort. The exact detector aborting where the conservative
            // one proceeds would invert the containment.
            assert_eq!(
                oc,
                StepOutcome::Aborted(AbortReason::SsiDangerous),
                "divergence was not a conservative SSI abort (seed {seed}): \
                 exact={oe:?} conservative={oc:?}"
            );
            assert!(
                !matches!(oe, StepOutcome::Aborted(_)),
                "exact aborted where conservative did not (seed {seed}): {oe:?}"
            );
            divergence = Divergence {
                exact: oe,
                conservative: oc,
            };
            diverged = true;
            // Split the worlds: each engine finishes under its own
            // (deterministic) continuation.
            let mut ready_e = ready.clone();
            let mut ready_c = ready.clone();
            apply(oe, idx, we, &mut ready_e);
            apply(oc, idx, wc, &mut ready_c);
            drain(&mut exact, ready_e, seed ^ 0xE);
            drain(&mut cons, ready_c, seed ^ 0xC);
            break;
        }
        assert_eq!(we, wc, "wake order diverged before outcomes (seed {seed})");
        apply(oe, idx, we, &mut ready);
    }
    assert_eq!(exact.active_count(), 0);
    assert_eq!(cons.active_count(), 0);

    // All-SSI is robust: both committed traces must be serializable.
    for (label, engine) in [("exact", &exact), ("conservative", &cons)] {
        let exported = engine.trace.export().expect("traces on by default");
        assert!(
            is_conflict_serializable(&exported.schedule),
            "{label} detector committed a non-serializable trace (seed {seed}): {}",
            mvmodel::fmt::schedule_full(&exported.schedule)
        );
        assert!(
            mvisolation::allowed_under(&exported.schedule, &exported.allocation),
            "{label} trace not allowed under its allocation (seed {seed})"
        );
    }

    // No divergence → the runs were identical, including their aborts.
    if !diverged {
        assert_eq!(exact.metrics.aborts_ssi, cons.metrics.aborts_ssi);
        assert_eq!(
            mvmodel::fmt::schedule_full(&exact.trace.export().unwrap().schedule),
            mvmodel::fmt::schedule_full(&cons.trace.export().unwrap().schedule),
            "divergence-free lockstep runs must produce identical traces (seed {seed})"
        );
        assert!(matches!(divergence.exact, StepOutcome::Progress));
    }
    divergence
}

#[test]
fn conservative_aborts_contain_exact_aborts_on_lockstep_runs() {
    let mut divergences = 0usize;
    for seed in 0..60u64 {
        let d = lockstep(seed);
        if matches!(d.conservative, StepOutcome::Aborted(_)) {
            divergences += 1;
        }
    }
    // The property must actually bite: some seed has to produce a
    // conservative false positive, or the test is vacuous.
    assert!(
        divergences > 0,
        "no seed produced a conservative-only abort — detector change or workload drift?"
    );
}

/// Driver-level pinning: under the full retry driver with identical
/// seeds, the conservative detector's SSI abort count dominates the exact
/// one's in aggregate. Deterministic in the pinned seeds.
#[test]
fn conservative_ssi_abort_count_dominates_under_driver() {
    let txns = SmallBank::random_mix(24, 3, 0.9, 0xD0);
    let alloc = mvisolation::Allocation::uniform(&txns, mvisolation::IsolationLevel::SSI);
    let mut exact_total = 0u64;
    let mut cons_total = 0u64;
    for seed in 0..8u64 {
        let run = |mode| {
            let config = SimConfig::default()
                .with_seed(seed)
                .with_concurrency(6)
                .with_ssi_mode(mode)
                .with_max_retries(50);
            mvsim::run_workload(&txns, &alloc, config)
                .metrics
                .aborts_ssi
        };
        exact_total += run(SsiMode::Exact);
        cons_total += run(SsiMode::Conservative);
    }
    assert!(
        cons_total >= exact_total,
        "conservative SSI aborts ({cons_total}) fell below exact ({exact_total})"
    );
    assert!(cons_total > 0, "workload never triggered the detector");
}
