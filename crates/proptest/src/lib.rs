//! Minimal property-testing harness covering the slice of the
//! `proptest` API this workspace uses: [`Strategy`] with `prop_map`,
//! integer-range / tuple / `collection::vec` / `bool::ANY` / `any::<T>()`
//! strategies, and the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] / [`prop_assume!`] macros.
//!
//! The build environment has no network access to a crates registry, so
//! the workspace wires `proptest` to this path crate. Differences from
//! real proptest, deliberately accepted:
//!
//! - **No shrinking.** A failing case panics with the case number and
//!   the per-test seed; re-running is deterministic, so the failure
//!   reproduces exactly.
//! - **Deterministic seeding.** Each test derives its RNG stream from a
//!   hash of the test-function name (override with the
//!   `MVROBUST_PROPTEST_SEED` environment variable), so CI runs are
//!   reproducible by construction.
//! - `prop_assume!` skips the case without replacement; the configured
//!   case count is an upper bound on executed cases.

use rand::rngs::SmallRng;
use rand::{RngCore, RngExt, SeedableRng};

/// Runner configuration; only the case count is meaningful here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Marker returned by `prop_assume!` to skip the current case.
#[derive(Debug)]
pub struct TestCaseSkip;

/// A generator of values of an associated type. Unlike real proptest
/// there is no value tree / shrinking; a strategy simply samples.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut SmallRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut SmallRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Types with a canonical "any value" strategy (subset of `Arbitrary`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut SmallRng) -> i64 {
        rng.next_u64() as i64
    }
}

/// Strategy form of [`Arbitrary`], mirroring `proptest::arbitrary::any`.
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

pub mod prop {
    pub mod bool {
        use crate::Strategy;
        use rand::rngs::SmallRng;
        use rand::RngCore;

        #[derive(Debug, Clone, Copy)]
        pub struct BoolAny;

        impl Strategy for BoolAny {
            type Value = bool;
            fn generate(&self, rng: &mut SmallRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }

        pub const ANY: BoolAny = BoolAny;
    }

    pub mod collection {
        use crate::Strategy;
        use rand::rngs::SmallRng;
        use rand::RngExt;

        /// Length bounds for [`vec`], built from range literals.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // inclusive
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }

        impl From<core::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: core::ops::RangeInclusive<usize>) -> Self {
                assert!(r.start() <= r.end(), "empty size range");
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end(),
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n }
            }
        }

        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
                let len = rng.random_range(self.size.lo..=self.size.hi);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

/// Derive the base RNG seed for a named test: stable across runs and
/// machines, overridable for exploration via `MVROBUST_PROPTEST_SEED`.
pub fn seed_for(test_name: &str) -> u64 {
    if let Ok(s) = std::env::var("MVROBUST_PROPTEST_SEED") {
        if let Ok(n) = s.trim().parse::<u64>() {
            return n;
        }
    }
    // FNV-1a over the test name.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Execute one configured run of a property body.
pub fn run_property<F>(test_name: &str, config: &ProptestConfig, mut body: F)
where
    F: FnMut(&mut SmallRng) -> Result<(), TestCaseSkip>,
{
    let base = seed_for(test_name);
    let mut skipped = 0u32;
    for case in 0..config.cases as u64 {
        let mut rng = SmallRng::seed_from_u64(base.wrapping_add(case));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(TestCaseSkip)) => skipped += 1,
            Err(payload) => {
                eprintln!(
                    "proptest shim: property `{test_name}` failed at case {case} \
                     (base seed {base}; rerun with MVROBUST_PROPTEST_SEED={base})"
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
    if skipped == config.cases {
        panic!("proptest shim: every case of `{test_name}` was skipped by prop_assume!");
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseSkip,
    };
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// expands to a `#[test]`-style function running `config.cases` sampled
/// cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::run_property(stringify!($name), &config, |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                // The closure gives `prop_assume!`'s early `return` a
                // per-case scope, not the whole test fn.
                #[allow(clippy::redundant_closure_call)]
                let __result: ::core::result::Result<(), $crate::TestCaseSkip> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                __result
            });
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Assert inside a property body (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*)
    };
}

/// Skip the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseSkip);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseSkip);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u32> {
        (0u32..500).prop_map(|n| n * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn mapped_strategy_applies(n in evens()) {
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn vec_and_tuple_strategies(
            v in prop::collection::vec((0u32..4, prop::bool::ANY), 1..=4),
            x in any::<u64>(),
        ) {
            prop_assert!((1..=4).contains(&v.len()));
            prop_assert!(v.iter().all(|(n, _)| *n < 4));
            let _ = x;
        }

        #[test]
        fn assume_skips(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use rand::SeedableRng;
        let strat = prop::collection::vec(0u32..1000, 3..=3);
        let mut rng1 = rand::rngs::SmallRng::seed_from_u64(crate::seed_for("x"));
        let mut rng2 = rand::rngs::SmallRng::seed_from_u64(crate::seed_for("x"));
        assert_eq!(strat.generate(&mut rng1), strat.generate(&mut rng2));
    }

    #[test]
    #[should_panic(expected = "skipped")]
    fn all_skipped_panics() {
        crate::run_property("always_skip", &ProptestConfig::with_cases(4), |_rng| {
            Err(TestCaseSkip)
        });
    }
}
