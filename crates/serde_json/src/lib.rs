//! Minimal JSON tree + parser + pretty-printer covering the slice of
//! the `serde_json` API this workspace uses: [`Value`], the [`json!`]
//! macro, [`from_str`], [`to_string_pretty`], indexing by key/position,
//! and `as_*` accessors. Objects preserve insertion order (like
//! serde_json's `preserve_order` feature) so CLI output is stable.
//!
//! The build environment has no network access to a crates registry, so
//! the workspace wires `serde_json` to this path crate. There is no
//! serde integration: `json!` converts leaf expressions via
//! `Into<Value>` and the CLI builds its trees explicitly.

use std::fmt;

/// An ordered JSON object (insertion order preserved).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Self {
        Map::default()
    }

    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// JSON number: signed, unsigned, or float — mirrors serde_json's
/// three-way representation so integers round-trip exactly.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(_) => None,
        }
    }

    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(f) => f,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => a == b,
            _ => match (self.as_u64(), other.as_u64()) {
                (Some(a), Some(b)) => a == b,
                _ => self.as_f64() == other.as_f64(),
            },
        }
    }
}

/// A JSON tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::IndexMut<&str> for Value {
    /// Auto-inserts `Null` for a missing key; panics on non-objects,
    /// matching serde_json's behaviour.
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if let Value::Null = self {
            *self = Value::Object(Map::new());
        }
        let Value::Object(map) = self else {
            panic!("cannot index non-object JSON value with a string key");
        };
        if map.get(key).is_none() {
            map.insert(key.to_string(), Value::Null);
        }
        map.get_mut(key).expect("just inserted")
    }
}

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                Value::Number(Number::PosInt(n as u64))
            }
        }
    )*};
}

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                if n >= 0 {
                    Value::Number(Number::PosInt(n as u64))
                } else {
                    Value::Number(Number::NegInt(n as i64))
                }
            }
        }
    )*};
}

from_unsigned!(u8, u16, u32, u64, usize);
from_signed!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Number(Number::Float(f))
    }
}

impl From<f32> for Value {
    fn from(f: f32) -> Value {
        Value::Number(Number::Float(f as f64))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<&String> for Value {
    fn from(s: &String) -> Value {
        Value::String(s.clone())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(opt: Option<T>) -> Value {
        opt.map_or(Value::Null, Into::into)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

// Comparisons against plain literals, so tests can write
// `assert_eq!(j["robust"], false)` or `j["n"] == 3`.
impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

macro_rules! eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(n) => *n == Number::from(*other),
                    _ => false,
                }
            }
        }
        impl From<$t> for Number {
            fn from(n: $t) -> Number {
                #[allow(unused_comparisons)]
                if n >= 0 {
                    Number::PosInt(n as u64)
                } else {
                    Number::NegInt(n as i64)
                }
            }
        }
    )*};
}

eq_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

/// Build a [`Value`] from a JSON-ish literal. Object values and array
/// elements are arbitrary Rust expressions converted via `Into<Value>`;
/// nest `json!({...})` explicitly for sub-objects.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($elem) ),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert($key.to_string(), $crate::Value::from($value)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

#[derive(Debug)]
pub struct Error {
    message: String,
    line: usize,
    column: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at line {} column {}",
            self.message, self.line, self.column
        )
    }
}

impl std::error::Error for Error {}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(f) => {
            if f.is_finite() {
                if f == f.trunc() && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&format!("{f}"));
                }
            } else {
                out.push_str("null");
            }
        }
    }
}

fn write_value(out: &mut String, value: &Value, indent: usize, pretty: bool) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                }
                write_value(out, item, indent + 1, pretty);
            }
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                }
                escape_into(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, v, indent + 1, pretty);
            }
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            out.push('}');
        }
    }
}

pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, 0, false);
    Ok(out)
}

pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, 0, true);
    Ok(out)
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(&mut out, self, 0, f.alternate());
        f.write_str(&out)
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> Error {
        let consumed = &self.bytes[..self.pos.min(self.bytes.len())];
        let line = consumed.iter().filter(|&&b| b == b'\n').count() + 1;
        let column = consumed.iter().rev().take_while(|&&b| b != b'\n').count() + 1;
        Error {
            message: message.into(),
            line,
            column,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.error(format!("unexpected character `{}`", b as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("invalid literal, expected `{word}`")))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our
                            // printer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 3; // +1 below covers the 4th digit
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if is_float {
            let f: f64 = text.parse().map_err(|_| self.error("invalid number"))?;
            Ok(Value::Number(Number::Float(f)))
        } else if let Some(stripped) = text.strip_prefix('-') {
            let n: i64 = stripped
                .parse::<i64>()
                .map(|n| -n)
                .map_err(|_| self.error("integer out of range"))?;
            Ok(Value::Number(Number::NegInt(n)))
        } else {
            let n: u64 = text
                .parse()
                .map_err(|_| self.error("integer out of range"))?;
            Ok(Value::Number(Number::PosInt(n)))
        }
    }
}

/// Parse a JSON document. The turbofish form `from_str::<Value>(..)`
/// used by tests is supported via a generic bound that only `Value`
/// satisfies.
pub fn from_str<T: FromJson>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON document"));
    }
    T::from_json(value)
}

pub trait FromJson: Sized {
    fn from_json(value: Value) -> Result<Self, Error>;
}

impl FromJson for Value {
    fn from_json(value: Value) -> Result<Self, Error> {
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_pretty() {
        let v = json!({
            "name": "t",
            "n": 3,
            "neg": -7,
            "pi": 0.5,
            "flag": true,
            "nothing": json!(null),
            "list": vec![1u32, 2, 3],
            "nested": json!({"a": json!([1, 2])}),
        });
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back["n"], 3);
        assert_eq!(back["neg"], -7);
        assert_eq!(back["flag"], true);
        assert_eq!(back["name"], "t");
        assert!(back["nothing"].is_null());
        assert_eq!(back["list"].as_array().unwrap().len(), 3);
        assert_eq!(back["nested"]["a"][1], 2);
    }

    #[test]
    fn option_and_index_mut() {
        let mut v = json!({"a": Option::<String>::None, "b": Some(4u64)});
        assert!(v["a"].is_null());
        assert_eq!(v["b"], 4);
        v["c"] = json!("added");
        assert_eq!(v["c"], "added");
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn string_escapes() {
        let v = json!({"s": "line\n\"quote\"\t\\"});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parse_errors_are_positioned() {
        let err = from_str::<Value>("{\"a\": }").unwrap_err();
        assert!(err.to_string().contains("line 1"));
        assert!(from_str::<Value>("[1, 2,]").is_err());
        assert!(from_str::<Value>("{\"a\":1} trailing").is_err());
    }

    #[test]
    fn object_order_preserved() {
        let v = json!({"z": 1, "a": 2, "m": 3});
        let text = to_string(&v).unwrap();
        assert_eq!(text, "{\"z\":1,\"a\":2,\"m\":3}");
    }
}
