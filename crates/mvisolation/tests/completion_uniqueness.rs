//! The determinism lemma behind the brute-force oracle (DESIGN.md §4):
//! for a fixed operation order and allocation, any schedule *allowed
//! under* the allocation has exactly the version order and version
//! function that [`mvisolation::derive_schedule`] computes. This test
//! searches for counterexamples by enumerating random schedules with
//! *arbitrary* version data and checking that every allowed one
//! coincides with the derived completion.

use mvisolation::{allowed_under, derive_schedule, Allocation, IsolationLevel};
use mvmodel::{Object, Op, OpAddr, OpId, Schedule, Transaction, TransactionSet, TxnId};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn txn_sets() -> impl Strategy<Value = Arc<TransactionSet>> {
    prop::collection::vec(
        prop::collection::vec((0u32..3, prop::bool::ANY), 1..=3),
        2..=4,
    )
    .prop_map(|specs| {
        let mut txns = Vec::new();
        for (i, spec) in specs.into_iter().enumerate() {
            let mut ops: Vec<Op> = Vec::new();
            for (obj, write) in spec {
                let op = if write {
                    Op::write(Object(obj))
                } else {
                    Op::read(Object(obj))
                };
                if !ops.contains(&op) {
                    // Keep reads before writes per object.
                    if op.is_write() {
                        ops.push(op);
                    } else if let Some(p) = ops
                        .iter()
                        .position(|o| o.is_write() && o.object == op.object)
                    {
                        ops.insert(p, op);
                    } else {
                        ops.push(op);
                    }
                }
            }
            txns.push(Transaction::new(TxnId(i as u32 + 1), ops).expect("deduped"));
        }
        Arc::new(TransactionSet::new(txns).expect("unique ids"))
    })
}

/// Builds a schedule with an arbitrary (possibly non-commit-order)
/// version order and arbitrary version function, from random choices.
fn arbitrary_schedule(txns: Arc<TransactionSet>, seed: u64) -> Schedule {
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let mut cursors: Vec<(TxnId, usize, usize)> =
        txns.iter().map(|t| (t.id(), 0usize, t.len() + 1)).collect();
    let mut order: Vec<OpId> = Vec::new();
    while !cursors.is_empty() {
        let k = next() % cursors.len();
        let (tid, ref mut pos, len) = cursors[k];
        let t = txns.txn(tid);
        order.push(if *pos < t.len() {
            OpId::op(tid, *pos as u16)
        } else {
            OpId::Commit(tid)
        });
        *pos += 1;
        if *pos >= len {
            cursors.remove(k);
        }
    }
    let pos: HashMap<OpId, usize> = order.iter().enumerate().map(|(i, &o)| (o, i)).collect();
    let mut versions: HashMap<Object, Vec<OpAddr>> = HashMap::new();
    for object in txns.objects() {
        let mut writers = txns.writers_of(object);
        for i in (1..writers.len()).rev() {
            writers.swap(i, next() % (i + 1));
        }
        if !writers.is_empty() {
            versions.insert(object, writers);
        }
    }
    let mut reads_from: HashMap<OpAddr, OpId> = HashMap::new();
    for t in txns.iter() {
        for (addr, object) in t.reads() {
            let candidates: Vec<OpId> = txns
                .writers_of(object)
                .into_iter()
                .map(OpId::Op)
                .filter(|w| pos[w] < pos[&OpId::Op(addr)])
                .collect();
            let v = if candidates.is_empty() || next() % 3 == 0 {
                OpId::Init
            } else {
                candidates[next() % candidates.len()]
            };
            reads_from.insert(addr, v);
        }
    }
    Schedule::new(txns, order, versions, reads_from).expect("valid by construction")
}

fn random_allocation(txns: &TransactionSet, seed: u64) -> Allocation {
    let mut state = seed ^ 0xA110C;
    txns.ids()
        .map(|t| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let lvl = match (state >> 33) % 3 {
                0 => IsolationLevel::RC,
                1 => IsolationLevel::SI,
                _ => IsolationLevel::SSI,
            };
            (t, lvl)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// If an arbitrary schedule is allowed under 𝒜, its version order and
    /// version function coincide with the forced completion — so
    /// enumerating interleavings enumerates allowed schedules exactly.
    #[test]
    fn allowed_schedules_equal_their_derived_completion(
        txns in txn_sets(),
        seed in any::<u64>(),
    ) {
        let s = arbitrary_schedule(Arc::clone(&txns), seed);
        let alloc = random_allocation(&txns, seed);
        if !allowed_under(&s, &alloc) {
            return Ok(());
        }
        let derived = derive_schedule(Arc::clone(&txns), s.order().to_vec(), &alloc)
            .expect("order is a valid interleaving");
        // Same version order per object…
        for object in txns.objects() {
            prop_assert_eq!(
                s.version_order(object),
                derived.version_order(object),
                "version order must be forced (object {})", object
            );
        }
        // …and same version function.
        for t in txns.iter() {
            for (addr, _) in t.reads() {
                prop_assert_eq!(
                    s.version_fn(addr),
                    derived.version_fn(addr),
                    "version function must be forced (read {})", addr
                );
            }
        }
        // And the derived completion itself is allowed.
        prop_assert!(allowed_under(&derived, &alloc));
    }

    /// The derived completion never violates read-last-committed or
    /// commit-order conditions (only write anomalies / dangerous
    /// structures can remain).
    #[test]
    fn derived_completion_read_rules_hold(
        txns in txn_sets(),
        seed in any::<u64>(),
    ) {
        let probe = arbitrary_schedule(Arc::clone(&txns), seed);
        let alloc = random_allocation(&txns, seed);
        let derived = derive_schedule(Arc::clone(&txns), probe.order().to_vec(), &alloc)
            .expect("valid interleaving");
        for v in mvisolation::violations(&derived, &alloc) {
            match v {
                mvisolation::Violation::NotReadLastCommitted { .. }
                | mvisolation::Violation::CommitOrderViolated { .. } => {
                    prop_assert!(false, "derived completion broke a forced rule: {v}");
                }
                _ => {}
            }
        }
    }
}
