//! Schedule validation against (mixed) allocations — Definition 2.4.

use crate::allocation::Allocation;
use crate::checks::{
    concurrent_write, dirty_write, read_last_committed_relative_to, respects_commit_order,
};
use crate::dangerous::{dangerous_structures, DangerousStructure};
use crate::level::IsolationLevel;
use mvmodel::{OpAddr, OpId, Schedule, TransactionSet, TxnId};
use std::fmt;

/// A reason a schedule is not allowed under an allocation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Violation {
    /// A write of `txn` does not respect the commit order.
    CommitOrderViolated { txn: TxnId, write: OpAddr },
    /// A read is not read-last-committed relative to its level's anchor.
    NotReadLastCommitted {
        txn: TxnId,
        read: OpAddr,
        level: IsolationLevel,
    },
    /// An RC (or SI) transaction exhibits a dirty write.
    DirtyWrite {
        txn: TxnId,
        earlier: OpAddr,
        later: OpAddr,
    },
    /// An SI/SSI transaction exhibits a concurrent write.
    ConcurrentWrite {
        txn: TxnId,
        earlier: OpAddr,
        later: OpAddr,
    },
    /// A dangerous structure among SSI-allocated transactions.
    Dangerous(DangerousStructure),
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::CommitOrderViolated { txn, write } => {
                write!(f, "{txn}: write {write} does not respect the commit order")
            }
            Violation::NotReadLastCommitted { txn, read, level } => write!(
                f,
                "{txn}: read {read} is not read-last-committed relative to the {level} anchor"
            ),
            Violation::DirtyWrite {
                txn,
                earlier,
                later,
            } => {
                write!(
                    f,
                    "{txn}: dirty write — {later} overwrites uncommitted {earlier}"
                )
            }
            Violation::ConcurrentWrite {
                txn,
                earlier,
                later,
            } => {
                write!(f, "{txn}: concurrent write — {later} overwrites {earlier} of a concurrent transaction")
            }
            Violation::Dangerous(d) => {
                write!(f, "dangerous structure among SSI transactions: {d}")
            }
        }
    }
}

/// All violations of Definition 2.4 by schedule `s` under allocation `a`.
///
/// Per transaction `T`:
/// - `𝒜(T) = RC`: writes respect the commit order, reads are
///   read-last-committed relative to themselves, no dirty writes;
/// - `𝒜(T) ∈ {SI, SSI}`: writes respect the commit order, reads are
///   read-last-committed relative to `first(T)`, no concurrent writes;
///
/// plus, globally: no dangerous structure among SSI-allocated transactions.
///
/// Panics when `a` does not cover every transaction of the schedule.
pub fn violations(s: &Schedule, a: &Allocation) -> Vec<Violation> {
    assert!(
        a.covers(s.txns()),
        "allocation must cover every transaction of the schedule"
    );
    let mut out = Vec::new();
    for t in s.txns().iter() {
        let level = a.level(t.id());
        for (w, _) in t.writes() {
            if !respects_commit_order(s, w) {
                out.push(Violation::CommitOrderViolated {
                    txn: t.id(),
                    write: w,
                });
            }
        }
        for (r, _) in t.reads() {
            let anchor = match level {
                IsolationLevel::ReadCommitted => OpId::Op(r),
                _ => t.first(),
            };
            if !read_last_committed_relative_to(s, r, anchor) {
                out.push(Violation::NotReadLastCommitted {
                    txn: t.id(),
                    read: r,
                    level,
                });
            }
        }
        match level {
            IsolationLevel::ReadCommitted => {
                if let Some(w) = dirty_write(s, t.id()) {
                    out.push(Violation::DirtyWrite {
                        txn: t.id(),
                        earlier: w.earlier,
                        later: w.later,
                    });
                }
            }
            _ => {
                if let Some(w) = concurrent_write(s, t.id()) {
                    out.push(Violation::ConcurrentWrite {
                        txn: t.id(),
                        earlier: w.earlier,
                        later: w.later,
                    });
                }
            }
        }
    }
    for d in dangerous_structures(s, |t| a.level(t) == IsolationLevel::SSI) {
        out.push(Violation::Dangerous(d));
    }
    out
}

/// Whether `s` is allowed under allocation `a` (Definition 2.4).
pub fn allowed_under(s: &Schedule, a: &Allocation) -> bool {
    violations(s, a).is_empty()
}

/// Whether `s` is allowed under the homogeneous allocation at `level`.
pub fn allowed_under_level(s: &Schedule, level: IsolationLevel) -> bool {
    allowed_under(s, &Allocation::uniform(s.txns(), level))
}

/// Whether the single transaction `txn` is allowed under `level` in `s`
/// (the per-transaction part of Definition 2.3, ignoring the global SSI
/// condition).
pub fn txn_allowed_under(s: &Schedule, txn: TxnId, level: IsolationLevel) -> bool {
    let t = s.txns().txn(txn);
    for (w, _) in t.writes() {
        if !respects_commit_order(s, w) {
            return false;
        }
    }
    for (r, _) in t.reads() {
        let anchor = match level {
            IsolationLevel::ReadCommitted => OpId::Op(r),
            _ => t.first(),
        };
        if !read_last_committed_relative_to(s, r, anchor) {
            return false;
        }
    }
    match level {
        IsolationLevel::ReadCommitted => dirty_write(s, txn).is_none(),
        _ => concurrent_write(s, txn).is_none(),
    }
}

/// Enumerates, for each transaction, the set of levels it is individually
/// allowed under in `s` — useful diagnostics for examples and the CLI.
pub fn per_txn_allowed_levels(s: &Schedule) -> Vec<(TxnId, Vec<IsolationLevel>)> {
    s.txns()
        .ids()
        .map(|t| {
            let lvls = IsolationLevel::ALL
                .into_iter()
                .filter(|&l| txn_allowed_under(s, t, l))
                .collect();
            (t, lvls)
        })
        .collect()
}

/// Convenience: asserts coverage and returns the transactions of a set as
/// an allocation-sized vector, used by the robustness crate.
pub fn assert_covers(txns: &TransactionSet, a: &Allocation) {
    assert!(
        a.covers(txns),
        "allocation must cover every transaction of the set"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvmodel::{Schedule, TxnSetBuilder};
    use std::collections::HashMap;
    use std::sync::Arc;

    /// Example 2.6 / Figure 4: two *concurrent* transactions both writing
    /// `v`, T1's write installed first. Figure 4 depicts the overlap with
    /// transaction boxes; we make it explicit by giving T2 a leading read
    /// on another object `u`, so that `first(T2) <_s C1` while `W2[v]`
    /// still follows `C1` (no dirty write).
    fn example_2_6_with_read() -> Schedule {
        let mut b = TxnSetBuilder::new();
        let v = b.object("v");
        let u = b.object("u");
        b.txn(1).write(v).finish();
        b.txn(2).read(u).write(v).finish();
        let txns = Arc::new(b.build().unwrap());
        let w1 = OpAddr {
            txn: TxnId(1),
            idx: 0,
        };
        let r2 = OpAddr {
            txn: TxnId(2),
            idx: 0,
        };
        let w2 = OpAddr {
            txn: TxnId(2),
            idx: 1,
        };
        let order = vec![
            OpId::Op(r2),
            OpId::Op(w1),
            OpId::Commit(TxnId(1)),
            OpId::Op(w2),
            OpId::Commit(TxnId(2)),
        ];
        let mut versions = HashMap::new();
        versions.insert(v, vec![w1, w2]);
        let mut rf = HashMap::new();
        rf.insert(r2, OpId::Init);
        Schedule::new(txns, order, versions, rf).unwrap()
    }

    #[test]
    fn example_2_6_verdicts() {
        let s = example_2_6_with_read();
        // (1) 𝒜₁ = 𝒜_SI: T2 exhibits a concurrent write — not allowed.
        assert!(!allowed_under_level(&s, IsolationLevel::SI));
        // (2) 𝒜₂(T1)=RC, 𝒜₂(T2)=SI: same concurrent write — not allowed.
        let a2 = Allocation::parse("T1=RC T2=SI").unwrap();
        assert!(!allowed_under(&s, &a2));
        let v = violations(&s, &a2);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::ConcurrentWrite { txn: TxnId(2), .. })));
        // (3) 𝒜₃(T1)=SI, 𝒜₃(T2)=RC: allowed — the concurrent write is
        // T2's, and RC permits it; T1 exhibits none.
        let a3 = Allocation::parse("T1=SI T2=RC").unwrap();
        assert!(allowed_under(&s, &a3));
        // All-RC is also fine here (no dirty writes).
        assert!(allowed_under_level(&s, IsolationLevel::RC));
    }

    /// Example 5.2 / Figure 5: op0 W1[t] R2[v] C1 R2[t] C2 where both reads
    /// observe op0 — allowed under 𝒜_SI but not under 𝒜_RC.
    fn example_5_2() -> Schedule {
        let mut b = TxnSetBuilder::new();
        let t = b.object("t");
        let v = b.object("v");
        b.txn(1).write(t).finish();
        b.txn(2).read(v).read(t).finish();
        let txns = Arc::new(b.build().unwrap());
        let w1t = OpAddr {
            txn: TxnId(1),
            idx: 0,
        };
        let r2v = OpAddr {
            txn: TxnId(2),
            idx: 0,
        };
        let r2t = OpAddr {
            txn: TxnId(2),
            idx: 1,
        };
        let order = vec![
            OpId::Op(w1t),
            OpId::Op(r2v),
            OpId::Commit(TxnId(1)),
            OpId::Op(r2t),
            OpId::Commit(TxnId(2)),
        ];
        let mut versions = HashMap::new();
        versions.insert(t, vec![w1t]);
        let mut rf = HashMap::new();
        rf.insert(r2v, OpId::Init);
        rf.insert(r2t, OpId::Init);
        Schedule::new(txns, order, versions, rf).unwrap()
    }

    #[test]
    fn example_5_2_si_allowed_rc_not() {
        let s = example_5_2();
        assert!(allowed_under_level(&s, IsolationLevel::SI));
        assert!(!allowed_under_level(&s, IsolationLevel::RC));
        let a = Allocation::uniform_rc(s.txns());
        let v = violations(&s, &a);
        // R2[t] is not read-last-committed relative to itself.
        assert!(v.iter().any(|x| matches!(
            x,
            Violation::NotReadLastCommitted { txn: TxnId(2), read, .. }
                if read.idx == 1
        )));
    }

    #[test]
    fn per_txn_levels_on_example_5_2() {
        let s = example_5_2();
        let lvls = per_txn_allowed_levels(&s);
        let t2 = lvls.iter().find(|(t, _)| *t == TxnId(2)).unwrap();
        assert!(!t2.1.contains(&IsolationLevel::RC));
        assert!(t2.1.contains(&IsolationLevel::SI));
        assert!(t2.1.contains(&IsolationLevel::SSI));
        let t1 = lvls.iter().find(|(t, _)| *t == TxnId(1)).unwrap();
        assert_eq!(t1.1.len(), 3);
    }

    #[test]
    #[should_panic(expected = "allocation must cover")]
    fn partial_allocation_panics() {
        let s = example_5_2();
        let a = Allocation::parse("T1=RC").unwrap();
        let _ = violations(&s, &a);
    }

    #[test]
    fn txn_allowed_under_matches_validator() {
        let s = example_5_2();
        assert!(txn_allowed_under(&s, TxnId(2), IsolationLevel::SI));
        assert!(!txn_allowed_under(&s, TxnId(2), IsolationLevel::RC));
        assert!(txn_allowed_under(&s, TxnId(1), IsolationLevel::RC));
    }
}
