//! Multiversion isolation-level semantics and mixed allocations.
//!
//! Implements §2.3 of *Allocating Isolation Levels to Transactions in a
//! Multiversion Setting* (Vandevoort, Ketsman & Neven, PODS 2023):
//!
//! - [`IsolationLevel`]: read committed (RC), snapshot isolation (SI) and
//!   serializable snapshot isolation (SSI), totally ordered by preference
//!   `RC < SI < SSI` (lower is cheaper, §4).
//! - [`Allocation`]: a mapping from transactions to isolation levels — the
//!   paper's *mixed* (heterogeneous) allocation.
//! - [`checks`]: the building-block predicates of Definition 2.3 —
//!   *respects the commit order*, *read-last-committed relative to an
//!   operation*, *dirty writes* and *concurrent writes*.
//! - [`dangerous`]: SSI dangerous structures (Cahill et al., extended with
//!   the commit-order refinement the paper adopts).
//! - [`validator`]: `allowed under 𝒜` for a schedule (Definition 2.4),
//!   with structured [`validator::Violation`] reports.
//! - [`mod@derive`]: builds the *unique* version order and version function
//!   forced by an allocation for a given operation interleaving — the
//!   bijection DESIGN.md §4 relies on.

pub mod allocation;
pub mod checks;
pub mod dangerous;
pub mod derive;
pub mod level;
pub mod phenomena;
pub mod validator;

pub use allocation::{Allocation, LevelChange};
pub use dangerous::{dangerous_structures, DangerousStructure};
pub use derive::derive_schedule;
pub use level::IsolationLevel;
pub use phenomena::{all_anomalies, Anomaly};
pub use validator::{allowed_under, allowed_under_level, violations, Violation};
