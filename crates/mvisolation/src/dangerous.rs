//! SSI dangerous structures (§2.3, after Cahill et al. \[14\], with the
//! commit-order refinement from the journal version \[15\] that the paper —
//! and Postgres — adopt).

use mvmodel::dependency::{dependencies, DepKind};
use mvmodel::{Schedule, TxnId};

/// A dangerous structure `T₁ →rw T₂ →rw T₃` in a schedule: two consecutive
/// rw-antidependencies between pairwise-concurrent transactions where `T₃`
/// commits first (`C₃ ≤_s C₁` and `C₃ <_s C₂`). `T₁` and `T₃` may
/// coincide.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DangerousStructure {
    pub t1: TxnId,
    pub t2: TxnId,
    pub t3: TxnId,
}

impl std::fmt::Display for DangerousStructure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} →rw {} →rw {}", self.t1, self.t2, self.t3)
    }
}

/// Finds all dangerous structures in `s` whose three transactions all
/// satisfy `filter` (Definition 2.4 applies it with "allocated SSI").
///
/// Pass `|_| true` to enumerate every dangerous structure.
pub fn dangerous_structures(
    s: &Schedule,
    filter: impl Fn(TxnId) -> bool,
) -> Vec<DangerousStructure> {
    // Transaction-level rw-antidependency pairs.
    let mut rw_pairs: Vec<(TxnId, TxnId)> = dependencies(s)
        .into_iter()
        .filter(|d| d.kind == DepKind::RwAnti)
        .map(|d| (d.from.txn, d.to.txn))
        .collect();
    rw_pairs.sort_unstable();
    rw_pairs.dedup();

    let mut out = Vec::new();
    for &(t1, t2) in &rw_pairs {
        if !filter(t1) || !filter(t2) || !s.concurrent(t1, t2) {
            continue;
        }
        for &(u2, t3) in &rw_pairs {
            if u2 != t2 || !filter(t3) || !s.concurrent(t2, t3) {
                continue;
            }
            let (c1, c2, c3) = (s.commit_pos(t1), s.commit_pos(t2), s.commit_pos(t3));
            // C₃ ≤_s C₁ (equality only when T₁ = T₃) and C₃ <_s C₂.
            if c3 <= c1 && c3 < c2 {
                out.push(DangerousStructure { t1, t2, t3 });
            }
        }
    }
    out
}

/// Whether `s` contains any dangerous structure over transactions
/// satisfying `filter`.
pub fn has_dangerous_structure(s: &Schedule, filter: impl Fn(TxnId) -> bool) -> bool {
    !dangerous_structures(s, filter).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvmodel::{Object, OpAddr, OpId, Schedule, TxnSetBuilder};
    use std::collections::HashMap;
    use std::sync::Arc;

    /// The classic write-skew pair under SI:
    /// R1[x] R2[y] W1[y] W2[x] C2 C1.
    /// T1 →rw T2 (R1[x] read op0, T2 writes x) and T2 →rw T1; T2 commits
    /// first, so T2 plays T₃ in the structure T1 → T2?? — with two
    /// transactions the structure is T2 →rw T1 →rw T2 (T₁ = T₃ = T2).
    fn write_skew() -> Schedule {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).read(y).write(x).finish();
        let txns = Arc::new(b.build().unwrap());
        let r1x = OpAddr {
            txn: TxnId(1),
            idx: 0,
        };
        let w1y = OpAddr {
            txn: TxnId(1),
            idx: 1,
        };
        let r2y = OpAddr {
            txn: TxnId(2),
            idx: 0,
        };
        let w2x = OpAddr {
            txn: TxnId(2),
            idx: 1,
        };
        let order = vec![
            OpId::Op(r1x),
            OpId::Op(r2y),
            OpId::Op(w1y),
            OpId::Op(w2x),
            OpId::Commit(TxnId(2)),
            OpId::Commit(TxnId(1)),
        ];
        let mut versions = HashMap::new();
        versions.insert(Object(0), vec![w2x]);
        versions.insert(Object(1), vec![w1y]);
        let mut rf = HashMap::new();
        rf.insert(r1x, OpId::Init);
        rf.insert(r2y, OpId::Init);
        Schedule::new(txns, order, versions, rf).unwrap()
    }

    #[test]
    fn write_skew_has_dangerous_structure() {
        let s = write_skew();
        let all = dangerous_structures(&s, |_| true);
        // T2 commits first: the pivot structure is T2 →rw T1 →rw T2.
        assert!(all.contains(&DangerousStructure {
            t1: TxnId(2),
            t2: TxnId(1),
            t3: TxnId(2)
        }));
        // T1 →rw T2 →rw T1 fails the commit condition (C₃=C1 is last).
        assert!(!all.contains(&DangerousStructure {
            t1: TxnId(1),
            t2: TxnId(2),
            t3: TxnId(1)
        }));
        assert!(has_dangerous_structure(&s, |_| true));
    }

    #[test]
    fn filter_excludes_structures() {
        let s = write_skew();
        // If T1 is not SSI-allocated, no structure remains among SSI txns.
        assert!(!has_dangerous_structure(&s, |t| t != TxnId(1)));
        assert!(!has_dangerous_structure(&s, |t| t != TxnId(2)));
        assert!(!has_dangerous_structure(&s, |_| false));
    }

    /// Serial executions have concurrent-transaction requirements fail.
    #[test]
    fn serial_execution_has_no_dangerous_structure() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).read(y).write(x).finish();
        let txns = Arc::new(b.build().unwrap());
        let s = Schedule::single_version_serial(txns, &[TxnId(1), TxnId(2)]).unwrap();
        assert!(!has_dangerous_structure(&s, |_| true));
    }

    /// A three-transaction dangerous structure where T₃ ≠ T₁: the
    /// textbook SSI pivot. T1 →rw T2 →rw T3, T3 commits first.
    #[test]
    fn three_txn_pivot() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).read(x).finish(); // T1 reads x
        b.txn(2).write(x).read(y).finish(); // T2 overwrites x, reads y
        b.txn(3).write(y).finish(); // T3 overwrites y
        let txns = Arc::new(b.build().unwrap());
        let r1x = OpAddr {
            txn: TxnId(1),
            idx: 0,
        };
        let w2x = OpAddr {
            txn: TxnId(2),
            idx: 0,
        };
        let r2y = OpAddr {
            txn: TxnId(2),
            idx: 1,
        };
        let w3y = OpAddr {
            txn: TxnId(3),
            idx: 0,
        };
        // R1[x] W2[x] R2[y] W3[y] C3 C1 C2 — all pairwise concurrent,
        // T3 commits first.
        let order = vec![
            OpId::Op(r1x),
            OpId::Op(w2x),
            OpId::Op(r2y),
            OpId::Op(w3y),
            OpId::Commit(TxnId(3)),
            OpId::Commit(TxnId(1)),
            OpId::Commit(TxnId(2)),
        ];
        let mut versions = HashMap::new();
        versions.insert(x, vec![w2x]);
        versions.insert(y, vec![w3y]);
        let mut rf = HashMap::new();
        rf.insert(r1x, OpId::Init);
        rf.insert(r2y, OpId::Init);
        let s = Schedule::new(txns, order, versions, rf).unwrap();
        let all = dangerous_structures(&s, |_| true);
        assert!(all.contains(&DangerousStructure {
            t1: TxnId(1),
            t2: TxnId(2),
            t3: TxnId(3)
        }));
        // Dropping any participant from the filter removes it.
        for skip in [1u32, 2, 3] {
            assert!(dangerous_structures(&s, |t| t != TxnId(skip))
                .iter()
                .all(|d| d.t1 != TxnId(skip) && d.t2 != TxnId(skip) && d.t3 != TxnId(skip)));
        }
    }

    /// The same three transactions but with T3 committing last: Postgres'
    /// commit-order refinement says this is *not* dangerous.
    #[test]
    fn pivot_without_first_committer_is_safe() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).read(x).finish();
        b.txn(2).write(x).read(y).finish();
        b.txn(3).write(y).finish();
        let txns = Arc::new(b.build().unwrap());
        let r1x = OpAddr {
            txn: TxnId(1),
            idx: 0,
        };
        let w2x = OpAddr {
            txn: TxnId(2),
            idx: 0,
        };
        let r2y = OpAddr {
            txn: TxnId(2),
            idx: 1,
        };
        let w3y = OpAddr {
            txn: TxnId(3),
            idx: 0,
        };
        let order = vec![
            OpId::Op(r1x),
            OpId::Op(w2x),
            OpId::Op(r2y),
            OpId::Op(w3y),
            OpId::Commit(TxnId(1)),
            OpId::Commit(TxnId(2)),
            OpId::Commit(TxnId(3)),
        ];
        let mut versions = HashMap::new();
        versions.insert(x, vec![w2x]);
        versions.insert(y, vec![w3y]);
        let mut rf = HashMap::new();
        rf.insert(r1x, OpId::Init);
        rf.insert(r2y, OpId::Init);
        let s = Schedule::new(txns, order, versions, rf).unwrap();
        assert!(!has_dangerous_structure(&s, |_| true));
    }
}
