//! Mixed allocations of isolation levels to transactions.

use crate::level::{IsolationLevel, ParseLevelError};
use mvmodel::{TransactionSet, TxnId};
use std::collections::BTreeMap;
use std::fmt;

/// An `ℐ`-allocation `𝒜`: a total mapping from the transactions of a set
/// onto isolation levels (§2.3).
///
/// Allocations are compared pointwise: `𝒜 ≤ 𝒜'` iff `𝒜(T) ≤ 𝒜'(T)` for
/// every `T` ([`Allocation::le`]); `𝒜 < 𝒜'` additionally requires strict
/// inequality somewhere ([`Allocation::lt`]). The paper's update notation
/// `𝒜[T ↦ I]` is [`Allocation::with`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Allocation {
    levels: BTreeMap<TxnId, IsolationLevel>,
}

impl Allocation {
    /// Builds an allocation from explicit pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (TxnId, IsolationLevel)>) -> Self {
        Allocation {
            levels: pairs.into_iter().collect(),
        }
    }

    /// The homogeneous allocation mapping every transaction of `txns` to
    /// `level` (the paper's `𝒜_RC`, `𝒜_SI`, `𝒜_SSI`).
    pub fn uniform(txns: &TransactionSet, level: IsolationLevel) -> Self {
        Allocation {
            levels: txns.ids().map(|t| (t, level)).collect(),
        }
    }

    /// `𝒜_RC`.
    pub fn uniform_rc(txns: &TransactionSet) -> Self {
        Self::uniform(txns, IsolationLevel::RC)
    }

    /// `𝒜_SI`.
    pub fn uniform_si(txns: &TransactionSet) -> Self {
        Self::uniform(txns, IsolationLevel::SI)
    }

    /// `𝒜_SSI`.
    pub fn uniform_ssi(txns: &TransactionSet) -> Self {
        Self::uniform(txns, IsolationLevel::SSI)
    }

    /// `𝒜(T)`. Panics when `T` is not in the allocation's domain.
    pub fn level(&self, txn: TxnId) -> IsolationLevel {
        self.levels[&txn]
    }

    /// `𝒜(T)`, or `None` when `T` is outside the domain.
    pub fn get(&self, txn: TxnId) -> Option<IsolationLevel> {
        self.levels.get(&txn).copied()
    }

    /// The paper's `𝒜[T ↦ I]`: a copy with `T` reassigned to `level`.
    pub fn with(&self, txn: TxnId, level: IsolationLevel) -> Self {
        let mut out = self.clone();
        out.levels.insert(txn, level);
        out
    }

    /// In-place variant of [`Allocation::with`].
    pub fn set(&mut self, txn: TxnId, level: IsolationLevel) {
        self.levels.insert(txn, level);
    }

    /// Removes a transaction from the domain, returning its old level.
    pub fn remove(&mut self, txn: TxnId) -> Option<IsolationLevel> {
        self.levels.remove(&txn)
    }

    /// The pointwise difference `self → newer`: every transaction whose
    /// level changed, entered the domain (`before == None`) or left it
    /// (`after == None`), in ascending id order. An empty result means
    /// the allocations are identical.
    pub fn diff(&self, newer: &Allocation) -> Vec<LevelChange> {
        let mut out = Vec::new();
        for (txn, level) in self.iter() {
            let after = newer.get(txn);
            if after != Some(level) {
                out.push(LevelChange {
                    txn,
                    before: Some(level),
                    after,
                });
            }
        }
        for (txn, level) in newer.iter() {
            if self.get(txn).is_none() {
                out.push(LevelChange {
                    txn,
                    before: None,
                    after: Some(level),
                });
            }
        }
        out.sort_by_key(|c| c.txn);
        out
    }

    /// Whether the allocation's domain covers every transaction of `txns`.
    pub fn covers(&self, txns: &TransactionSet) -> bool {
        txns.ids().all(|t| self.levels.contains_key(&t))
    }

    /// `𝒜 ≤ 𝒜'`: pointwise comparison over the union of both domains
    /// (missing entries compare as incomparable, yielding `false`).
    pub fn le(&self, other: &Allocation) -> bool {
        if self.levels.len() != other.levels.len() {
            return false;
        }
        self.levels
            .iter()
            .all(|(t, &lvl)| other.get(*t).is_some_and(|o| lvl <= o))
    }

    /// `𝒜 < 𝒜'`: `𝒜 ≤ 𝒜'` and strictly lower somewhere.
    pub fn lt(&self, other: &Allocation) -> bool {
        self.le(other) && self != other
    }

    /// Iterates `(transaction, level)` pairs in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (TxnId, IsolationLevel)> + '_ {
        self.levels.iter().map(|(&t, &l)| (t, l))
    }

    /// Number of transactions in the domain.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Transactions allocated exactly `level`.
    pub fn txns_at(&self, level: IsolationLevel) -> Vec<TxnId> {
        self.levels
            .iter()
            .filter_map(|(&t, &l)| (l == level).then_some(t))
            .collect()
    }

    /// `(#RC, #SI, #SSI)` — the composition statistic used by the
    /// evaluation harness.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for &l in self.levels.values() {
            match l {
                IsolationLevel::ReadCommitted => c.0 += 1,
                IsolationLevel::SnapshotIsolation => c.1 += 1,
                IsolationLevel::SerializableSnapshotIsolation => c.2 += 1,
            }
        }
        c
    }

    /// Parses `T1=RC T2=SI T3=SSI` (whitespace- or comma-separated; the
    /// leading `T` is optional).
    pub fn parse(input: &str) -> Result<Self, ParseLevelError> {
        let mut levels = BTreeMap::new();
        for tok in input
            .split([',', ' ', '\n', '\t'])
            .filter(|t| !t.is_empty())
        {
            let (t, l) = tok
                .split_once('=')
                .ok_or_else(|| ParseLevelError(format!("expected T<id>=<level>, got `{tok}`")))?;
            let digits = t.trim().trim_start_matches(['T', 't']);
            let id: u32 = digits
                .parse()
                .map_err(|_| ParseLevelError(format!("invalid transaction id `{t}`")))?;
            levels.insert(TxnId(id), l.trim().parse()?);
        }
        Ok(Allocation { levels })
    }
}

/// One entry of [`Allocation::diff`]: a transaction whose level differs
/// between two allocations. `before`/`after` are `None` when the
/// transaction is absent from the respective domain (registered or
/// retired between the two).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LevelChange {
    pub txn: TxnId,
    pub before: Option<IsolationLevel>,
    pub after: Option<IsolationLevel>,
}

impl fmt::Display for LevelChange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let show = |l: Option<IsolationLevel>| match l {
            Some(l) => l.to_string(),
            None => "∅".to_string(),
        };
        write!(
            f,
            "{}: {} → {}",
            self.txn,
            show(self.before),
            show(self.after)
        )
    }
}

impl fmt::Display for Allocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (t, l) in self.iter() {
            if !first {
                f.write_str(" ")?;
            }
            write!(f, "{t}={l}")?;
            first = false;
        }
        Ok(())
    }
}

impl FromIterator<(TxnId, IsolationLevel)> for Allocation {
    fn from_iter<I: IntoIterator<Item = (TxnId, IsolationLevel)>>(iter: I) -> Self {
        Allocation::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvmodel::TxnSetBuilder;

    fn set() -> TransactionSet {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        b.txn(1).read(x).finish();
        b.txn(2).write(x).finish();
        b.build().unwrap()
    }

    #[test]
    fn uniform_allocations() {
        let txns = set();
        let rc = Allocation::uniform_rc(&txns);
        assert_eq!(rc.level(TxnId(1)), IsolationLevel::RC);
        assert_eq!(rc.level(TxnId(2)), IsolationLevel::RC);
        assert!(rc.covers(&txns));
        assert_eq!(rc.counts(), (2, 0, 0));
        assert_eq!(Allocation::uniform_si(&txns).counts(), (0, 2, 0));
        assert_eq!(Allocation::uniform_ssi(&txns).counts(), (0, 0, 2));
    }

    #[test]
    fn pointwise_order() {
        let txns = set();
        let rc = Allocation::uniform_rc(&txns);
        let si = Allocation::uniform_si(&txns);
        let mixed = rc.with(TxnId(1), IsolationLevel::SSI);
        assert!(rc.le(&si));
        assert!(rc.lt(&si));
        assert!(!si.le(&rc));
        assert!(rc.le(&rc));
        assert!(!rc.lt(&rc));
        // mixed = {T1: SSI, T2: RC} is incomparable with si.
        assert!(!mixed.le(&si));
        assert!(!si.le(&mixed));
    }

    #[test]
    fn update_notation() {
        let txns = set();
        let a = Allocation::uniform_si(&txns);
        let b = a.with(TxnId(2), IsolationLevel::RC);
        assert_eq!(
            a.level(TxnId(2)),
            IsolationLevel::SI,
            "with() must not mutate"
        );
        assert_eq!(b.level(TxnId(2)), IsolationLevel::RC);
        assert!(b.lt(&a));
        let mut c = a.clone();
        c.set(TxnId(1), IsolationLevel::SSI);
        assert!(a.lt(&c));
    }

    #[test]
    fn txns_at_and_iter() {
        let txns = set();
        let a = Allocation::uniform_si(&txns).with(TxnId(1), IsolationLevel::RC);
        assert_eq!(a.txns_at(IsolationLevel::RC), vec![TxnId(1)]);
        assert_eq!(a.txns_at(IsolationLevel::SI), vec![TxnId(2)]);
        assert!(a.txns_at(IsolationLevel::SSI).is_empty());
        let pairs: Vec<_> = a.iter().collect();
        assert_eq!(pairs.len(), 2);
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
    }

    #[test]
    fn parse_and_display_roundtrip() {
        let a = Allocation::parse("T1=RC, T2=SI T3=SSI").unwrap();
        assert_eq!(a.level(TxnId(1)), IsolationLevel::RC);
        assert_eq!(a.level(TxnId(2)), IsolationLevel::SI);
        assert_eq!(a.level(TxnId(3)), IsolationLevel::SSI);
        let shown = a.to_string();
        assert_eq!(shown, "T1=RC T2=SI T3=SSI");
        assert_eq!(Allocation::parse(&shown).unwrap(), a);
        assert!(Allocation::parse("T1").is_err());
        assert!(Allocation::parse("Tx=RC").is_err());
        assert!(Allocation::parse("T1=XX").is_err());
        // Bare ids allowed.
        assert_eq!(
            Allocation::parse("5=si").unwrap().level(TxnId(5)),
            IsolationLevel::SI
        );
    }

    #[test]
    fn diff_reports_changed_entered_left() {
        let old = Allocation::parse("T1=RC T2=SI T3=SSI").unwrap();
        let new = Allocation::parse("T1=RC T2=SSI T4=RC").unwrap();
        let d = old.diff(&new);
        assert_eq!(d.len(), 3);
        assert_eq!(
            d[0],
            LevelChange {
                txn: TxnId(2),
                before: Some(IsolationLevel::SI),
                after: Some(IsolationLevel::SSI),
            }
        );
        assert_eq!(
            d[1],
            LevelChange {
                txn: TxnId(3),
                before: Some(IsolationLevel::SSI),
                after: None,
            }
        );
        assert_eq!(
            d[2],
            LevelChange {
                txn: TxnId(4),
                before: None,
                after: Some(IsolationLevel::RC),
            }
        );
        assert!(old.diff(&old).is_empty());
        assert!(d[0].to_string().contains("T2"));
        assert!(d[1].to_string().contains('∅'));
        // Applying the diff to `old` reproduces `new`.
        let mut patched = old.clone();
        for c in &d {
            match c.after {
                Some(l) => patched.set(c.txn, l),
                None => {
                    patched.remove(c.txn);
                }
            }
        }
        assert_eq!(patched, new);
    }

    #[test]
    fn incomparable_when_domains_differ() {
        let a = Allocation::parse("T1=RC").unwrap();
        let b = Allocation::parse("T1=RC T2=RC").unwrap();
        assert!(!a.le(&b));
        assert!(!b.le(&a));
        assert_eq!(a.get(TxnId(2)), None);
    }
}
