//! Deriving the forced version order and version function from an
//! operation interleaving and an allocation.
//!
//! Every isolation level in `{RC, SI, SSI}` requires writes to respect the
//! commit order and reads to be read-last-committed relative to their
//! anchor (the read itself for RC, `first(T)` for SI/SSI). Consequently,
//! for a fixed operation order `≤_s` and a fixed allocation:
//!
//! - `≪_s` restricted to each object must order writes by their
//!   transactions' commit positions (with at most one write per object per
//!   transaction, this determines `≪_s` completely); and
//! - `v_s(read)` must be the `≪`-maximal write committed before the
//!   anchor, or `op₀` when no such write exists (the two
//!   read-last-committed conditions admit exactly one choice).
//!
//! The schedules allowed under an allocation are therefore in bijection
//! with the allowed interleavings. [`derive_schedule`] computes this unique
//! completion; the caller still has to check [`crate::allowed_under`] —
//! dirty/concurrent writes and dangerous structures constrain the
//! *interleaving*, not the completion.

use crate::allocation::Allocation;
use crate::level::IsolationLevel;
use mvmodel::{Object, OpAddr, OpId, Schedule, ScheduleError, TransactionSet};
use std::collections::HashMap;
use std::sync::Arc;

/// Completes an operation interleaving to a full multiversion schedule with
/// the commit-order version order and anchored read-last-committed version
/// function forced by `alloc` (see module docs).
///
/// `order` must list every operation of every transaction exactly once;
/// errors from schedule validation are propagated.
pub fn derive_schedule(
    txns: Arc<TransactionSet>,
    order: Vec<OpId>,
    alloc: &Allocation,
) -> Result<Schedule, ScheduleError> {
    let pos: HashMap<OpId, u32> = order
        .iter()
        .enumerate()
        .map(|(i, &op)| (op, i as u32))
        .collect();
    let commit_pos = |t| pos.get(&OpId::Commit(t)).copied().unwrap_or(u32::MAX);

    // Version order: per object, writes sorted by their writer's commit
    // position.
    let mut versions: HashMap<Object, Vec<OpAddr>> = HashMap::new();
    for object in txns.objects() {
        let mut writers = txns.writers_of(object);
        if writers.is_empty() {
            continue;
        }
        writers.sort_by_key(|w| commit_pos(w.txn));
        versions.insert(object, writers);
    }

    // Version function: ≪-maximal write committed before the anchor.
    let mut reads_from = HashMap::new();
    for t in txns.iter() {
        let level = alloc.get(t.id()).unwrap_or(IsolationLevel::SSI);
        for (read, object) in t.reads() {
            let anchor = match level {
                IsolationLevel::ReadCommitted => OpId::Op(read),
                _ => t.first(),
            };
            let anchor_pos = pos[&anchor];
            let observed = versions
                .get(&object)
                .into_iter()
                .flatten()
                .filter(|w| commit_pos(w.txn) < anchor_pos)
                .max_by_key(|w| commit_pos(w.txn))
                .map(|&w| OpId::Op(w))
                .unwrap_or(OpId::Init);
            reads_from.insert(read, observed);
        }
    }
    Schedule::new(txns, order, versions, reads_from)
}

/// Enumerates all interleavings of the transactions' operations (each
/// transaction's program order preserved) and yields them to `f`, stopping
/// early when `f` returns `false`.
///
/// The number of interleavings is the multinomial coefficient of the
/// transaction lengths — use only for small workloads (the brute-force
/// oracle's domain).
pub fn for_each_interleaving(txns: &TransactionSet, mut f: impl FnMut(&[OpId]) -> bool) {
    let seqs: Vec<Vec<OpId>> = txns.iter().map(|t| t.op_ids().collect()).collect();
    let total: usize = seqs.iter().map(|s| s.len()).sum();
    let mut cursor = vec![0usize; seqs.len()];
    let mut current: Vec<OpId> = Vec::with_capacity(total);
    let mut go = true;
    rec(&seqs, &mut cursor, &mut current, total, &mut f, &mut go);

    fn rec(
        seqs: &[Vec<OpId>],
        cursor: &mut [usize],
        current: &mut Vec<OpId>,
        total: usize,
        f: &mut impl FnMut(&[OpId]) -> bool,
        go: &mut bool,
    ) {
        if !*go {
            return;
        }
        if current.len() == total {
            *go = f(current);
            return;
        }
        for i in 0..seqs.len() {
            if cursor[i] < seqs[i].len() {
                let op = seqs[i][cursor[i]];
                cursor[i] += 1;
                current.push(op);
                rec(seqs, cursor, current, total, f, go);
                current.pop();
                cursor[i] -= 1;
                if !*go {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validator::{allowed_under, violations};
    use mvmodel::{TxnId, TxnSetBuilder};

    fn rw_pair() -> Arc<TransactionSet> {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).write(x).read(y).finish();
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn derives_commit_order_versions() {
        let txns = rw_pair();
        // W2[x] C2 R1[x] W1[y] C1 R2[y]? — no: program order. Use
        // interleaving R1[x] W2[x] R2[y] C2 W1[y] C1.
        let order = vec![
            OpId::op(TxnId(1), 0),
            OpId::op(TxnId(2), 0),
            OpId::op(TxnId(2), 1),
            OpId::Commit(TxnId(2)),
            OpId::op(TxnId(1), 1),
            OpId::Commit(TxnId(1)),
        ];
        let a = Allocation::parse("T1=RC T2=RC").unwrap();
        let s = derive_schedule(Arc::clone(&txns), order, &a).unwrap();
        // R1[x] precedes C2, so it reads op0 under RC.
        assert_eq!(
            s.version_fn(OpAddr {
                txn: TxnId(1),
                idx: 0
            }),
            OpId::Init
        );
        // R2[y] precedes W1[y], reads op0.
        assert_eq!(
            s.version_fn(OpAddr {
                txn: TxnId(2),
                idx: 1
            }),
            OpId::Init
        );
        assert!(allowed_under(&s, &a));
    }

    #[test]
    fn rc_and_si_anchors_differ() {
        let txns = rw_pair();
        // W2[x] C2 before R1[x]: RC sees W2[x]; SI (anchored at
        // first(T1) = R1[x]… T1 starts *at* its read) — craft T1 with the
        // read second so the anchors differ.
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).read(y).read(x).finish();
        b.txn(2).write(x).finish();
        let txns2 = Arc::new(b.build().unwrap());
        let order = vec![
            OpId::op(TxnId(1), 0),
            OpId::op(TxnId(2), 0),
            OpId::Commit(TxnId(2)),
            OpId::op(TxnId(1), 1),
            OpId::Commit(TxnId(1)),
        ];
        let rc = Allocation::parse("T1=RC T2=RC").unwrap();
        let s_rc = derive_schedule(Arc::clone(&txns2), order.clone(), &rc).unwrap();
        // RC anchor = the read itself: sees T2's committed write.
        assert_eq!(
            s_rc.version_fn(OpAddr {
                txn: TxnId(1),
                idx: 1
            }),
            OpId::op(TxnId(2), 0)
        );
        let si = Allocation::parse("T1=SI T2=SI").unwrap();
        let s_si = derive_schedule(txns2, order, &si).unwrap();
        // SI anchor = first(T1) = R1[y], before C2: sees op0.
        assert_eq!(
            s_si.version_fn(OpAddr {
                txn: TxnId(1),
                idx: 1
            }),
            OpId::Init
        );
        assert!(allowed_under(&s_si, &si));
        let _ = txns;
    }

    #[test]
    fn derived_schedules_have_rlc_reads_by_construction() {
        // Over every interleaving of the pair, the derived schedule never
        // reports a read-last-committed or commit-order violation; only
        // write anomalies and dangerous structures may remain.
        let txns = rw_pair();
        let a = Allocation::parse("T1=SI T2=RC").unwrap();
        let mut count = 0usize;
        for_each_interleaving(&txns, |order| {
            count += 1;
            let s = derive_schedule(Arc::clone(&txns), order.to_vec(), &a).unwrap();
            for v in violations(&s, &a) {
                match v {
                    crate::Violation::NotReadLastCommitted { .. }
                    | crate::Violation::CommitOrderViolated { .. } => {
                        panic!("derived completion must satisfy RLC and commit order: {v}")
                    }
                    _ => {}
                }
            }
            true
        });
        // C(6,3) = 20 interleavings of two 3-op sequences.
        assert_eq!(count, 20);
    }

    #[test]
    fn interleaving_enumeration_counts() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        b.txn(1).read(x).finish();
        b.txn(2).write(x).finish();
        let txns = b.build().unwrap();
        let mut n = 0;
        for_each_interleaving(&txns, |_| {
            n += 1;
            true
        });
        // Two 2-op sequences: C(4,2) = 6.
        assert_eq!(n, 6);
    }

    #[test]
    fn interleaving_early_stop() {
        let txns = rw_pair();
        let mut n = 0;
        for_each_interleaving(&txns, |_| {
            n += 1;
            n < 5
        });
        assert_eq!(n, 5);
    }

    #[test]
    fn interleavings_preserve_program_order() {
        let txns = rw_pair();
        for_each_interleaving(&txns, |order| {
            let mut last: HashMap<TxnId, i64> = HashMap::new();
            for (i, op) in order.iter().enumerate() {
                let t = op.txn().unwrap();
                let prev = last.insert(t, i as i64).unwrap_or(-1);
                assert!(prev < i as i64);
            }
            true
        });
    }
}
