//! Named anomaly patterns (the classic "phenomena" of the isolation
//! literature), detected structurally on multiversion schedules.
//!
//! Robustness asks whether *any* allowed schedule is non-serializable;
//! these detectors answer the complementary diagnostic question — *what
//! kind* of anomaly a concrete schedule exhibits. They are used by the
//! CLI and examples to label counterexamples, and tested against the
//! canonical examples of the literature (Berenson et al. SIGMOD'95;
//! Fekete et al.'s read-only anomaly).

use mvmodel::dependency::{dependencies, DepKind};
use mvmodel::{OpAddr, OpId, Schedule, TxnId};

/// A named anomaly instance found in a schedule.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Anomaly {
    /// P4: two transactions read the same version of an object and both
    /// overwrite it — one update is lost.
    LostUpdate {
        object_reader_writer: (TxnId, TxnId),
        object: mvmodel::Object,
    },
    /// A5A: a transaction reads two different committed versions'
    /// snapshots inconsistently — it observes object `x` before some
    /// transaction `u` and object `y` after `u` (read skew / inconsistent
    /// read).
    ReadSkew { reader: TxnId, writer: TxnId },
    /// A5B: two concurrent transactions read overlapping data and write
    /// disjoint parts of it (the SI anomaly).
    WriteSkew { t1: TxnId, t2: TxnId },
    /// Fuzzy read (P2 in multiversion form): a transaction's two reads of
    /// the same object observe different versions.
    FuzzyRead {
        reader: TxnId,
        object: mvmodel::Object,
    },
}

impl std::fmt::Display for Anomaly {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Anomaly::LostUpdate {
                object_reader_writer: (a, b),
                object,
            } => {
                write!(f, "lost update on {object} between {a} and {b}")
            }
            Anomaly::ReadSkew { reader, writer } => {
                write!(f, "read skew: {reader} straddles {writer}'s commit")
            }
            Anomaly::WriteSkew { t1, t2 } => write!(f, "write skew between {t1} and {t2}"),
            Anomaly::FuzzyRead { reader, object } => {
                write!(f, "fuzzy read of {object} in {reader}")
            }
        }
    }
}

/// Detects lost updates: concurrent `T_a`, `T_b` that both read the same
/// version of an object and both write it (so one's effect is based on a
/// stale read).
pub fn lost_updates(s: &Schedule) -> Vec<Anomaly> {
    let txns = s.txns();
    let mut out = Vec::new();
    for object in txns.objects() {
        let writers = txns.writers_of(object);
        for (i, &wa) in writers.iter().enumerate() {
            for &wb in &writers[i + 1..] {
                let (ta, tb) = (wa.txn, wb.txn);
                if !s.concurrent(ta, tb) {
                    continue;
                }
                let ra = txns.txn(ta).read_of(object).map(|x| OpAddr::new(ta, x));
                let rb = txns.txn(tb).read_of(object).map(|x| OpAddr::new(tb, x));
                if let (Some(ra), Some(rb)) = (ra, rb) {
                    if s.version_fn(ra) == s.version_fn(rb) {
                        out.push(Anomaly::LostUpdate {
                            object_reader_writer: (ta, tb),
                            object,
                        });
                    }
                }
            }
        }
    }
    out
}

/// Detects read skew: a reader `T_r` with reads `R_r[x]`, `R_r[y]` such
/// that some transaction `T_u` wrote both objects, and `T_r` observed
/// `T_u`'s version (or later) on one but an earlier version on the other
/// — a non-atomic view of `T_u`.
pub fn read_skews(s: &Schedule) -> Vec<Anomaly> {
    let txns = s.txns();
    let mut out = Vec::new();
    for reader in txns.iter() {
        let reads: Vec<(OpAddr, mvmodel::Object)> = reader.reads().collect();
        for writer in txns.iter() {
            if writer.id() == reader.id() {
                continue;
            }
            let mut saw_at_least = false;
            let mut saw_before = false;
            for &(raddr, object) in &reads {
                let Some(widx) = writer.write_of(object) else {
                    continue;
                };
                let wid = OpId::Op(OpAddr::new(writer.id(), widx));
                let v = s.version_fn(raddr);
                if v == wid || s.vless(wid, v) {
                    saw_at_least = true;
                } else {
                    saw_before = true;
                }
            }
            if saw_at_least && saw_before {
                out.push(Anomaly::ReadSkew {
                    reader: reader.id(),
                    writer: writer.id(),
                });
            }
        }
    }
    out
}

/// Detects write skew: concurrent `T_1`, `T_2` with rw-antidependencies
/// in both directions and no ww conflict between them.
pub fn write_skews(s: &Schedule) -> Vec<Anomaly> {
    let deps = dependencies(s);
    let txns = s.txns();
    let mut out = Vec::new();
    let ids: Vec<TxnId> = txns.ids().collect();
    for (i, &a) in ids.iter().enumerate() {
        for &b in &ids[i + 1..] {
            if !s.concurrent(a, b) {
                continue;
            }
            let anti = |from: TxnId, to: TxnId| {
                deps.iter()
                    .any(|d| d.kind == DepKind::RwAnti && d.from.txn == from && d.to.txn == to)
            };
            let ww = deps.iter().any(|d| {
                d.kind == DepKind::Ww
                    && ((d.from.txn == a && d.to.txn == b) || (d.from.txn == b && d.to.txn == a))
            });
            if anti(a, b) && anti(b, a) && !ww {
                out.push(Anomaly::WriteSkew { t1: a, t2: b });
            }
        }
    }
    out
}

/// Detects fuzzy reads in the *generalized* model where a transaction may
/// read an object more than once. Under this crate's one-read-per-object
/// convention this never fires for well-formed sets, but exported traces
/// from other systems may violate the convention; the detector is kept
/// total.
pub fn fuzzy_reads(s: &Schedule) -> Vec<Anomaly> {
    let txns = s.txns();
    let mut out = Vec::new();
    for t in txns.iter() {
        let mut seen: Vec<(mvmodel::Object, OpId)> = Vec::new();
        for (addr, object) in t.reads() {
            let v = s.version_fn(addr);
            if let Some(&(_, prev)) = seen.iter().find(|&&(o, _)| o == object) {
                if prev != v {
                    out.push(Anomaly::FuzzyRead {
                        reader: t.id(),
                        object,
                    });
                }
            } else {
                seen.push((object, v));
            }
        }
    }
    out
}

/// All anomalies of every kind, labelled.
pub fn all_anomalies(s: &Schedule) -> Vec<Anomaly> {
    let mut out = lost_updates(s);
    out.extend(read_skews(s));
    out.extend(write_skews(s));
    out.extend(fuzzy_reads(s));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvmodel::{Object, Schedule, TxnSetBuilder};
    use std::collections::HashMap;
    use std::sync::Arc;

    /// Classic lost update under RC: both transactions read op0, both
    /// overwrite.
    #[test]
    fn detects_lost_update() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        b.txn(1).read(x).write(x).finish();
        b.txn(2).read(x).write(x).finish();
        let txns = Arc::new(b.build().unwrap());
        let r1 = OpAddr {
            txn: TxnId(1),
            idx: 0,
        };
        let w1 = OpAddr {
            txn: TxnId(1),
            idx: 1,
        };
        let r2 = OpAddr {
            txn: TxnId(2),
            idx: 0,
        };
        let w2 = OpAddr {
            txn: TxnId(2),
            idx: 1,
        };
        let order = vec![
            OpId::Op(r1),
            OpId::Op(r2),
            OpId::Op(w1),
            OpId::Commit(TxnId(1)),
            OpId::Op(w2),
            OpId::Commit(TxnId(2)),
        ];
        let mut versions = HashMap::new();
        versions.insert(x, vec![w1, w2]);
        let mut rf = HashMap::new();
        rf.insert(r1, OpId::Init);
        rf.insert(r2, OpId::Init);
        let s = Schedule::new(txns, order, versions, rf).unwrap();
        let found = lost_updates(&s);
        assert_eq!(found.len(), 1);
        assert!(matches!(found[0], Anomaly::LostUpdate { object, .. } if object == x));
        assert!(!all_anomalies(&s).is_empty());
        assert!(found[0].to_string().contains("lost update"));
    }

    /// Write skew on the paper's running pair.
    #[test]
    fn detects_write_skew() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).read(y).write(x).finish();
        let txns = Arc::new(b.build().unwrap());
        let r1 = OpAddr {
            txn: TxnId(1),
            idx: 0,
        };
        let w1 = OpAddr {
            txn: TxnId(1),
            idx: 1,
        };
        let r2 = OpAddr {
            txn: TxnId(2),
            idx: 0,
        };
        let w2 = OpAddr {
            txn: TxnId(2),
            idx: 1,
        };
        let order = vec![
            OpId::Op(r1),
            OpId::Op(r2),
            OpId::Op(w1),
            OpId::Op(w2),
            OpId::Commit(TxnId(2)),
            OpId::Commit(TxnId(1)),
        ];
        let mut versions = HashMap::new();
        versions.insert(x, vec![w2]);
        versions.insert(y, vec![w1]);
        let mut rf = HashMap::new();
        rf.insert(r1, OpId::Init);
        rf.insert(r2, OpId::Init);
        let s = Schedule::new(txns, order, versions, rf).unwrap();
        let skews = write_skews(&s);
        assert_eq!(skews.len(), 1);
        assert!(matches!(
            skews[0],
            Anomaly::WriteSkew {
                t1: TxnId(1),
                t2: TxnId(2)
            }
        ));
        // No lost update (disjoint write sets) and no read skew.
        assert!(lost_updates(&s).is_empty());
        assert!(read_skews(&s).is_empty());
        assert!(skews[0].to_string().contains("write skew"));
    }

    /// Read skew: T2 updates x and y atomically; T1 reads x before and y
    /// after — a non-atomic view. Happens under RC's per-statement
    /// snapshots.
    #[test]
    fn detects_read_skew() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).read(x).read(y).finish();
        b.txn(2).write(x).write(y).finish();
        let txns = Arc::new(b.build().unwrap());
        let r1x = OpAddr {
            txn: TxnId(1),
            idx: 0,
        };
        let r1y = OpAddr {
            txn: TxnId(1),
            idx: 1,
        };
        let w2x = OpAddr {
            txn: TxnId(2),
            idx: 0,
        };
        let w2y = OpAddr {
            txn: TxnId(2),
            idx: 1,
        };
        // R1[x] W2[x] W2[y] C2 R1[y] C1 with R1[y] reading W2[y] (RC).
        let order = vec![
            OpId::Op(r1x),
            OpId::Op(w2x),
            OpId::Op(w2y),
            OpId::Commit(TxnId(2)),
            OpId::Op(r1y),
            OpId::Commit(TxnId(1)),
        ];
        let mut versions = HashMap::new();
        versions.insert(x, vec![w2x]);
        versions.insert(y, vec![w2y]);
        let mut rf = HashMap::new();
        rf.insert(r1x, OpId::Init);
        rf.insert(r1y, OpId::Op(w2y));
        let s = Schedule::new(txns, order, versions, rf).unwrap();
        let skews = read_skews(&s);
        assert_eq!(skews.len(), 1);
        assert!(matches!(
            skews[0],
            Anomaly::ReadSkew {
                reader: TxnId(1),
                writer: TxnId(2)
            }
        ));
        assert!(skews[0].to_string().contains("read skew"));
    }

    /// A clean serial execution exhibits nothing.
    #[test]
    fn serial_execution_clean() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        let y = b.object("y");
        b.txn(1).read(x).write(y).finish();
        b.txn(2).read(y).write(x).finish();
        let txns = Arc::new(b.build().unwrap());
        let s = Schedule::single_version_serial(txns, &[TxnId(1), TxnId(2)]).unwrap();
        assert!(all_anomalies(&s).is_empty());
    }

    #[test]
    fn fuzzy_detector_total_on_wellformed_sets() {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        b.txn(1).read(x).finish();
        let txns = Arc::new(b.build().unwrap());
        let s = Schedule::single_version_serial(txns, &[TxnId(1)]).unwrap();
        assert!(fuzzy_reads(&s).is_empty());
        let _ = Object(0);
    }
}
