//! The three isolation levels and their preference order.

use std::fmt;
use std::str::FromStr;

/// A multiversion isolation level from the class `{RC, SI, SSI}` the paper
/// studies — the levels available in PostgreSQL (`{RC, SI, SSI}`) and
/// Oracle (`{RC, SI}`).
///
/// The derived order is the paper's §4 *preference* order
/// `RC < SI < SSI` — cheaper concurrency control first. The paper stresses
/// (footnote 3) that this is **not** an inclusion order between the
/// schedule sets the levels allow: a schedule allowed under `𝒜_SI` need not
/// be allowed under `𝒜_RC` (Example 5.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum IsolationLevel {
    /// Multiversion read committed: per-statement snapshots, no dirty
    /// writes.
    ReadCommitted,
    /// Snapshot isolation: per-transaction snapshots, no concurrent writes
    /// (first-committer-wins).
    SnapshotIsolation,
    /// Serializable snapshot isolation: SI plus abortion of dangerous
    /// structures. Effectively guarantees serializability.
    SerializableSnapshotIsolation,
}

impl IsolationLevel {
    pub const RC: IsolationLevel = IsolationLevel::ReadCommitted;
    pub const SI: IsolationLevel = IsolationLevel::SnapshotIsolation;
    pub const SSI: IsolationLevel = IsolationLevel::SerializableSnapshotIsolation;

    /// All levels, ascending by preference order.
    pub const ALL: [IsolationLevel; 3] =
        [IsolationLevel::RC, IsolationLevel::SI, IsolationLevel::SSI];

    /// The levels strictly below `self`, ascending — the candidates
    /// Algorithm 2 tries when lowering a transaction.
    pub fn lower_levels(self) -> &'static [IsolationLevel] {
        match self {
            IsolationLevel::ReadCommitted => &[],
            IsolationLevel::SnapshotIsolation => &[IsolationLevel::ReadCommitted],
            IsolationLevel::SerializableSnapshotIsolation => &[
                IsolationLevel::ReadCommitted,
                IsolationLevel::SnapshotIsolation,
            ],
        }
    }

    /// Whether the level takes per-transaction snapshots (SI and SSI; RC
    /// takes per-statement snapshots).
    pub fn snapshot_at_start(self) -> bool {
        self != IsolationLevel::ReadCommitted
    }

    /// Short form used throughout the paper and the CLI.
    pub fn as_str(self) -> &'static str {
        match self {
            IsolationLevel::ReadCommitted => "RC",
            IsolationLevel::SnapshotIsolation => "SI",
            IsolationLevel::SerializableSnapshotIsolation => "SSI",
        }
    }
}

impl fmt::Display for IsolationLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error for unrecognized isolation-level names.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseLevelError(pub String);

impl fmt::Display for ParseLevelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown isolation level `{}` (expected RC, SI or SSI)",
            self.0
        )
    }
}

impl std::error::Error for ParseLevelError {}

impl FromStr for IsolationLevel {
    type Err = ParseLevelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "RC" | "READ COMMITTED" | "READ_COMMITTED" => Ok(IsolationLevel::RC),
            "SI" | "SNAPSHOT" | "SNAPSHOT ISOLATION" | "REPEATABLE READ" => Ok(IsolationLevel::SI),
            "SSI" | "SERIALIZABLE" => Ok(IsolationLevel::SSI),
            other => Err(ParseLevelError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preference_order() {
        assert!(IsolationLevel::RC < IsolationLevel::SI);
        assert!(IsolationLevel::SI < IsolationLevel::SSI);
        assert_eq!(IsolationLevel::ALL.to_vec(), {
            let mut v = IsolationLevel::ALL.to_vec();
            v.sort();
            v
        });
    }

    #[test]
    fn lower_levels() {
        assert!(IsolationLevel::RC.lower_levels().is_empty());
        assert_eq!(IsolationLevel::SI.lower_levels(), &[IsolationLevel::RC]);
        assert_eq!(
            IsolationLevel::SSI.lower_levels(),
            &[IsolationLevel::RC, IsolationLevel::SI]
        );
    }

    #[test]
    fn parse_and_display() {
        for lvl in IsolationLevel::ALL {
            assert_eq!(lvl.as_str().parse::<IsolationLevel>().unwrap(), lvl);
            assert_eq!(lvl.to_string(), lvl.as_str());
        }
        assert_eq!(
            "serializable".parse::<IsolationLevel>().unwrap(),
            IsolationLevel::SSI
        );
        assert_eq!(
            "repeatable read".parse::<IsolationLevel>().unwrap(),
            IsolationLevel::SI
        );
        assert!("chaos".parse::<IsolationLevel>().is_err());
        let e = "chaos".parse::<IsolationLevel>().unwrap_err();
        assert!(e.to_string().contains("CHAOS"));
    }

    #[test]
    fn snapshot_semantics_flag() {
        assert!(!IsolationLevel::RC.snapshot_at_start());
        assert!(IsolationLevel::SI.snapshot_at_start());
        assert!(IsolationLevel::SSI.snapshot_at_start());
    }
}
