//! The per-transaction predicates of Definition 2.3.

use mvmodel::{OpAddr, OpId, Schedule, TxnId};

/// Whether the write at `write` *respects the commit order of `s`* (§2.3):
/// for every write `W_i[t]` of a different transaction on the same object,
/// `W_j[t] ≪_s W_i[t]` iff `C_j <_s C_i`.
pub fn respects_commit_order(s: &Schedule, write: OpAddr) -> bool {
    let object = s.txns().op_at(write).object;
    let cj = s.commit_pos(write.txn);
    for &other in s.version_order(object) {
        if other.txn == write.txn {
            continue;
        }
        let ci = s.commit_pos(other.txn);
        let version_before = s.vless(OpId::Op(write), OpId::Op(other));
        if version_before != (cj < ci) {
            return false;
        }
    }
    true
}

/// Whether the read at `read` is *read-last-committed in `s` relative to*
/// the operation `anchor` (§2.3):
///
/// 1. `v_s(read) = op₀`, or the transaction writing `v_s(read)` commits
///    before `anchor`; and
/// 2. no write `W_k[t]` committed before `anchor` satisfies
///    `v_s(read) ≪_s W_k[t]`.
///
/// For RC the anchor is the read itself; for SI it is `first(T)`.
pub fn read_last_committed_relative_to(s: &Schedule, read: OpAddr, anchor: OpId) -> bool {
    let object = s.txns().op_at(read).object;
    let v = s.version_fn(read);
    // Condition 1.
    match v {
        OpId::Init => {}
        OpId::Op(w) => {
            if !s.before(OpId::Commit(w.txn), anchor) {
                return false;
            }
        }
        OpId::Commit(_) => unreachable!("v_s never maps to a commit"),
    }
    // Condition 2: v is the ≪-latest version committed before the anchor.
    for &w in s.version_order(object) {
        if s.before(OpId::Commit(w.txn), anchor) && s.vless(v, OpId::Op(w)) {
            return false;
        }
    }
    true
}

/// A pair of writes witnessing a dirty or concurrent write: `earlier` is
/// the other transaction's write, `later` the offending write of the
/// transaction under scrutiny.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WriteWitness {
    pub earlier: OpAddr,
    pub later: OpAddr,
}

/// Whether `txn` *exhibits a concurrent write* in `s` (§2.3): it writes an
/// object some concurrent transaction wrote earlier — there are writes
/// `b_i <_s a_j` on the same object with `first(T_j) <_s C_i`.
///
/// Returns a witness pair, or `None`.
pub fn concurrent_write(s: &Schedule, txn: TxnId) -> Option<WriteWitness> {
    write_anomaly(s, txn, false)
}

/// Whether `txn` *exhibits a dirty write* in `s` (§2.3): it writes an
/// object another transaction wrote earlier but has not yet committed —
/// `b_i <_s a_j <_s C_i`.
///
/// Every dirty write is also a concurrent write.
pub fn dirty_write(s: &Schedule, txn: TxnId) -> Option<WriteWitness> {
    write_anomaly(s, txn, true)
}

fn write_anomaly(s: &Schedule, txn: TxnId, dirty: bool) -> Option<WriteWitness> {
    let t = s.txns().txn(txn);
    let first = s.pos(t.first());
    for (aj, object) in t.writes() {
        let aj_pos = s.pos(OpId::Op(aj));
        for &bi in s.version_order(object) {
            if bi.txn == txn {
                continue;
            }
            let bi_pos = s.pos(OpId::Op(bi));
            let ci = s.commit_pos(bi.txn);
            let hit = if dirty {
                bi_pos < aj_pos && aj_pos < ci
            } else {
                bi_pos < aj_pos && first < ci
            };
            if hit {
                return Some(WriteWitness {
                    earlier: bi,
                    later: aj,
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvmodel::{Object, Schedule, TxnSetBuilder};
    use std::collections::HashMap;
    use std::sync::Arc;

    /// W1[x] W2[x] C2 C1 with version order x: W1 ≪ W2 — T2's write is
    /// dirty (T1 uncommitted), and the version order contradicts the
    /// commit order (C2 < C1 but W1 ≪ W2).
    fn dirty_pair() -> Schedule {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        b.txn(1).write(x).finish();
        b.txn(2).write(x).finish();
        let txns = Arc::new(b.build().unwrap());
        let w1 = OpAddr {
            txn: TxnId(1),
            idx: 0,
        };
        let w2 = OpAddr {
            txn: TxnId(2),
            idx: 0,
        };
        let order = vec![
            OpId::Op(w1),
            OpId::Op(w2),
            OpId::Commit(TxnId(2)),
            OpId::Commit(TxnId(1)),
        ];
        let mut versions = HashMap::new();
        versions.insert(Object(0), vec![w1, w2]);
        Schedule::new(txns, order, versions, HashMap::new()).unwrap()
    }

    #[test]
    fn dirty_write_detection() {
        let s = dirty_pair();
        let w = dirty_write(&s, TxnId(2)).expect("T2 writes over uncommitted T1");
        assert_eq!(w.earlier.txn, TxnId(1));
        assert_eq!(w.later.txn, TxnId(2));
        // T1 wrote first; nothing preceded it.
        assert!(dirty_write(&s, TxnId(1)).is_none());
        // Dirty implies concurrent.
        assert!(concurrent_write(&s, TxnId(2)).is_some());
    }

    #[test]
    fn commit_order_respected_or_not() {
        let s = dirty_pair();
        // W1 ≪ W2 but C2 <_s C1: both writes violate commit order.
        assert!(!respects_commit_order(
            &s,
            OpAddr {
                txn: TxnId(1),
                idx: 0
            }
        ));
        assert!(!respects_commit_order(
            &s,
            OpAddr {
                txn: TxnId(2),
                idx: 0
            }
        ));
    }

    /// W2[x] C2 W4[x] C4 where T4 started before C2 — Figure 2's concurrent
    /// (but not dirty) write, reduced to two transactions.
    fn concurrent_not_dirty() -> Schedule {
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        b.txn(2).write(x).finish();
        b.txn(4).read(x).write(x).finish();
        let txns = Arc::new(b.build().unwrap());
        let w2 = OpAddr {
            txn: TxnId(2),
            idx: 0,
        };
        let r4 = OpAddr {
            txn: TxnId(4),
            idx: 0,
        };
        let w4 = OpAddr {
            txn: TxnId(4),
            idx: 1,
        };
        let order = vec![
            OpId::Op(r4),
            OpId::Op(w2),
            OpId::Commit(TxnId(2)),
            OpId::Op(w4),
            OpId::Commit(TxnId(4)),
        ];
        let mut versions = HashMap::new();
        versions.insert(Object(0), vec![w2, w4]);
        let mut rf = HashMap::new();
        rf.insert(r4, OpId::Init);
        Schedule::new(txns, order, versions, rf).unwrap()
    }

    #[test]
    fn concurrent_write_without_dirty_write() {
        let s = concurrent_not_dirty();
        assert!(
            dirty_write(&s, TxnId(4)).is_none(),
            "T2 committed before W4[x]"
        );
        let w = concurrent_write(&s, TxnId(4)).expect("T4 started before C2");
        assert_eq!(w.earlier.txn, TxnId(2));
        assert!(concurrent_write(&s, TxnId(2)).is_none());
        // Here both writes respect the commit order.
        assert!(respects_commit_order(
            &s,
            OpAddr {
                txn: TxnId(2),
                idx: 0
            }
        ));
        assert!(respects_commit_order(
            &s,
            OpAddr {
                txn: TxnId(4),
                idx: 1
            }
        ));
    }

    #[test]
    fn read_last_committed_anchors() {
        let s = concurrent_not_dirty();
        let r4 = OpAddr {
            txn: TxnId(4),
            idx: 0,
        };
        // R4[x] reads op0; anchored at itself that is correct (nothing
        // committed before R4[x]).
        assert!(read_last_committed_relative_to(&s, r4, OpId::Op(r4)));
        // Anchored at T4's start: also nothing committed — fine.
        assert!(read_last_committed_relative_to(
            &s,
            r4,
            s.txns().txn(TxnId(4)).first()
        ));
        // Anchored at T4's commit: W2[x] is committed by then, so op0 is no
        // longer the last committed version.
        assert!(!read_last_committed_relative_to(
            &s,
            r4,
            OpId::Commit(TxnId(4))
        ));
    }

    #[test]
    fn read_of_uncommitted_version_never_rlc() {
        // W1[x] R2[x] C1 C2 with v(R2[x]) = W1[x]: T1 commits only after
        // the read, so condition 1 fails at any anchor up to the read.
        let mut b = TxnSetBuilder::new();
        let x = b.object("x");
        b.txn(1).write(x).finish();
        b.txn(2).read(x).finish();
        let txns = Arc::new(b.build().unwrap());
        let w1 = OpAddr {
            txn: TxnId(1),
            idx: 0,
        };
        let r2 = OpAddr {
            txn: TxnId(2),
            idx: 0,
        };
        let order = vec![
            OpId::Op(w1),
            OpId::Op(r2),
            OpId::Commit(TxnId(1)),
            OpId::Commit(TxnId(2)),
        ];
        let mut versions = HashMap::new();
        versions.insert(Object(0), vec![w1]);
        let mut rf = HashMap::new();
        rf.insert(r2, OpId::Op(w1));
        let s = Schedule::new(txns, order, versions, rf).unwrap();
        assert!(!read_last_committed_relative_to(&s, r2, OpId::Op(r2)));
        assert!(!read_last_committed_relative_to(
            &s,
            r2,
            s.txns().txn(TxnId(2)).first()
        ));
    }
}
