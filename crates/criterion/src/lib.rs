//! Minimal micro-benchmark harness covering the slice of the
//! `criterion` API this workspace's `benches/` use: [`Criterion`],
//! benchmark groups with `warm_up_time` / `measurement_time` /
//! `sample_size` / `bench_with_input` / `bench_function`, a
//! [`Bencher`] with `iter`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! The build environment has no network access to a crates registry, so
//! the workspace wires `criterion` to this path crate. Statistics are
//! simple (median + min over timed samples, each sample batching enough
//! iterations to exceed ~1ms); there are no plots, baselines, or
//! outlier analysis. Output is one line per benchmark:
//!
//! ```text
//! group/id/param        median 12.345 µs   min 11.871 µs   (24 samples x 100 iters)
//! ```

use std::time::{Duration, Instant};

/// Benchmark label, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Runs the timed closure; collected by [`BenchmarkGroup::bench_with_input`].
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    /// (elapsed per iteration) for each sample.
    samples: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up + calibration: run until warm_up elapses, counting
        // iterations to size measurement batches to >= ~1ms each.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let batch = ((1.0e-3 / per_iter).ceil() as u64).max(1);
        self.iters_per_sample = batch;

        let deadline = Instant::now() + self.measurement;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_secs_f64() / batch as f64);
            if Instant::now() > deadline {
                break;
            }
        }
    }
}

fn format_time(seconds: f64) -> String {
    if seconds < 1.0e-6 {
        format!("{:.3} ns", seconds * 1.0e9)
    } else if seconds < 1.0e-3 {
        format!("{:.3} µs", seconds * 1.0e6)
    } else if seconds < 1.0 {
        format!("{:.3} ms", seconds * 1.0e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// A named set of related benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn warm_up_time(&mut self, dur: Duration) -> &mut Self {
        self.warm_up = dur;
        self
    }

    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.measurement = dur;
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.name, |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.name, |b| f(b, input));
        self
    }

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            samples: Vec::new(),
            iters_per_sample: 0,
        };
        f(&mut bencher);
        if bencher.samples.is_empty() {
            println!("{}/{id}  (no samples collected)", self.name);
            return;
        }
        let mut sorted = bencher.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        println!(
            "{}/{id:<40}  median {:>12}   min {:>12}   ({} samples x {} iters)",
            self.name,
            format_time(median),
            format_time(min),
            sorted.len(),
            bencher.iters_per_sample,
        );
    }

    pub fn finish(&mut self) {}
}

/// Top-level harness handle, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(3),
            sample_size: 20,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(id.to_string());
        group.bench_function(BenchmarkId::from("self"), &mut f);
        group.finish();
        self
    }
}

/// Re-export location matching `criterion::black_box` call sites (the
/// benches in this workspace use `std::hint::black_box` directly, but
/// the symbol is kept for API parity).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($target:path),+ $(,)?) => {
        fn $group_name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_self_test");
        group.warm_up_time(Duration::from_millis(5));
        group.measurement_time(Duration::from_millis(20));
        group.sample_size(5);
        let n = 1000u64;
        group.bench_with_input(BenchmarkId::new("sum", n), &n, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn format_time_scales() {
        assert!(format_time(5.0e-9).ends_with("ns"));
        assert!(format_time(5.0e-6).ends_with("µs"));
        assert!(format_time(5.0e-3).ends_with("ms"));
        assert!(format_time(5.0).ends_with("s"));
    }
}
