//! Minimal, deterministic re-implementation of the slice of the `rand`
//! crate API used by this workspace (`SmallRng`, `SeedableRng`,
//! `random_range`, `random_bool`, `seq::IndexedRandom::choose`).
//!
//! The build environment has no network access to a crates registry, so
//! the workspace wires `rand` to this path crate. The generator is a
//! SplitMix64 stream: tiny, fast, and statistically solid for workload
//! generation and simulation scheduling (we never need cryptographic
//! strength). Everything is deterministic given the seed, which the
//! test-suites rely on.

/// Low-level entropy source: a single `u64` per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding constructor, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can produce a uniform sample; mirrors
/// `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as $t;
                self.start.wrapping_add(draw)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width range of a 128-bit type cannot occur here
                    // (widest caller type is u64/usize); span 0 would mean
                    // the whole u128 domain.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                let draw = ((rng.next_u64() as u128) % span) as $t;
                lo.wrapping_add(draw)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// User-facing sampling helpers, mirroring the `rand::Rng` extension
/// trait (named `random_*` as in rand 0.9+).
pub trait RngExt: RngCore {
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }

    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }
}

impl<R: RngCore> RngExt for R {}

/// Alias kept for call sites written against the `Rng` spelling.
pub use RngExt as Rng;

/// Types with a canonical uniform distribution (subset of `Standard`).
pub trait Random {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Random for usize {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 generator. Matches the role (not the exact stream) of
    /// `rand::rngs::SmallRng`: a small non-cryptographic PRNG.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // Pre-whiten so that nearby seeds (0, 1, 2, ...) do not yield
            // correlated early outputs.
            let mut rng = SmallRng {
                state: state ^ 0xD6E8_FEB8_6659_FD93,
            };
            let _ = rng.next_u64();
            rng
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Mirrors `rand::seq::IndexedRandom` for slices.
    pub trait IndexedRandom {
        type Output;
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::seq::IndexedRandom;
    pub use super::{RngCore, RngExt, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..10);
            assert!((3..10).contains(&v));
            let w: u32 = rng.random_range(5..=5);
            assert_eq!(w, 5);
            let f: f64 = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = SmallRng::seed_from_u64(1);
        let items = [1u32, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            let &v = items.choose(&mut rng).unwrap();
            seen[(v - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
