//! Constrained allocation: deployments rarely get to choose every
//! transaction's level freely. Legacy drivers hard-code levels, auditors
//! impose floors, hot paths impose ceilings. `optimal_allocation_in_box`
//! finds the cheapest robust allocation inside pointwise bounds
//! `lo ≤ 𝒜 ≤ hi` — or proves none exists.
//!
//! ```sh
//! cargo run --example constrained_allocation
//! ```

use mvrobust::isolation::{Allocation, IsolationLevel};
use mvrobust::model::parse_transactions;
use mvrobust::robustness::allocate::{optimal_allocation_in_box, optimal_allocation_with_floor};
use mvrobust::robustness::{is_robust, optimal_allocation};

fn main() {
    // T1/T2: write-skew pair; T3: counter bump; T4: reporting reader.
    let txns = parse_transactions(
        "
        T1: R[cfg] W[quota]
        T2: R[quota] W[cfg]
        T3: R[counter] W[counter]
        T4: R[cfg] R[quota] R[counter]
        ",
    )
    .unwrap();

    let free = optimal_allocation(&txns);
    println!("unconstrained optimum: {free}");

    // Scenario 1 — audit floor: the reporting transaction T4 must read a
    // consistent snapshot, i.e. run at least at SI.
    let floor = Allocation::parse("T1=RC T2=RC T3=RC T4=SI").unwrap();
    let a = optimal_allocation_with_floor(&txns, &floor);
    println!("with audit floor (T4 ≥ SI): {a}");
    assert!(is_robust(&txns, &a).robust());
    assert!(a.level(mvrobust::model::TxnId(4)) >= IsolationLevel::SI);

    // Scenario 2 — hot-path ceiling: T3 is latency-critical and must not
    // pay SSI's bookkeeping. Compatible here (T3's counter bump only
    // needs SI anyway).
    let lo = Allocation::uniform_rc(&txns);
    let hi = Allocation::parse("T1=SSI T2=SSI T3=SI T4=SSI").unwrap();
    match optimal_allocation_in_box(&txns, &lo, &hi) {
        Some(a) => println!("with hot-path ceiling (T3 ≤ SI): {a}"),
        None => println!("no robust allocation under the ceiling"),
    }

    // Scenario 3 — an impossible pin: the legacy driver forces T1 to RC
    // exactly. The write-skew pair needs both ends at SSI, so no robust
    // allocation exists in the box; the only fixes are changing the
    // application or the pin.
    let lo = Allocation::parse("T1=RC T2=RC T3=RC T4=RC").unwrap();
    let hi = Allocation::parse("T1=RC T2=SSI T3=SSI T4=SSI").unwrap();
    match optimal_allocation_in_box(&txns, &lo, &hi) {
        Some(a) => println!("with legacy pin (T1 = RC): {a}"),
        None => println!(
            "with legacy pin (T1 = RC): NO robust allocation exists — \
             the pin is incompatible with serializability"
        ),
    }
}
