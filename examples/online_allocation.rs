//! Online allocation: maintain the optimal robust allocation while the
//! workload churns, first in-process through the incremental allocator,
//! then over a real socket through the service layer.
//!
//! ```sh
//! cargo run --example online_allocation
//! ```

use mvrobust::robustness::Allocator;
use mvrobust::service::{Client, Config, Registry, Server};
use std::thread;

fn main() {
    // ── 1. In-process: the delta engine under the daemon ─────────────
    //
    // `add_txn`/`remove_txn` keep the optimal allocation current after
    // each membership change, reusing cached counterexamples instead of
    // rerunning Algorithm 2 from scratch. Results are bit-identical to
    // a full recomputation.
    let mut registry = Registry::new(Default::default(), 1);
    for line in [
        "T1: R[orders] R[stock]",
        "T2: R[stock] W[stock] W[orders]",
        "T3: R[counter] W[counter]",
    ] {
        let realloc = registry.register(line).expect("allocatable");
        println!("after {line}");
        for c in &realloc.changed {
            println!("  {:?}: {:?} -> {:?}", c.txn, c.before, c.after);
        }
    }
    println!(
        "registry holds {} transactions; T2 runs at {:?}",
        registry.len(),
        registry.assign(mvrobust::model::TxnId(2)).unwrap()
    );

    // A racing partner for T3 arrives; only the affected transactions
    // move, and the reply says exactly which ones.
    let realloc = registry
        .register("T4: R[counter] W[counter]")
        .expect("allocatable");
    println!("T4 arrives; levels changed:");
    for c in &realloc.changed {
        println!("  {:?}: {:?} -> {:?}", c.txn, c.before, c.after);
    }

    // ── 2. Over the wire: serve the same registry on a socket ────────
    let server = Server::bind(Config {
        addr: "127.0.0.1:0".to_string(),
        ..Config::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr().expect("bound address");
    let worker = thread::spawn(move || server.run().expect("serve"));

    let mut client = Client::connect(addr).expect("connect");
    client.register("T1: R[x] W[y]").expect("register");
    let reply = client.register("T2: R[y] W[x]").expect("register");
    println!(
        "\nserved write-skew pair; reallocation changed {} levels",
        { reply["changed"].as_array().map(|a| a.len()).unwrap_or(0) }
    );
    let level = client.assign(1).expect("assign");
    println!("server assigns T1 -> {level}");

    let stats = client.stats().expect("stats");
    println!(
        "server handled {} requests at p99 {}µs",
        stats["total"], stats["latency_us"]["p99"]
    );

    client.shutdown().expect("shutdown");
    worker.join().expect("server thread");

    // The in-process registry and the served one agree: both are the
    // unique optimal allocation of Algorithm 2.
    let txns = mvrobust::model::parse_transactions("T1: R[x] W[y]\nT2: R[y] W[x]").unwrap();
    let (expect, _) = Allocator::new(&txns).optimal();
    assert_eq!(level, expect.level(mvrobust::model::TxnId(1)));
    println!("matches a from-scratch Allocator::optimal run");
}
