//! Quickstart: check robustness, compute the optimal allocation, and
//! inspect a counterexample.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use mvrobust::isolation::{Allocation, IsolationLevel};
use mvrobust::model::parse_transactions;
use mvrobust::robustness::witness::counterexample_schedule;
use mvrobust::robustness::{is_robust, optimal_allocation, optimal_allocation_rc_si};
use std::sync::Arc;

fn main() {
    // A small workload: a reporting transaction (T1), two order writers
    // (T2, T3) and a pair racing on a counter (T4, T5).
    let txns = Arc::new(
        parse_transactions(
            "
            T1: R[orders] R[stock]
            T2: R[stock] W[stock] W[orders]
            T3: R[orders] W[orders]
            T4: R[counter] W[counter]
            T5: R[counter] W[counter]
            ",
        )
        .expect("workload parses"),
    );

    // 1. Is the workload safe if everything runs at SI?
    let all_si = Allocation::uniform_si(&txns);
    let report = is_robust(&txns, &all_si);
    println!("robust against all-SI? {}", report.robust());
    if let Some(spec) = report.counterexample() {
        println!("  counterexample cycle: {spec}");
    }

    // 2. What is the cheapest safe assignment over {RC, SI, SSI}?
    let best = optimal_allocation(&txns);
    println!("optimal allocation: {best}");
    let (rc, si, ssi) = best.counts();
    println!("  {rc} × RC, {si} × SI, {ssi} × SSI");
    assert!(is_robust(&txns, &best).robust());

    // 3. And restricted to Oracle's {RC, SI}?
    match optimal_allocation_rc_si(&txns) {
        Some(a) => println!("optimal {{RC, SI}} allocation: {a}"),
        None => println!("no robust {{RC, SI}} allocation exists — SSI is required"),
    }

    // 4. Materialize a concrete anomaly for the all-RC allocation: an
    //    actual interleaving, with version order and version function,
    //    that RC admits but that is not serializable.
    let all_rc = Allocation::uniform(&txns, IsolationLevel::RC);
    if let Some((spec, schedule)) = counterexample_schedule(&txns, &all_rc) {
        println!("\nall-RC anomaly (split {}):", spec.t1);
        println!("{}", mvrobust::model::fmt::schedule_full(&schedule));
    }
}
