//! Template-level auditing (the paper's §6.3.1 direction): workloads are
//! generated from a fixed API of parametrized transaction programs, and
//! robustness must hold for *every* instantiation.
//!
//! The audit enumerates all instantiations over a bounded parameter
//! domain (with duplicates), which is sound for the bounded space and a
//! refutation procedure in general — any counterexample instantiation is
//! a real counterexample workload.
//!
//! ```sh
//! cargo run --example template_audit
//! ```

use mvrobust::isolation::IsolationLevel;
use mvrobust::templates::{
    audit, optimal_template_allocation, smallbank_templates, Template, TemplateSet,
};

fn main() {
    // --- SmallBank as templates -------------------------------------
    let sb = smallbank_templates();
    println!("SmallBank templates: {}", sb.len());

    let all_si = vec![IsolationLevel::SI; sb.len()];
    let verdict = audit(&sb, &all_si, 2, 2);
    println!(
        "all-SI audit over {} instances: robust = {}",
        verdict.instances, verdict.robust
    );
    if let Some(cex) = &verdict.counterexample {
        println!("  counterexample instantiation: {cex}");
    }

    let best = optimal_template_allocation(&sb, 2, 2);
    println!("\noptimal per-template levels (2 copies, domain 2):");
    for (i, lvl) in best.iter().enumerate() {
        println!("  {:<16} → {lvl}", sb.get(i).unwrap().name());
    }
    assert!(audit(&sb, &best, 2, 2).robust);

    // --- A custom API ------------------------------------------------
    // An inventory service: Reserve(i) checks stock and reserves;
    // Restock(i) tops it up; Report reads a fixed dashboard row that
    // Restock refreshes.
    let mut api = TemplateSet::new();
    api.add(
        Template::new("Reserve")
            .read("stock", 0)
            .write("stock", 0)
            .write("resv", 0),
    );
    api.add(
        Template::new("Restock")
            .read("stock", 0)
            .write("stock", 0)
            .write_fixed("dashboard"),
    );
    api.add(
        Template::new("Report")
            .read_fixed("dashboard")
            .read("stock", 0),
    );

    println!("\ninventory API:");
    let best = optimal_template_allocation(&api, 2, 2);
    for (i, lvl) in best.iter().enumerate() {
        println!("  {:<8} → {lvl}", api.get(i).unwrap().name());
    }
    let rc_everything = vec![IsolationLevel::RC; api.len()];
    println!(
        "all-RC audit: robust = {}",
        audit(&api, &rc_everything, 2, 2).robust
    );
}
