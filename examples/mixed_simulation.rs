//! Throughput study: run a contended workload in the MVCC simulator
//! under all-RC (unsafe!), all-SI, all-SSI and the optimal mixed
//! allocation, and compare goodput, abort rates and serializability.
//!
//! This reproduces the paper's motivation (§1): lower isolation levels
//! buy throughput, and the optimal mixed allocation recovers most of it
//! *without* giving up serializability.
//!
//! ```sh
//! cargo run --release --example mixed_simulation
//! ```

use mvrobust::isolation::{Allocation, IsolationLevel};
use mvrobust::model::parse_transactions;
use mvrobust::model::serializability::is_conflict_serializable;
use mvrobust::robustness::optimal_allocation;
use mvrobust::sim::{run_jobs, Job, Metrics, SimConfig};
use mvrobust::workloads::smallbank::SmallBank;
use mvrobust::workloads::tpcc::Tpcc;

fn main() {
    // A mixed application: a TPC-C "front office" (whose optimum needs
    // only RC and SI — TPC-C is robust against SI) plus a SmallBank-style
    // "back office" containing the write-skew triangle (which needs SSI).
    // The combined optimum therefore uses all three levels, making the
    // cost of over-provisioning with all-SSI directly visible.
    let front = Tpcc::canonical_mix();
    let back = SmallBank::canonical_mix();
    let mut text = mvrobust::model::fmt::transaction_set(&front);
    for t in back.iter() {
        let line = mvrobust::model::fmt::transaction(&back, t);
        let renumbered = format!(
            "T{}:{}",
            t.id().0 + front.len() as u32,
            line.split_once(':').expect("has id").1
        );
        text.push_str(&renumbered);
        text.push('\n');
    }
    let txns = parse_transactions(&text).expect("merged workload parses");
    println!(
        "workload: TPC-C + SmallBank mix, {} transactions, {} ops, {} objects",
        txns.len(),
        txns.total_ops(),
        txns.objects().len()
    );

    let optimal = optimal_allocation(&txns);
    let (rc, si, ssi) = optimal.counts();
    println!("optimal allocation: {rc} × RC, {si} × SI, {ssi} × SSI\n");

    println!(
        "{:<16} {:>9} {:>9} {:>11} {:>13} {:>14}",
        "allocation", "commits", "aborts", "goodput", "abort rate", "serializable"
    );
    for (label, alloc) in [
        (
            "all-RC (unsafe)",
            Allocation::uniform(&txns, IsolationLevel::RC),
        ),
        ("all-SI", Allocation::uniform(&txns, IsolationLevel::SI)),
        ("all-SSI", Allocation::uniform(&txns, IsolationLevel::SSI)),
        ("optimal mixed", optimal.clone()),
    ] {
        let jobs: Vec<Job> = txns
            .iter()
            .map(|t| Job::new(t.ops().to_vec(), alloc.level(t.id())))
            .collect();
        let mut total = Metrics::default();
        let mut serializable = 0usize;
        const RUNS: u64 = 20;
        for seed in 0..RUNS {
            let engine = run_jobs(
                &jobs,
                SimConfig::default().with_seed(seed).with_concurrency(8),
            );
            let m = engine.metrics;
            total.commits += m.commits;
            total.aborts_fcw += m.aborts_fcw;
            total.aborts_deadlock += m.aborts_deadlock;
            total.aborts_ssi += m.aborts_ssi;
            total.ticks += m.ticks;
            let exported = engine.trace.export().expect("trace enabled");
            if is_conflict_serializable(&exported.schedule) {
                serializable += 1;
            }
        }
        println!(
            "{:<16} {:>9} {:>9} {:>11.4} {:>12.1}% {:>11}/{}",
            label,
            total.commits,
            total.total_aborts(),
            total.goodput(),
            total.abort_rate() * 100.0,
            serializable,
            RUNS,
        );
    }

    println!(
        "\nReading: all-RC never aborts and posts the best goodput but may \
         emit non-serializable executions; all-SSI is always safe but pays \
         for it in aborts; the optimal mixed allocation is safe by Theorem \
         3.2 *and* recovers throughput by running every transaction at the \
         cheapest level that preserves robustness."
    );
}
