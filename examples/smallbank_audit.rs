//! SmallBank case study: a workload *designed* to break snapshot
//! isolation. The audit shows it is not {RC, SI}-allocatable, computes
//! the optimal mixed allocation (which needs SSI for the write-skew
//! triangle), explains why each transaction needs its level, and executes
//! the workload in the simulator to demonstrate the anomaly is real.
//!
//! ```sh
//! cargo run --example smallbank_audit
//! ```

use mvrobust::isolation::{Allocation, IsolationLevel};
use mvrobust::model::serializability::is_conflict_serializable;
use mvrobust::robustness::allocate::optimal_allocation_explained;
use mvrobust::robustness::{is_robust, optimal_allocation_rc_si};
use mvrobust::sim::{run_jobs, Job, SimConfig};
use mvrobust::workloads::smallbank::SmallBank;

fn main() {
    let txns = SmallBank::canonical_mix();
    let names = [
        "Balance",
        "DepositChecking",
        "TransactSavings",
        "Amalgamate",
        "WriteCheck",
    ];
    println!("SmallBank canonical mix: {} transactions", txns.len());

    println!(
        "robust against all-SI? {}",
        is_robust(&txns, &Allocation::uniform_si(&txns)).robust()
    );
    println!(
        "{{RC, SI}}-allocatable? {}",
        optimal_allocation_rc_si(&txns).is_some()
    );

    let (best, reasons) = optimal_allocation_explained(&txns);
    println!("\noptimal {{RC, SI, SSI}} allocation:");
    for (i, (t, lvl)) in best.iter().enumerate() {
        println!("  {t} {:<16} → {lvl}", names[i]);
    }
    println!("\nwhy ({} rejected lowerings):", reasons.len());
    for (t, lvl, spec) in reasons.iter().take(4) {
        println!("  {t} cannot run at {lvl}: cycle {spec}");
    }

    // Demonstrate the anomaly: run everything at SI many times; some run
    // must produce a non-serializable execution.
    let si_jobs: Vec<Job> = (0..4)
        .flat_map(|_| {
            txns.iter()
                .map(|t| Job::new(t.ops().to_vec(), IsolationLevel::SnapshotIsolation))
        })
        .collect();
    let mut broke = None;
    for seed in 0..100 {
        let engine = run_jobs(
            &si_jobs,
            SimConfig::default().with_seed(seed).with_concurrency(5),
        );
        let exported = engine.trace.export().expect("trace on");
        if !is_conflict_serializable(&exported.schedule) {
            broke = Some((seed, exported.schedule));
            break;
        }
    }
    match broke {
        Some((seed, schedule)) => {
            println!("\nall-SI anomaly realized in the simulator (seed {seed}):");
            println!("{}", mvrobust::model::fmt::schedule_order(&schedule));
        }
        None => println!("\n(no anomaly in 100 seeds — unusual but possible)"),
    }

    // …and under the optimal allocation the simulator only ever emits
    // serializable executions.
    let safe_jobs: Vec<Job> = (0..4)
        .flat_map(|_| {
            txns.iter()
                .map(|t| Job::new(t.ops().to_vec(), best.level(t.id())))
        })
        .collect();
    let mut all_serializable = true;
    for seed in 0..100 {
        let engine = run_jobs(
            &safe_jobs,
            SimConfig::default().with_seed(seed).with_concurrency(5),
        );
        let exported = engine.trace.export().expect("trace on");
        all_serializable &= is_conflict_serializable(&exported.schedule);
    }
    println!(
        "\nunder the optimal allocation, 100/100 simulated runs serializable: {all_serializable}"
    );
    assert!(
        all_serializable,
        "robust allocation must never admit an anomaly"
    );
}
