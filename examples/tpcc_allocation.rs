//! TPC-C case study: reproduce the folklore result the paper's
//! introduction recalls (TPC-C is robust against SI) and compute the
//! optimal mixed allocation for Postgres ({RC, SI, SSI}) and Oracle
//! ({RC, SI}).
//!
//! ```sh
//! cargo run --example tpcc_allocation
//! ```

use mvrobust::isolation::Allocation;
use mvrobust::robustness::{is_robust, optimal_allocation, optimal_allocation_rc_si};
use mvrobust::workloads::tpcc::Tpcc;

fn main() {
    let txns = Tpcc::canonical_mix();
    println!(
        "TPC-C canonical mix: {} transactions, {} operations",
        txns.len(),
        txns.total_ops()
    );
    let names = [
        "NewOrder(w1,d1,c7)",
        "Payment(w1,d1,c7)",
        "Payment(w1,d2,c3)",
        "OrderStatus(w1,d1,c7)",
        "Delivery(w1,d1)",
        "StockLevel(w1,d1)",
        "NewOrder(w1,d2,c4)",
    ];

    // The folklore: robust against SI, so SI already gives serializability.
    for (label, alloc) in [
        ("all-RC ", Allocation::uniform_rc(&txns)),
        ("all-SI ", Allocation::uniform_si(&txns)),
        ("all-SSI", Allocation::uniform_ssi(&txns)),
    ] {
        let r = is_robust(&txns, &alloc);
        print!("robust against {label}? {}", r.robust());
        match r.counterexample() {
            Some(spec) => println!("   (counterexample: {spec})"),
            None => println!(),
        }
    }

    // Optimal mixed allocation for Postgres.
    let best = optimal_allocation(&txns);
    println!("\noptimal {{RC, SI, SSI}} allocation:");
    for (i, (t, lvl)) in best.iter().enumerate() {
        println!("  {t} {:<22} → {lvl}", names[i]);
    }
    let (rc, si, ssi) = best.counts();
    println!("  summary: {rc} × RC, {si} × SI, {ssi} × SSI");

    // Oracle restriction: since TPC-C is SI-robust, an {RC, SI}
    // allocation exists (Proposition 5.4).
    match optimal_allocation_rc_si(&txns) {
        Some(a) => {
            println!("\noptimal {{RC, SI}} allocation (Oracle): {a}");
            assert_eq!(a, best, "no transaction needed SSI, so the optima coincide");
        }
        None => unreachable!("TPC-C is robust against all-SI"),
    }

    println!(
        "\nReading: the two NewOrders may run at READ COMMITTED; the W_YTD / \
         D_YTD counters force the Payments up to SI (lost updates under RC), \
         and the read-only OrderStatus/StockLevel transactions need SI to \
         avoid RC's per-statement snapshots gluing non-atomic views together."
    );
}
