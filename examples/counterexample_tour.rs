//! A guided tour of the paper's machinery on its own examples:
//! Figure 2 / Example 2.5, Example 2.6, Example 5.2 and the multiversion
//! split schedule of Definition 3.1 / Figure 1.
//!
//! ```sh
//! cargo run --example counterexample_tour
//! ```

use mvrobust::isolation::validator::per_txn_allowed_levels;
use mvrobust::isolation::{allowed_under, dangerous_structures, Allocation};
use mvrobust::model::fmt::{schedule_full, schedule_order};
use mvrobust::model::serializability::is_conflict_serializable;
use mvrobust::model::SerializationGraph;
use mvrobust::robustness::witness::counterexample_schedule;
use mvrobust::workloads::paper;

fn main() {
    // ------------------------------------------------------------------
    println!("== Figure 2: a schedule with explicit v_s and <<_s ==");
    let s = paper::figure_2_schedule();
    println!("{}", schedule_full(&s));
    println!("conflict serializable? {}", is_conflict_serializable(&s));
    let g = SerializationGraph::of(&s);
    println!("SeG(s) edges (Figure 3):");
    for (from, to) in [(1u32, 2u32), (1, 4), (2, 3), (2, 4), (3, 4), (4, 2)] {
        let labels = g.edge_labels(from.into(), to.into());
        if !labels.is_empty() {
            let kinds: Vec<String> = labels.iter().map(|e| e.kind.to_string()).collect();
            println!("  T{from} → T{to}  [{}]", kinds.join(", "));
        }
    }

    // ------------------------------------------------------------------
    println!("\n== Example 2.5: which levels is each transaction allowed under? ==");
    for (t, levels) in per_txn_allowed_levels(&s) {
        let shown: Vec<&str> = levels.iter().map(|l| l.as_str()).collect();
        println!("  {t}: {}", shown.join(", "));
    }
    let ds = dangerous_structures(&s, |_| true);
    println!("dangerous structures (any filter): {}", ds.len());
    for d in &ds {
        println!("  {d}");
    }

    // ------------------------------------------------------------------
    println!("\n== Example 2.6: mixing RC and SI is direction-sensitive ==");
    let s26 = paper::example_2_6_schedule();
    println!("{}", schedule_order(&s26));
    for alloc in ["T1=SI T2=SI", "T1=RC T2=SI", "T1=SI T2=RC"] {
        let a = Allocation::parse(alloc).expect("parses");
        println!("  allowed under {{{alloc}}}? {}", allowed_under(&s26, &a));
    }

    // ------------------------------------------------------------------
    println!("\n== Example 5.2: allowed under SI but not under RC ==");
    let s52 = paper::example_5_2_schedule();
    println!("{}", schedule_order(&s52));
    println!(
        "  allowed under all-SI? {}   all-RC? {}",
        allowed_under(&s52, &Allocation::uniform_si(s52.txns())),
        allowed_under(&s52, &Allocation::uniform_rc(s52.txns())),
    );

    // ------------------------------------------------------------------
    println!("\n== Definition 3.1: the split-schedule anatomy of write skew ==");
    let txns = paper::write_skew_txns();
    let si = Allocation::uniform_si(&txns);
    let (spec, witness) = counterexample_schedule(&txns, &si).expect("not robust");
    println!("spec: {spec}");
    println!(
        "  T1 splits after {}; the middle T2 runs serially between the halves,",
        spec.b1
    );
    println!("  matching Figure 1: prefix(T1) · T2 · … · Tm · postfix(T1) · rest");
    println!("witness schedule:");
    println!("{}", schedule_full(&witness));
    println!("  allowed under all-SI: {}", allowed_under(&witness, &si));
    println!(
        "  conflict serializable: {}",
        is_conflict_serializable(&witness)
    );
}
